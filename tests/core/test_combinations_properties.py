"""Property test: the binned interpolation-join candidate generation is
equivalent to brute-force all-pairs-within-window matching.

This is the paper's §5.3 correctness claim: dividing each dataset into
bins of size 2W twice (second binning offset by W) guarantees every
pair of elements within W shares at least one bin — no pair is missed
and, after de-duplication, none is counted twice.
"""

import math
from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.core.combinations import InterpolationJoin, NaturalJoin
from repro.core.dataset import ScrubJayDataset
from repro.core.semantics import Schema, domain, value
from repro.core.dictionary import default_dictionary
from repro.rdd import SJContext
from repro.units.temporal import Timestamp

_CTX = SJContext(executor="serial")
_DICT = default_dictionary()

LEFT = Schema({
    "node": domain("compute nodes", "identifier"),
    "time": domain("time", "datetime"),
    "power": value("power", "watts"),
})
RIGHT = Schema({
    "node": domain("compute nodes", "identifier"),
    "time": domain("time", "datetime"),
    "temp": value("temperature", "degrees Celsius"),
})

times = st.floats(-1e4, 1e4, allow_nan=False)
nodes = st.integers(0, 2)
windows = st.floats(0.5, 200.0, allow_nan=False)


def _brute_force_matches(left_rows, right_rows, window):
    """Set of (left_index, right_index) pairs strictly within the window
    with matching exact keys — the oracle the binning must reproduce.
    The window is open (< W): a pair at distance exactly W can straddle
    a bin edge in both schemes, so the join defines the window as open
    and this oracle matches that contract."""
    out = set()
    for i, lr in enumerate(left_rows):
        for j, rr in enumerate(right_rows):
            if lr["node"] == rr["node"] and \
                    abs(lr["time"].epoch - rr["time"].epoch) < window:
                out.add((i, j))
    return out


@given(
    st.lists(st.tuples(nodes, times), min_size=0, max_size=25),
    st.lists(st.tuples(nodes, times), min_size=0, max_size=25),
    windows,
)
@settings(max_examples=60, deadline=None)
def test_binned_matching_equals_brute_force(lspec, rspec, window):
    left_rows = [
        {"node": n, "time": Timestamp(t), "power": float(i)}
        for i, (n, t) in enumerate(lspec)
    ]
    right_rows = [
        {"node": n, "time": Timestamp(t), "temp": float(j)}
        for j, (n, t) in enumerate(rspec)
    ]
    lds = ScrubJayDataset.from_rows(_CTX, left_rows, LEFT, "l")
    rds = ScrubJayDataset.from_rows(_CTX, right_rows, RIGHT, "r")
    got = InterpolationJoin(window).apply(lds, rds, _DICT).collect()

    oracle = _brute_force_matches(left_rows, right_rows, window)
    matched_left = {i for i, _j in oracle}
    # one output row per matched left row (single extra-domain group)
    got_left = Counter()
    for row in got:
        # recover the left index from the power payload
        got_left[int(row["power"])] += 1
    assert set(got_left) == matched_left
    assert all(c == 1 for c in got_left.values())


@given(
    st.lists(st.tuples(nodes, times), min_size=1, max_size=25),
    windows,
)
@settings(max_examples=40, deadline=None)
def test_attached_value_is_within_window(lspec, window):
    left_rows = [
        {"node": n, "time": Timestamp(t), "power": float(i)}
        for i, (n, t) in enumerate(lspec)
    ]
    # right: one sample per left sample, offset by just under the window
    right_rows = [
        {"node": n, "time": Timestamp(t + 0.9 * window), "temp": float(i)}
        for i, (n, t) in enumerate(lspec)
    ]
    lds = ScrubJayDataset.from_rows(_CTX, left_rows, LEFT, "l")
    rds = ScrubJayDataset.from_rows(_CTX, right_rows, RIGHT, "r")
    got = InterpolationJoin(window).apply(lds, rds, _DICT).collect()
    assert len(got) == len(left_rows)
    for row in got:
        assert "temp" in row


@given(
    st.lists(st.tuples(nodes, st.integers(-100, 100)), max_size=30),
    st.lists(st.tuples(nodes, st.integers(-100, 100)), max_size=30),
)
@settings(max_examples=40, deadline=None)
def test_natural_join_multiset_equals_nested_loop(lspec, rspec):
    lschema = Schema({
        "node": domain("compute nodes", "identifier"),
        "a": value("power", "watts"),
    })
    rschema = Schema({
        "node": domain("compute nodes", "identifier"),
        "b": value("energy", "joules"),
    })
    left_rows = [{"node": n, "a": float(v)} for n, v in lspec]
    right_rows = [{"node": n, "b": float(v)} for n, v in rspec]
    got = Counter(
        tuple(sorted(r.items()))
        for r in NaturalJoin().apply(
            ScrubJayDataset.from_rows(_CTX, left_rows, lschema, "l"),
            ScrubJayDataset.from_rows(_CTX, right_rows, rschema, "r"),
            _DICT,
        ).collect()
    )
    want = Counter(
        tuple(sorted({**lr, "b": rr["b"]}.items()))
        for lr in left_rows for rr in right_rows
        if lr["node"] == rr["node"]
    )
    assert got == want
