"""repro.serve — a concurrent, cached, multi-tenant query service.

Turns a single-caller :class:`~repro.session.ScrubJaySession` into a
server: many clients multiplex over one shared catalog, dictionary,
engine, and executor pool, with repeated logical queries answered from
semantic plan/result caches instead of re-running the §5.2 search and
the data-parallel execution.

Layers (see DESIGN.md "The serve subsystem")::

    admission → per-tenant FIFO → plan cache → engine
                                → result cache → executor pool

Quick start::

    from repro import ScrubJaySession

    sj = ScrubJaySession()
    sj.register_rows(rows, schema, name="temps")
    with sj.serve(num_workers=4, max_queue=32) as svc:
        ticket = svc.submit(domains=["time"], values=["temperature"],
                            tenant="alice")
        result = ticket.result()
        print(svc.snapshot().summary())

or over a socket (stdlib line-delimited JSON)::

    from repro.serve import QueryServer, QueryClient

    with QueryServer(svc) as server:
        host, port = server.address
        with QueryClient(host, port) as client:
            rows, schema = client.query(["time"], ["temperature"])
"""

# Deprecated aliases: the service error family is defined in (and best
# imported from) repro.errors, the one import surface for the whole
# stack's typed errors; these names stay importable from here for code
# that learned them as serve-level concepts.
from repro.errors import (
    ProtocolVersionError,
    QueryCancelledError,
    QueryTimeoutError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadError,
    ShardError,
    ShardRoutingError,
    ShardStaleReadError,
    ShardStateError,
    StaleRefreshError,
    SubscriptionError,
    UnsupportedOpError,
)
from repro.serve.keys import normalize_query, plan_key, result_key
from repro.serve.metrics import ServiceMetrics, ServiceSnapshot
from repro.serve.plan_cache import PlanCache
from repro.serve.result_cache import ResultCache, ResultEntry
from repro.serve.service import AggregateSpec, QueryService, QueryTicket
from repro.serve.subscribe import Subscription, SubscriptionUpdate
from repro.serve.sharded import (
    ShardConfig,
    ShardHandle,
    ShardPlacement,
    ShardRouter,
)
from repro.serve.wire import (
    PROTOCOL_VERSION,
    InProcessClient,
    QueryClient,
    QueryServer,
    WireError,
    decode_groups,
    decode_rows,
    encode_groups,
    encode_rows,
)

__all__ = [
    "normalize_query",
    "plan_key",
    "result_key",
    "PlanCache",
    "ResultCache",
    "ResultEntry",
    "ServiceMetrics",
    "ServiceSnapshot",
    "AggregateSpec",
    "QueryService",
    "QueryTicket",
    "Subscription",
    "SubscriptionUpdate",
    "QueryServer",
    "QueryClient",
    "InProcessClient",
    "WireError",
    "PROTOCOL_VERSION",
    "encode_rows",
    "decode_rows",
    "encode_groups",
    "decode_groups",
    "ShardConfig",
    "ShardHandle",
    "ShardPlacement",
    "ShardRouter",
    # deprecated aliases of the repro.errors classes
    "ServiceError",
    "ServiceOverloadError",
    "QueryTimeoutError",
    "QueryCancelledError",
    "ServiceClosedError",
    "ProtocolVersionError",
    "ShardError",
    "ShardStaleReadError",
    "ShardStateError",
    "ShardRoutingError",
    "SubscriptionError",
    "StaleRefreshError",
    "UnsupportedOpError",
]
