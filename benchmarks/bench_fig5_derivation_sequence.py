"""Figure 5: the derivation sequence for the rack-heat query.

Asserts the engine reproduces the paper's derivation graph for the
query {jobs → application names, racks → heat} over the three DAT-1
datasets: explode discrete + explode continuous on the job log, a
natural join with the node layout, the heat derivation on the rack
temperatures, and a final interpolation join — five derivation steps,
found at interactive rates.
"""

from __future__ import annotations

import pytest

from repro import DerivationEngine, Query, default_dictionary
from repro.datagen.dat import (
    JOB_LOG_SCHEMA,
    NODE_LAYOUT_SCHEMA,
    RACK_TEMPERATURE_SCHEMA,
    ensure_semantics,
)

CATALOG = {
    "job_queue_log": JOB_LOG_SCHEMA,
    "node_layout": NODE_LAYOUT_SCHEMA,
    "rack_temperatures": RACK_TEMPERATURE_SCHEMA,
}

QUERY = Query.of(domains=["jobs", "racks"], values=["applications", "heat"])


@pytest.fixture(scope="module")
def engine():
    d = default_dictionary()
    ensure_semantics(d)
    return DerivationEngine(d)


def test_fig5_sequence_structure(benchmark, engine):
    plan = benchmark(engine.solve, CATALOG, QUERY)

    ops = sorted(op for op in plan.operations() if not op.startswith("load"))
    assert ops == sorted([
        "explode_discrete",    # nodelist → one row per node
        "explode_continuous",  # timespan → one row per instant
        "natural_join",        # × node layout (node → rack)
        "derive_heat",         # hot − cold aisle on rack temps
        "interpolation_join",  # match in time, interpolate
    ]), "operation multiset deviates from the paper's Figure 5"
    assert plan.num_steps() == 5

    loads = {op for op in plan.operations() if op.startswith("load")}
    assert loads == {"load:job_queue_log", "load:node_layout",
                     "load:rack_temperatures"}

    # the interpolation join must consume the natural-join result on
    # one side and the exploded job log on the other (Figure 5's two
    # branches), with explode_discrete before explode_continuous
    order = [op for op in plan.operations() if not op.startswith("load")]
    assert order.index("explode_discrete") < order.index("explode_continuous")
    assert order.index("natural_join") < order.index("interpolation_join")

    print("\n" + plan.describe())


def test_fig5_interactive_rate(benchmark, engine):
    """§5.2: solutions 'at interactive rates'."""
    plan = benchmark(engine.solve, CATALOG, QUERY)
    assert plan is not None
    assert benchmark.stats["mean"] < 0.5
