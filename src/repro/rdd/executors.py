"""Task executors: the simulated cluster.

The paper runs Spark over 10 worker nodes with 32 cores each. Here a
single machine stands in, with interchangeable executors:

- :class:`SerialExecutor` — runs tasks in the driver, in order. The
  default: deterministic, zero overhead, ideal for tests.
- :class:`ThreadExecutor` — a thread pool. Python's GIL limits it for
  pure-Python work, but it exercises concurrent scheduling.
- :class:`ProcessExecutor` — a process pool; each worker process plays
  the role of a cluster node. Closures are shipped with cloudpickle
  (lambdas and nested functions are first-class in ScrubJay pipelines,
  which the stdlib pickler cannot serialize), partition data with the
  stdlib pickler.
- :class:`SimulatedClusterExecutor` — serial execution with a
  deterministic cluster-timing model for strong-scaling studies on
  one core.
- :class:`FaultInjectingExecutor` — wraps any of the above and
  kills/delays/fails tasks (or whole pools) on a seeded deterministic
  schedule, so the fault-tolerance machinery is testable in CI.

All executors implement one method, :meth:`Executor.run_partition_tasks`,
which applies ``fn(index, items) -> items`` to every partition and
returns the transformed partitions in input order.

Failure semantics (see DESIGN.md, "Failure semantics"): every executor
runs its tasks through the retry runner in :mod:`repro.rdd.fault`, so
transient task failures are retried in place with exponential backoff.
A whole-pool death surfaces as :class:`~repro.errors.WorkerPoolError`,
which the scheduler recovers from by replaying the stage from its
lineage inputs; after ``RetryPolicy.degrade_after_pool_deaths``
consecutive deaths the process executor degrades to serial in-driver
execution instead of failing the job.
"""

from __future__ import annotations

import concurrent.futures
import concurrent.futures.process
import logging
import os
import random
import threading
import time
from abc import ABC, abstractmethod
from typing import Any, Callable, Collection, List, Optional

import cloudpickle

from repro.errors import (
    ExecutorError,
    TransientTaskError,
    WorkerPoolError,
)
from repro.rdd.fault import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    make_retrying_task,
)
from repro.rdd.partition import Partition

PartitionFunc = Callable[[int, List[Any]], List[Any]]

logger = logging.getLogger("repro.rdd.executors")

_BrokenProcessPool = concurrent.futures.process.BrokenProcessPool


class Executor(ABC):
    """Runs one task per partition and collects results in order."""

    #: number of simulated cluster nodes (1 for the serial executor)
    num_workers: int = 1

    #: retry/replay budgets; shared with the scheduler for stage replay
    retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY

    #: True when tasks run in separate interpreters, so shuffle keys
    #: must hash identically across processes (see repro.rdd.shuffle)
    portable_hash_required: bool = False

    @abstractmethod
    def run_partition_tasks(
        self, fn: PartitionFunc, partitions: List[Partition]
    ) -> List[Partition]:
        """Apply ``fn`` to every partition, returning new partitions."""

    def job_boundary(self) -> None:
        """Called by the scheduler when a new job (action) starts.

        Lets stateful executors drop cross-job state — e.g. the
        simulated-cluster executor stops charging driver think-time
        between two separate actions as shuffle-exchange time.
        """

    def shutdown(self) -> None:
        """Release any worker resources. Idempotent."""


def _chain_partition_index(exc: BaseException, index: int) -> None:
    """Attach the failing task's partition index to an exception
    without changing its type (callers match on the original class)."""
    if getattr(exc, "partition_index", None) is None:
        try:
            exc.partition_index = index  # type: ignore[attr-defined]
            exc.add_note(f"[repro.rdd] raised by task for partition {index}")
        except Exception:  # pragma: no cover - exotic exception classes
            pass


def _collect_in_order(
    futures: List[concurrent.futures.Future],
    partitions: List[Partition],
) -> List[List[Any]]:
    """Gather future results in submission (partition) order.

    On the first failure, outstanding futures are cancelled so a dead
    stage stops consuming workers, and the failure from the
    lowest-indexed partition is raised with that index chained in —
    later tasks' exceptions are never silently dropped in favour of a
    submission-order wait. A broken process pool is re-raised as-is for
    the caller to translate into :class:`WorkerPoolError`.
    """
    done, not_done = concurrent.futures.wait(
        futures, return_when=concurrent.futures.FIRST_EXCEPTION
    )
    failures = []
    broken: Optional[BaseException] = None
    for p, f in zip(partitions, futures):
        if f in done and not f.cancelled():
            exc = f.exception()
            if exc is None:
                continue
            if isinstance(exc, _BrokenProcessPool):
                broken = exc
            else:
                failures.append((p.index, exc))
    if failures:
        for f in not_done:
            f.cancel()
        index, exc = min(failures, key=lambda pair: pair[0])
        _chain_partition_index(exc, index)
        raise exc
    if broken is not None:
        raise broken
    return [f.result() for f in futures]


class SerialExecutor(Executor):
    """Run all tasks sequentially in the driver process."""

    num_workers = 1

    def __init__(self, retry_policy: Optional[RetryPolicy] = None) -> None:
        self.retry_policy = retry_policy or DEFAULT_RETRY_POLICY

    def run_partition_tasks(
        self, fn: PartitionFunc, partitions: List[Partition]
    ) -> List[Partition]:
        task = make_retrying_task(fn, self.retry_policy)
        return [Partition(p.index, task(p.index, p.data)) for p in partitions]


class ThreadExecutor(Executor):
    """Run tasks on a shared thread pool."""

    def __init__(
        self,
        num_workers: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.num_workers = num_workers or min(8, os.cpu_count() or 1)
        self.retry_policy = retry_policy or DEFAULT_RETRY_POLICY
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.num_workers, thread_name_prefix="sj-worker"
        )

    def run_partition_tasks(
        self, fn: PartitionFunc, partitions: List[Partition]
    ) -> List[Partition]:
        task = make_retrying_task(fn, self.retry_policy)
        futures = [
            self._pool.submit(task, p.index, p.data) for p in partitions
        ]
        results = _collect_in_order(futures, partitions)
        return [
            Partition(p.index, r) for p, r in zip(partitions, results)
        ]

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


def _invoke_pickled_task(payload: bytes) -> List[Any]:
    """Worker-side entry point for the no-fork fallback: unpickle
    (fn, index, items) and run it. The payload is cloudpickle-serialized
    to support lambdas and closures."""
    fn, index, items = cloudpickle.loads(payload)
    return fn(index, items)


# Worker-process-local cache for the per-stage closure broadcast: the
# driver cloudpickles the stage function ONCE per stage and every task
# ships the same payload bytes (a cheap memcpy for the stdlib pickler);
# each worker deserializes it once per stage and reuses it for all the
# tasks it runs, instead of a cloudpickle round-trip per task. Stage
# closures can be heavy — a broadcast-hash join's closure carries the
# whole build-side hash map — so per-task deserialization would scale
# the cost by task count for no reason.
_WORKER_STAGE_CACHE: dict = {"key": None, "fn": None}


def _invoke_stage_task(
    stage_key: Any, fn_payload: bytes, index: int, items: List[Any]
) -> List[Any]:
    cache = _WORKER_STAGE_CACHE
    if cache["key"] != stage_key:
        cache["fn"] = cloudpickle.loads(fn_payload)
        cache["key"] = stage_key
    return cache["fn"](index, items)


# Stage state inherited by fork-per-stage workers (copy-on-write): the
# driver sets these immediately before forking the stage pool, so the
# workers see the task function and input partitions for free — no
# driver-side pickling of inputs. Only task *results* cross IPC, which
# plays the role of the network in the real system.
_STAGE_FN: Optional[PartitionFunc] = None
_STAGE_PARTITIONS: Optional[List[Partition]] = None


def _run_stage_task(index: int) -> List[Any]:
    assert _STAGE_FN is not None and _STAGE_PARTITIONS is not None
    p = _STAGE_PARTITIONS[index]
    return _STAGE_FN(p.index, p.data)


class ProcessExecutor(Executor):
    """Run tasks on a process pool — each process simulates a node.

    On platforms with ``fork`` (Linux), a fresh pool is forked per
    stage: the workers inherit the driver's memory copy-on-write, so
    task inputs (partitions, closures) ship for free and only results
    are pickled back. This mirrors Spark executors reading their map
    inputs locally and shuffling only outputs — without it, the driver
    serializing every input partition becomes a serial bottleneck that
    masks all scaling. Elsewhere (or with ``start_method="spawn"`` /
    ``"forkserver"``), a persistent pool is used with a *per-stage
    closure broadcast*: the stage function is cloudpickled once per
    stage and cached worker-side, instead of a cloudpickle round-trip
    per task (see :func:`_invoke_stage_task`).

    Fault tolerance: per-task retry runs *inside* the worker (an
    attempt costs no extra IPC). A worker process dying takes the whole
    fork-pool with it; that is detected structurally
    (``BrokenProcessPool``, not string matching) and surfaced as
    :class:`WorkerPoolError` so the scheduler can replay the stage from
    lineage. After ``retry_policy.degrade_after_pool_deaths``
    consecutive deaths the executor stops gambling on the pool and
    permanently degrades to serial in-driver execution, logged.
    """

    def __init__(
        self,
        num_workers: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
        start_method: Optional[str] = None,
    ) -> None:
        self.num_workers = num_workers or min(8, os.cpu_count() or 1)
        self.retry_policy = retry_policy or DEFAULT_RETRY_POLICY
        import multiprocessing

        if start_method is not None:
            # explicit override, e.g. "spawn"/"forkserver" to exercise
            # the persistent-pool path with per-stage closure broadcast
            self._mp_ctx = multiprocessing.get_context(start_method)
            self._use_fork = start_method == "fork"
        else:
            try:
                self._mp_ctx = multiprocessing.get_context("fork")
                self._use_fork = True
            except ValueError:  # pragma: no cover - non-POSIX platforms
                self._mp_ctx = multiprocessing.get_context()
                self._use_fork = False
        self._fallback_pool: Optional[
            concurrent.futures.ProcessPoolExecutor
        ] = None
        self._consecutive_pool_deaths = 0
        self._serial_fallback: Optional[SerialExecutor] = None
        self._stage_counter = 0
        # The fork path broadcasts stage state to workers through
        # module globals (_STAGE_FN/_STAGE_PARTITIONS, copy-on-write at
        # fork time); when several driver threads share one executor —
        # a QueryService multiplexing clients over one session — two
        # concurrent stages would clobber each other's globals and fork
        # workers against the wrong stage's inputs. Stages therefore
        # run one at a time; tasks within a stage still parallelize.
        self._stage_lock = threading.Lock()
        #: how many times a stage closure was cloudpickled (one per
        #: stage on the persistent-pool path, never per task)
        self.closure_pickle_count = 0

    @property
    def portable_hash_required(self) -> bool:  # type: ignore[override]
        return self._serial_fallback is None

    @property
    def degraded(self) -> bool:
        """True once the executor has fallen back to serial execution."""
        return self._serial_fallback is not None

    def run_partition_tasks(
        self, fn: PartitionFunc, partitions: List[Partition]
    ) -> List[Partition]:
        if not partitions:
            return []
        if self._serial_fallback is None and (
            self._consecutive_pool_deaths
            >= self.retry_policy.degrade_after_pool_deaths
        ):
            logger.warning(
                "ProcessExecutor: %d consecutive worker-pool deaths; "
                "degrading to serial in-driver execution",
                self._consecutive_pool_deaths,
            )
            self._serial_fallback = SerialExecutor(self.retry_policy)
        if self._serial_fallback is not None:
            return self._serial_fallback.run_partition_tasks(fn, partitions)
        if self._use_fork:
            return self._run_forked_stage(fn, partitions)
        return self._run_pickled(fn, partitions)

    def _note_pool_death(self, exc: BaseException) -> WorkerPoolError:
        self._consecutive_pool_deaths += 1
        logger.warning(
            "ProcessExecutor: worker pool died (%d consecutive): %s",
            self._consecutive_pool_deaths,
            exc,
        )
        return WorkerPoolError(
            f"worker pool died mid-stage "
            f"({self._consecutive_pool_deaths} consecutive): {exc}"
        )

    def _run_forked_stage(
        self, fn: PartitionFunc, partitions: List[Partition]
    ) -> List[Partition]:
        global _STAGE_FN, _STAGE_PARTITIONS
        workers = min(self.num_workers, len(partitions))
        pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        with self._stage_lock:
            # retry runs inside the worker: an attempt costs no extra IPC
            _STAGE_FN = make_retrying_task(fn, self.retry_policy)
            _STAGE_PARTITIONS = partitions
            try:
                try:
                    pool = concurrent.futures.ProcessPoolExecutor(
                        max_workers=workers, mp_context=self._mp_ctx
                    )
                    futures = [
                        pool.submit(_run_stage_task, i)
                        for i in range(len(partitions))
                    ]
                    results = _collect_in_order(futures, partitions)
                except (_BrokenProcessPool, concurrent.futures.BrokenExecutor) as exc:
                    raise self._note_pool_death(exc) from exc
            finally:
                if pool is not None:
                    pool.shutdown(wait=False, cancel_futures=True)
                _STAGE_FN = _STAGE_PARTITIONS = None
        self._consecutive_pool_deaths = 0
        return [
            Partition(p.index, r) for p, r in zip(partitions, results)
        ]

    def _run_pickled(
        self, fn: PartitionFunc, partitions: List[Partition]
    ) -> List[Partition]:
        task = make_retrying_task(fn, self.retry_policy)
        with self._stage_lock:
            if self._fallback_pool is None:
                self._fallback_pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.num_workers, mp_context=self._mp_ctx
                )
            self._stage_counter += 1
            stage_key = (id(self), self._stage_counter)
        # per-stage closure broadcast: cloudpickle the stage function
        # once, here; workers deserialize it once per stage (see
        # _invoke_stage_task; distinct concurrent stage_keys at worst
        # thrash that one-slot cache, never corrupt it). Partition data
        # rides the pool's stdlib pickler per task, as before.
        fn_payload = cloudpickle.dumps(task)
        self.closure_pickle_count += 1
        try:
            futures = [
                self._fallback_pool.submit(
                    _invoke_stage_task, stage_key, fn_payload,
                    p.index, p.data,
                )
                for p in partitions
            ]
            results = _collect_in_order(futures, partitions)
        except (_BrokenProcessPool, concurrent.futures.BrokenExecutor) as exc:
            # a broken persistent pool cannot run the next stage either
            self._fallback_pool.shutdown(wait=False, cancel_futures=True)
            self._fallback_pool = None
            raise self._note_pool_death(exc) from exc
        self._consecutive_pool_deaths = 0
        return [
            Partition(p.index, r) for p, r in zip(partitions, results)
        ]

    def shutdown(self) -> None:
        if self._fallback_pool is not None:
            self._fallback_pool.shutdown(wait=True)
            self._fallback_pool = None


class SimulatedClusterExecutor(Executor):
    """Deterministic cluster-timing simulation on one core.

    Machines with a single usable CPU (like CI containers) cannot show
    real multiprocess speedup, so strong-scaling studies use this
    executor instead: every task runs serially and is *timed*, then the
    stage's wall-clock on an ``num_workers``-node cluster is modelled
    as the critical path of a longest-processing-time assignment of
    tasks to workers. Time the driver spends *between* stages — the
    shuffle exchange — is charged serially, so scaling stays
    Amdahl-limited exactly like the shuffle-bound joins in the paper's
    Figure 3. Time between *jobs* (driver think-time between two
    actions) is not charged: the scheduler calls :meth:`job_boundary`
    when an action starts, which drops the previous stage's end mark.

    Read :attr:`simulated_elapsed` after the job; call :meth:`reset`
    before starting a measurement.
    """

    def __init__(
        self,
        num_workers: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.num_workers = num_workers or 1
        self.retry_policy = retry_policy or DEFAULT_RETRY_POLICY
        self.simulated_elapsed = 0.0
        self._last_return: Optional[float] = None

    def reset(self) -> None:
        self.simulated_elapsed = 0.0
        self._last_return = None

    def job_boundary(self) -> None:
        # think-time between two actions is not shuffle-exchange time
        self._last_return = None

    def run_partition_tasks(
        self, fn: PartitionFunc, partitions: List[Partition]
    ) -> List[Partition]:
        task = make_retrying_task(fn, self.retry_policy)
        now = time.perf_counter()
        if self._last_return is not None:
            # driver-side (serial) time since the previous stage ended:
            # shuffle regroup, lineage walking, result handling
            self.simulated_elapsed += now - self._last_return
        durations: List[float] = []
        out: List[Partition] = []
        for p in partitions:
            t0 = time.perf_counter()
            data = task(p.index, p.data)
            durations.append(time.perf_counter() - t0)
            out.append(Partition(p.index, data))
        # LPT list scheduling onto the simulated workers
        loads = [0.0] * self.num_workers
        for d in sorted(durations, reverse=True):
            loads[loads.index(min(loads))] += d
        self.simulated_elapsed += max(loads) if durations else 0.0
        self._last_return = time.perf_counter()
        return out


class FaultInjectingExecutor(Executor):
    """Deterministic fault injection around any executor, for testing.

    Wraps an inner executor and, on a schedule derived purely from
    ``seed`` and the logical stage number, injects three kinds of
    fault:

    - **task kills** — ``kill_tasks_per_stage`` victim tasks per stage
      raise :class:`~repro.errors.TransientTaskError` on their first
      ``faults_per_task`` attempts (simulating a worker killed
      mid-task and the task being re-queued), then succeed, which
      exercises the per-task retry path end to end.
    - **pool deaths** — stages whose logical number is in
      ``pool_death_stages`` raise
      :class:`~repro.errors.WorkerPoolError` before any task runs, on
      their first ``pool_deaths_per_stage`` attempts, which exercises
      the scheduler's lineage-based stage replay (and, when deaths
      outlast ``max_stage_attempts``, the give-up path).
    - **delays** — each task independently sleeps up to ``max_delay``
      seconds with probability ``delay_task_probability`` (seeded), to
      shake out ordering assumptions under the thread executor.

    The schedule is deterministic: the same seed and the same sequence
    of stages produce the same faults, so failing runs replay exactly.
    The logical stage number only advances when a stage *completes*,
    so a replayed stage is recognized and not re-killed forever.

    With a process-pool inner executor, use the fork start method
    (default on Linux): the injector's bookkeeping rides into workers
    copy-on-write. Per-(stage, task) attempt counts live in a closure
    created per stage, so retries within one stage see them in every
    executor kind.
    """

    def __init__(
        self,
        inner: Executor,
        seed: int = 0,
        kill_tasks_per_stage: int = 0,
        faults_per_task: int = 1,
        pool_death_stages: Collection[int] = (),
        pool_deaths_per_stage: int = 1,
        delay_task_probability: float = 0.0,
        max_delay: float = 0.001,
    ) -> None:
        self.inner = inner
        self.seed = seed
        self.kill_tasks_per_stage = kill_tasks_per_stage
        self.faults_per_task = faults_per_task
        self.pool_death_stages = frozenset(pool_death_stages)
        self.pool_deaths_per_stage = pool_deaths_per_stage
        self.delay_task_probability = delay_task_probability
        self.max_delay = max_delay
        self._completed_stages = 0
        self._injected_pool_deaths: dict = {}
        self.injected_task_faults = 0

    # -- delegation ----------------------------------------------------

    @property
    def num_workers(self) -> int:  # type: ignore[override]
        return self.inner.num_workers

    @property
    def retry_policy(self) -> RetryPolicy:  # type: ignore[override]
        return self.inner.retry_policy

    @property
    def portable_hash_required(self) -> bool:  # type: ignore[override]
        return self.inner.portable_hash_required

    def job_boundary(self) -> None:
        self.inner.job_boundary()

    def shutdown(self) -> None:
        self.inner.shutdown()

    def reset(self) -> None:
        """Restart the fault schedule (e.g. between test cases)."""
        self._completed_stages = 0
        self._injected_pool_deaths.clear()
        self.injected_task_faults = 0

    # -- injection -----------------------------------------------------

    def run_partition_tasks(
        self, fn: PartitionFunc, partitions: List[Partition]
    ) -> List[Partition]:
        stage = self._completed_stages
        if stage in self.pool_death_stages:
            deaths = self._injected_pool_deaths.get(stage, 0)
            if deaths < self.pool_deaths_per_stage:
                self._injected_pool_deaths[stage] = deaths + 1
                raise WorkerPoolError(
                    f"injected pool death at stage {stage} "
                    f"(death {deaths + 1})"
                )
        out = self.inner.run_partition_tasks(
            self._wrap(fn, stage, len(partitions)), partitions
        )
        self._completed_stages += 1
        return out

    def _wrap(
        self, fn: PartitionFunc, stage: int, num_tasks: int
    ) -> PartitionFunc:
        victims: frozenset = frozenset()
        if self.kill_tasks_per_stage and num_tasks:
            rng = random.Random(self.seed * 1_000_003 + stage)
            victims = frozenset(
                rng.sample(
                    range(num_tasks),
                    min(self.kill_tasks_per_stage, num_tasks),
                )
            )
        attempts: dict = {}
        faults_per_task = self.faults_per_task
        delay_p = self.delay_task_probability
        max_delay = self.max_delay
        seed = self.seed
        injector = self

        def faulty(index: int, items: List[Any]) -> List[Any]:
            if delay_p:
                rng = random.Random(
                    (seed * 1_000_003 + stage) * 1_000_003 + index
                )
                if rng.random() < delay_p:
                    time.sleep(rng.random() * max_delay)
            if index in victims:
                attempt = attempts.get(index, 0) + 1
                attempts[index] = attempt
                if attempt <= faults_per_task:
                    injector.injected_task_faults += 1
                    raise TransientTaskError(
                        f"injected task kill: stage {stage}, task {index},"
                        f" attempt {attempt}",
                        task_index=index,
                        partition_index=index,
                        attempts=attempt,
                    )
            return fn(index, items)

        return faulty


_EXECUTOR_KINDS = {
    "serial": SerialExecutor,
    "threads": ThreadExecutor,
    "processes": ProcessExecutor,
    "simulated": SimulatedClusterExecutor,
}


def make_executor(
    kind: str,
    num_workers: Optional[int] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> Executor:
    """Build an executor by name: ``serial``, ``threads``, ``processes``
    or ``simulated``."""
    try:
        cls = _EXECUTOR_KINDS[kind]
    except KeyError:
        raise ExecutorError(
            f"unknown executor kind {kind!r}; expected one of "
            f"{sorted(_EXECUTOR_KINDS)}"
        ) from None
    if cls is SerialExecutor:
        return cls(retry_policy)
    return cls(num_workers, retry_policy)
