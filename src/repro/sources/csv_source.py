"""CSV files as byte-range-partitioned data sources.

The driver reads only the header line and the file size; each scan
partition owns a contiguous byte range of the data region and is
decoded worker-side. Range ownership follows the classic
record-reader convention: a record belongs to the partition containing
its first byte, so a reader seeks to ``start - 1``, discards through
the end of the line containing that byte, then parses lines until its
range is exhausted (reading past ``end`` to finish a spanning record).

Limitation (inherited from byte-range splitting everywhere): records
must not contain embedded newlines inside quoted cells when
``num_partitions > 1`` — HPC monitoring logs never do.
"""

from __future__ import annotations

import csv
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.dictionary import SemanticDictionary
from repro.core.semantics import Schema
from repro.errors import SourceError
from repro.sources.base import DataSource
from repro.sources.predicate import ColumnPredicate
from repro.wrappers.codec import decode_value


class CSVSource(DataSource):
    """Read a headered CSV file lazily, one byte range per partition."""

    def __init__(
        self,
        path: str,
        schema: Schema,
        dictionary: SemanticDictionary,
        name: Optional[str] = None,
        num_partitions: int = 4,
    ) -> None:
        self.path = path
        self._schema = schema
        self.dictionary = dictionary
        self.name = name or path
        self.num_partitions_hint = max(1, num_partitions)
        self._layout: Optional[Tuple[List[str], int, int]] = None
        self._ranges: Optional[List[Tuple[int, int]]] = None

    def schema(self) -> Schema:
        return self._schema

    # -- driver side ---------------------------------------------------

    def _read_layout(self) -> Tuple[List[str], int, int]:
        """(header columns, data start offset, file size)."""
        if self._layout is not None:
            return self._layout
        try:
            size = os.path.getsize(self.path)
            with open(self.path, "rb") as f:
                header_line = f.readline()
                data_start = f.tell()
        except OSError as exc:
            raise SourceError(f"cannot read {self.path}: {exc}") from exc
        text = header_line.decode("utf-8").rstrip("\r\n")
        if not text:
            raise SourceError(f"{self.path}: empty CSV (no header)")
        header = next(csv.reader([text]))
        if not any(c in self._schema for c in header):
            raise SourceError(
                f"{self.path}: no CSV column matches the schema "
                f"fields {self._schema.fields()}"
            )
        self._layout = (header, data_start, size)
        return self._layout

    def partitions(self) -> Sequence[Tuple[int, int]]:
        if self._ranges is not None:
            return self._ranges
        _header, data_start, size = self._read_layout()
        span = max(0, size - data_start)
        n = self.num_partitions_hint
        if span == 0:
            self._ranges = [(data_start, data_start)]
            return self._ranges
        n = min(n, span)
        step = -(-span // n)
        self._ranges = [
            (s, min(s + step, size))
            for s in range(data_start, size, step)
        ]
        return self._ranges

    # -- worker side ---------------------------------------------------

    def read_partition(
        self,
        index: int,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[ColumnPredicate] = None,
    ) -> List[Dict[str, Any]]:
        rows, _ = self.read_partition_stats(index, columns, predicate)
        return rows

    def read_partition_stats(
        self,
        index: int,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[ColumnPredicate] = None,
    ):
        header, data_start, _size = self._read_layout()
        start, end = self.partitions()[index]
        known = [c for c in header if c in self._schema]
        if columns is None:
            decoded_cols = known
        else:
            need = set(columns)
            if predicate is not None:
                need.update(predicate.columns())
            decoded_cols = [c for c in known if c in need]
        wanted = None if columns is None else set(columns)

        out: List[Dict[str, Any]] = []
        rows_read = 0
        try:
            with open(self.path, "rb") as f:
                if start > data_start:
                    f.seek(start - 1)
                    f.readline()  # finish the previous range's record
                else:
                    f.seek(start)
                while f.tell() < end:
                    raw = f.readline()
                    if not raw:
                        break
                    text = raw.decode("utf-8").rstrip("\r\n")
                    if not text:
                        continue
                    fields = next(csv.reader([text]))
                    record = dict(zip(header, fields))
                    rows_read += 1
                    row: Dict[str, Any] = {}
                    for col in decoded_cols:
                        value = decode_value(
                            record.get(col), self._schema[col],
                            self.dictionary,
                        )
                        if value is not None:
                            row[col] = value
                    if not row:
                        continue
                    if predicate is not None and not predicate.matches(row):
                        continue
                    if wanted is not None:
                        row = {k: v for k, v in row.items() if k in wanted}
                        if not row:
                            continue
                    out.append(row)
                consumed = f.tell() - start
        except OSError as exc:
            raise SourceError(f"cannot read {self.path}: {exc}") from exc
        return out, {
            "rows_read": rows_read,
            "bytes_scanned": max(0, consumed),
        }
