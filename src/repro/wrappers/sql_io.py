"""SQL (sqlite3) data wrapper and unwrapper.

The paper's first DAT sources — job-queue logs and OSIsoft PI sensor
feeds — are "continuously monitored and recorded in relational
databases", read through ``session.ingest().sql(...)``
(:mod:`repro.sources.sql_source`). This module keeps the write half:
unwrapping a derived dataset back into a sqlite3 table.
"""

from __future__ import annotations

import sqlite3

from repro.errors import WrapperError
from repro.core.dataset import ScrubJayDataset
from repro.core.dictionary import SemanticDictionary
from repro.wrappers.base import Unwrapper
from repro.wrappers.codec import encode_value


class SQLUnwrapper(Unwrapper):
    """Write a dataset into a sqlite3 table (replacing it)."""

    def __init__(
        self, db_path: str, table: str, dictionary: SemanticDictionary
    ) -> None:
        self.db_path = db_path
        self.table = table
        self.dictionary = dictionary

    def save(self, dataset: ScrubJayDataset) -> str:
        fields = dataset.schema.fields()
        cols = ", ".join(f'"{f}" TEXT' for f in fields)
        placeholders = ", ".join("?" for _ in fields)
        try:
            with sqlite3.connect(self.db_path) as conn:
                conn.execute(f'DROP TABLE IF EXISTS "{self.table}"')
                conn.execute(f'CREATE TABLE "{self.table}" ({cols})')
                conn.executemany(
                    f'INSERT INTO "{self.table}" VALUES ({placeholders})',
                    (
                        tuple(
                            encode_value(
                                row.get(field),
                                dataset.schema[field],
                                self.dictionary,
                            )
                            for field in fields
                        )
                        for row in dataset.collect()
                    ),
                )
        except sqlite3.Error as exc:
            raise WrapperError(
                f"sqlite error writing {self.db_path}: {exc}"
            ) from exc
        return self.table
