"""DataSource implementations: partition layout, predicate/projection
correctness, round-trips through the unwrappers."""

import sqlite3

import pytest

from repro.core.dataset import ScrubJayDataset
from repro.core.semantics import Schema, domain, value
from repro.errors import SourceError, WrapperError
from repro.sources import (
    ColumnPredicate,
    CSVSource,
    RowsSource,
    SQLSource,
    TableSource,
)
from repro.store import WideColumnStore
from repro.units.temporal import Timestamp
from repro.wrappers import CSVUnwrapper, SQLUnwrapper

SCHEMA = Schema({
    "node": domain("compute nodes", "identifier"),
    "time": domain("time", "datetime"),
    "temp": value("temperature", "degrees Celsius"),
})


def make_rows(n=40):
    return [
        {"node": i % 4, "time": Timestamp(float(i)), "temp": 20.0 + i % 7}
        for i in range(n)
    ]


def key(row):
    return tuple(sorted((k, repr(v)) for k, v in row.items()))


def all_rows(source, columns=None, predicate=None):
    out = []
    for i in range(source.num_partitions()):
        out.extend(source.read_partition(i, columns, predicate))
    return out


def write_csv(ctx, dictionary, path, rows):
    ds = ScrubJayDataset.from_rows(ctx, rows, SCHEMA, "t")
    CSVUnwrapper(path, dictionary).save(ds)


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------

def test_csv_partitioned_read_round_trips(ctx, dictionary, tmp_path):
    path = str(tmp_path / "d.csv")
    rows = make_rows()
    write_csv(ctx, dictionary, path, rows)
    src = CSVSource(path, SCHEMA, dictionary, num_partitions=5)
    assert src.num_partitions() > 1
    assert sorted(all_rows(src), key=key) == sorted(rows, key=key)


@pytest.mark.parametrize("parts", [1, 3, 7, 64])
def test_csv_partition_count_does_not_change_rows(
    ctx, dictionary, tmp_path, parts
):
    path = str(tmp_path / "d.csv")
    rows = make_rows(23)
    write_csv(ctx, dictionary, path, rows)
    src = CSVSource(path, SCHEMA, dictionary, num_partitions=parts)
    got = sorted(all_rows(src), key=key)
    assert got == sorted(rows, key=key)


def test_csv_partitions_are_disjoint(ctx, dictionary, tmp_path):
    path = str(tmp_path / "d.csv")
    write_csv(ctx, dictionary, path, make_rows(31))
    src = CSVSource(path, SCHEMA, dictionary, num_partitions=4)
    counts = [
        len(src.read_partition(i)) for i in range(src.num_partitions())
    ]
    assert sum(counts) == 31


def test_csv_predicate_equals_read_then_filter(ctx, dictionary, tmp_path):
    path = str(tmp_path / "d.csv")
    write_csv(ctx, dictionary, path, make_rows())
    src = CSVSource(path, SCHEMA, dictionary, num_partitions=3)
    pred = ColumnPredicate.equals("node", 2).also(
        ColumnPredicate.range("time", 4.0, 30.0)
    )
    pushed = all_rows(src, predicate=pred)
    manual = [r for r in all_rows(src) if pred.matches(r)]
    assert sorted(pushed, key=key) == sorted(manual, key=key)
    assert pushed  # the filter is not vacuous


def test_csv_projection_drops_other_columns(ctx, dictionary, tmp_path):
    path = str(tmp_path / "d.csv")
    write_csv(ctx, dictionary, path, make_rows(8))
    src = CSVSource(path, SCHEMA, dictionary, num_partitions=2)
    rows = all_rows(src, columns=["node", "temp"])
    assert rows and all(set(r) <= {"node", "temp"} for r in rows)
    # predicate columns need not survive into the projected row
    pred = ColumnPredicate.range("time", 2.0, 6.0)
    rows = all_rows(src, columns=["temp"], predicate=pred)
    assert rows and all(set(r) == {"temp"} for r in rows)


def test_csv_scan_stats_report_physical_reads(ctx, dictionary, tmp_path):
    path = str(tmp_path / "d.csv")
    write_csv(ctx, dictionary, path, make_rows(20))
    src = CSVSource(path, SCHEMA, dictionary, num_partitions=1)
    pred = ColumnPredicate.equals("node", 0)
    rows, stats = src.read_partition_stats(0, predicate=pred)
    # rows_read counts rows examined, not rows returned
    assert stats["rows_read"] == 20
    assert len(rows) == 5
    assert stats["bytes_scanned"] > 0


def test_csv_missing_file_raises_source_error(dictionary, tmp_path):
    src = CSVSource(str(tmp_path / "nope.csv"), SCHEMA, dictionary)
    with pytest.raises(SourceError, match="cannot read"):
        src.partitions()


# ----------------------------------------------------------------------
# SQL
# ----------------------------------------------------------------------

def make_db(ctx, dictionary, path, rows):
    ds = ScrubJayDataset.from_rows(ctx, rows, SCHEMA, "t")
    SQLUnwrapper(path, "temps", dictionary).save(ds)


def test_sql_rowid_partitions_round_trip(ctx, dictionary, tmp_path):
    db = str(tmp_path / "perf.db")
    rows = make_rows()
    make_db(ctx, dictionary, db, rows)
    src = SQLSource(db, SCHEMA, dictionary, table="temps", num_partitions=4)
    assert src.num_partitions() == 4
    assert sorted(all_rows(src), key=key) == sorted(rows, key=key)


def test_sql_query_mode_single_partition(ctx, dictionary, tmp_path):
    db = str(tmp_path / "perf.db")
    make_db(ctx, dictionary, db, make_rows(10))
    src = SQLSource(
        db, SCHEMA, dictionary,
        query='SELECT * FROM temps WHERE node = "2"', num_partitions=4,
    )
    assert src.num_partitions() == 1
    assert all(r["node"] == 2 for r in all_rows(src))


def test_sql_predicate_pushed_into_where(ctx, dictionary, tmp_path):
    db = str(tmp_path / "perf.db")
    rows = make_rows()
    make_db(ctx, dictionary, db, rows)
    src = SQLSource(db, SCHEMA, dictionary, table="temps", num_partitions=2)
    # temp is a quantity → SQL-side WHERE; datetime filters only in Python
    pred = ColumnPredicate.range("temp", 21.0, 24.0).also(
        ColumnPredicate.range("time", 0.0, 25.0)
    )
    pushed = all_rows(src, predicate=pred)
    manual = [r for r in rows if pred.matches(r)]
    assert sorted(pushed, key=key) == sorted(manual, key=key)
    _, stats = src.read_partition_stats(0, predicate=pred)
    # the WHERE clause shrank the physical read below the half-table
    assert stats["rows_read"] < 20


def test_sql_table_xor_query(dictionary, tmp_path):
    with pytest.raises(SourceError, match="exactly one"):
        SQLSource(str(tmp_path / "x.db"), SCHEMA, dictionary)
    with pytest.raises(SourceError, match="exactly one"):
        SQLSource(str(tmp_path / "x.db"), SCHEMA, dictionary,
                  table="a", query="SELECT 1")
    # SourceError stays catchable as the legacy WrapperError
    assert issubclass(SourceError, WrapperError)


def test_sql_empty_table(ctx, dictionary, tmp_path):
    db = str(tmp_path / "empty.db")
    with sqlite3.connect(db) as conn:
        conn.execute("CREATE TABLE temps (node INTEGER, temp REAL)")
    src = SQLSource(db, SCHEMA, dictionary, table="temps")
    assert all_rows(src) == []


# ----------------------------------------------------------------------
# Rows
# ----------------------------------------------------------------------

def test_rows_source_slices_cover_everything():
    rows = make_rows(10)
    src = RowsSource(rows, SCHEMA, num_partitions=3)
    assert src.num_partitions() == 3
    assert sorted(all_rows(src), key=key) == sorted(rows, key=key)


def test_rows_source_more_partitions_than_rows():
    rows = make_rows(2)
    src = RowsSource(rows, SCHEMA, num_partitions=16)
    assert src.num_partitions() <= 2
    assert sorted(all_rows(src), key=key) == sorted(rows, key=key)


def test_rows_source_empty():
    src = RowsSource([], SCHEMA)
    assert src.num_partitions() == 1
    assert all_rows(src) == []


def test_rows_source_predicate_and_projection():
    rows = make_rows(12)
    src = RowsSource(rows, SCHEMA, num_partitions=2)
    pred = ColumnPredicate.equals("node", 1)
    got = all_rows(src, columns=["temp"], predicate=pred)
    want = [{"temp": r["temp"]} for r in rows if r["node"] == 1]
    assert sorted(got, key=key) == sorted(want, key=key)


# ----------------------------------------------------------------------
# wide-column table
# ----------------------------------------------------------------------

@pytest.fixture()
def store(tmp_path):
    return WideColumnStore(str(tmp_path / "store"))


def make_table(store, rows, memtable_limit=10):
    t = store.create_table(
        "perf", "temps", ["node"], ["time"], memtable_limit=memtable_limit
    )
    t.insert_many(rows)
    t.flush()
    return t


def test_table_source_partitions_follow_store(store):
    rows = make_rows(20)
    make_table(store, rows)
    src = TableSource(store, "perf", "temps", SCHEMA)
    assert list(src.partitions()) == [(0,), (1,), (2,), (3,)]
    assert sorted(all_rows(src), key=key) == sorted(rows, key=key)


def test_table_source_reads_every_row(ctx, dictionary, store):
    rows = make_rows(16)
    make_table(store, rows)
    src = TableSource(store, "perf", "temps", SCHEMA)
    assert sorted(all_rows(src), key=key) == sorted(rows, key=key)


def test_table_source_partition_key_pruning(store):
    make_table(store, make_rows(20))
    src = TableSource(store, "perf", "temps", SCHEMA)
    sel = src.prune(ColumnPredicate.equals("node", 2))
    assert sel.total == 4
    assert sel.indices == (2,)
    assert sel.skipped == 3
    # non-key predicates prune nothing
    sel = src.prune(ColumnPredicate.range("time", 0.0, 5.0))
    assert sel.indices == (0, 1, 2, 3)


def test_table_source_drops_unschema_fields_and_nulls(store):
    t = store.create_table("perf", "temps", ["node"])
    t.insert({"node": 1, "temp": 20.0, "mystery": 9, "time": None})
    t.flush()
    src = TableSource(store, "perf", "temps", SCHEMA)
    assert all_rows(src) == [{"node": 1, "temp": 20.0}]


def test_table_source_zone_map_skips_segments(store):
    # 40 rows / memtable_limit=10 → 4 segments, each a distinct time band
    rows = make_rows(40)
    t = store.create_table(
        "perf", "temps", ["node"], ["time"], memtable_limit=10
    )
    for r in sorted(rows, key=lambda r: r["time"].epoch):
        t.insert(r)
    t.flush()
    assert len(t._segment_paths()) == 4
    src = TableSource(store, "perf", "temps", SCHEMA)
    pred = ColumnPredicate.range("time", 0.0, 9.5)
    skipped = 0
    got = []
    for i in range(src.num_partitions()):
        part, stats = src.read_partition_stats(i, predicate=pred)
        got.extend(part)
        skipped += stats["segments_skipped"]
    assert sorted(got, key=key) == sorted(
        (r for r in rows if pred.matches(r)), key=key
    )
    assert skipped > 0
