"""Columnar vs row execution must be observationally identical.

Every test runs the same query twice — ``TuningProfile(columnar=True)``
against ``columnar=False`` — and compares collected rows. The sweep
covers pushed scans, filter transform kernels, the vectorized natural
join, the interpolation join (which has no batch kernel and must fall
back), grouped aggregation over batched results, empty/sparse inputs,
and all three executor kinds.
"""

import pytest

from repro import ScrubJaySession, TuningProfile
from repro.analysis import aggregate as agg
from tests.conftest import (
    JOBS_SCHEMA,
    LAYOUT_SCHEMA,
    TEMPS_SCHEMA,
    jobs_rows,
    layout_rows,
    temps_rows,
)


def _fig5(columnar, executor=None, **cfg):
    knobs = dict(cfg, columnar=columnar)
    if executor is not None:
        knobs["executor_kind"] = executor
    s = ScrubJaySession(TuningProfile(**knobs))
    s.register_rows(jobs_rows(), JOBS_SCHEMA, "job_queue_log")
    s.register_rows(layout_rows(), LAYOUT_SCHEMA, "node_layout")
    s.register_rows(temps_rows(), TEMPS_SCHEMA, "rack_temperatures")
    return s


def _sorted(rows):
    # canonical per-row key: field order is presentation, not meaning,
    # and repr keeps Timestamp-valued cells comparable
    return sorted(
        tuple(sorted((k, repr(v)) for k, v in r.items())) for r in rows
    )


def _ask_both(query_fn, executor=None, **cfg):
    """Run the same query columnar and row-wise; return both row lists
    plus the columnar session's kernel decisions."""
    col = _fig5(True, executor=executor, **cfg)
    try:
        col_rows = query_fn(col).collect()
        kernels = [(k.op, k.choice) for k in col.ctx.report.kernels()]
    finally:
        col.close()
    row = _fig5(False, executor=executor, **cfg)
    try:
        row_rows = query_fn(row).collect()
        assert row.ctx.report.kernels() == []
    finally:
        row.close()
    return col_rows, row_rows, kernels


def test_pushed_filter_scan_equivalent():
    def q(s):
        return (
            s.query().across("racks", "time").value("temperature")
            .where("racks", equals=17)
            .where("time", at_least=120.0, below=600.0)
            .ask()
        )

    col, row, _ = _ask_both(q)
    assert col and _sorted(col) == _sorted(row)


def test_filter_kernels_equivalent_without_pushdown():
    """With pushdown off, the filters stay transform nodes and must run
    through the vectorized mask kernels."""

    def q(s):
        return (
            s.query().across("racks", "time").value("temperature")
            .where("racks", equals=17)
            .where("time", at_least=120.0, below=600.0)
            .ask()
        )

    col, row, kernels = _ask_both(q, pushdown=False)
    assert col and _sorted(col) == _sorted(row)
    assert ("filter_equals", "batch") in kernels
    assert ("filter_range", "batch") in kernels


def test_filter_matching_nothing_stays_empty():
    def q(s):
        return (
            s.query().across("racks", "time").value("temperature")
            .where("racks", equals=999)
            .ask()
        )

    col, row, _ = _ask_both(q, pushdown=False)
    assert col == [] and row == []


def test_natural_and_interpolation_join_equivalent():
    """The Figure-5 heat pipeline: natural join vectorizes, the
    interpolation join (no batch kernel) falls back to rows — and the
    answers still agree cell for cell."""

    def q(s):
        return s.ask(
            domains=["jobs", "racks"], values=["applications", "heat"]
        )

    col, row, kernels = _ask_both(q)
    assert col and _sorted(col) == _sorted(row)
    assert ("natural_join", "batch") in kernels
    assert ("interpolation_join", "row-fallback") in kernels


@pytest.mark.parametrize("executor", ["threads", "processes"])
def test_equivalent_across_executors(executor):
    """Batches pickle across process boundaries and share across
    threads; either way the answer matches serial row execution."""

    def q(s):
        return s.ask(
            domains=["jobs", "racks"], values=["applications", "heat"]
        )

    col, row, kernels = _ask_both(q, executor=executor)
    assert col and _sorted(col) == _sorted(row)
    assert ("natural_join", "batch") in kernels


def test_group_aggregate_over_batched_answer():
    col = _fig5(True)
    row = _fig5(False)
    try:
        q = dict(domains=["racks", "time"], values=["temperature"])
        col_ans = col.ask(**q)
        row_ans = row.ask(**q)
        assert getattr(col_ans.dataset, "batched", False)
        for how in ("mean", "sum", "min", "max", "count"):
            assert agg.group_aggregate(
                col_ans.dataset, ["rack"], "temp", how
            ) == agg.group_aggregate(row_ans.dataset, ["rack"], "temp", how)
    finally:
        col.close()
        row.close()


def test_empty_registration_round_trips():
    for columnar in (True, False):
        s = ScrubJaySession(TuningProfile(columnar=columnar))
        try:
            s.register_rows([], TEMPS_SCHEMA, "rack_temperatures")
            assert s.ask(
                domains=["racks", "time"], values=["temperature"]
            ).collect() == []
        finally:
            s.close()


def test_sparse_rows_survive_join():
    """Rows missing optional fields (null slots in the batch) must come
    back exactly as the row path returns them."""
    sparse_temps = temps_rows()
    for i, r in enumerate(sparse_temps):
        if i % 3 == 0:
            r.pop("location")
        if i % 5 == 0:
            r.pop("aisle")

    def build(columnar):
        s = ScrubJaySession(TuningProfile(columnar=columnar))
        s.register_rows(layout_rows(), LAYOUT_SCHEMA, "node_layout")
        s.register_rows(sparse_temps, TEMPS_SCHEMA, "rack_temperatures")
        return s

    col, row = build(True), build(False)
    try:
        q = dict(domains=["compute nodes", "time"], values=["temperature"])
        got = col.ask(**q).collect()
        want = row.ask(**q).collect()
        assert got and _sorted(got) == _sorted(want)
        assert ("natural_join", "batch") in [
            (k.op, k.choice) for k in col.ctx.report.kernels()
        ]
    finally:
        col.close()
        row.close()
