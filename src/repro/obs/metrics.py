"""MetricsRegistry: process-safe counters, gauges, histograms.

One registry per :class:`~repro.rdd.context.SJContext` absorbs what
used to be ad-hoc counter dicts scattered across the codebase
(``DerivationCache.stats()``, ``ExecutionReport``, the serve layer's
``ServiceMetrics``): those structures keep their APIs but mirror into
the registry, so one ``to_prometheus(registry)`` dump shows the whole
system.

Metric names are dotted lowercase (``rdd.stage.rows_out``); optional
labels are a frozen tuple of ``(key, value)`` pairs so a metric can be
split by e.g. operation or tenant without unbounded key invention at
call sites.

"Process-safe" here means what it means for the executors: worker
processes never mutate driver-side state directly — per-task numbers
ride the result side-channel back to the scheduler, which accounts
them on the driver under this registry's lock. The registry itself is
thread-safe for the service's worker threads.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

Labels = Tuple[Tuple[str, str], ...]


def _labelkey(labels: Optional[Dict[str, str]]) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Histogram:
    """Streaming summary: count/sum/min/max plus a bounded reservoir
    of recent observations for percentile estimates."""

    __slots__ = ("count", "total", "min", "max", "_recent", "_cap")

    def __init__(self, reservoir: int = 512) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._recent: List[float] = []
        self._cap = reservoir

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._recent) >= self._cap:
            # Overwrite round-robin: cheap, keeps a recent window.
            self._recent[self.count % self._cap] = value
        else:
            self._recent.append(value)

    def summary(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": (self.total / self.count) if self.count else None,
        }


class MetricsRegistry:
    """Thread-safe named counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, Labels], float] = {}
        self._gauges: Dict[Tuple[str, Labels], float] = {}
        self._histograms: Dict[Tuple[str, Labels], Histogram] = {}

    # ------------------------------------------------------------------

    def inc(
        self,
        name: str,
        n: float = 1,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        key = (name, _labelkey(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + n

    def set_gauge(
        self,
        name: str,
        value: float,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        with self._lock:
            self._gauges[(name, _labelkey(labels))] = value

    def observe(
        self,
        name: str,
        value: float,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        key = (name, _labelkey(labels))
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram()
            hist.observe(value)

    # ------------------------------------------------------------------

    def counter(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> float:
        with self._lock:
            return self._counters.get((name, _labelkey(labels)), 0)

    def gauge(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> Optional[float]:
        with self._lock:
            return self._gauges.get((name, _labelkey(labels)))

    def histogram_summary(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> Optional[Dict[str, Any]]:
        with self._lock:
            hist = self._histograms.get((name, _labelkey(labels)))
            return hist.summary() if hist is not None else None

    def snapshot(self) -> Dict[str, Any]:
        """Everything, as one nested plain dict (for JSON dumps and
        test assertions). Labelled series render their labels inline
        as ``name{k=v,...}``."""

        def fmt(key: Tuple[str, Labels]) -> str:
            name, labels = key
            if not labels:
                return name
            inner = ",".join(f"{k}={v}" for k, v in labels)
            return f"{name}{{{inner}}}"

        with self._lock:
            return {
                "counters": {
                    fmt(k): v for k, v in sorted(self._counters.items())
                },
                "gauges": {
                    fmt(k): v for k, v in sorted(self._gauges.items())
                },
                "histograms": {
                    fmt(k): h.summary()
                    for k, h in sorted(self._histograms.items())
                },
            }

    def merge_counts(
        self,
        counts: Dict[str, float],
        prefix: str = "",
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """Bulk-increment counters from a plain dict — the bridge for
        legacy ``stats()`` dicts (non-numeric and rate entries are
        skipped; counters must be monotonic)."""
        for k, v in counts.items():
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                continue
            self.inc(f"{prefix}{k}" if prefix else k, v, labels)

    def set_gauges_from(
        self,
        values: Dict[str, float],
        prefix: str = "",
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """Bulk-set gauges from a snapshot dict — for legacy counter
        snapshots that are cumulative (re-setting them as gauges avoids
        double counting on repeated publication)."""
        for k, v in values.items():
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                continue
            self.set_gauge(f"{prefix}{k}" if prefix else k, v, labels)

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
