"""Each built-in transformation: schema derivation, data semantics,
applicability, and failure modes."""

import pytest

from repro.core.dataset import ScrubJayDataset
from repro.core.semantics import Schema, domain, value
from repro.core.transformations import (
    ConvertUnits,
    DeriveRate,
    DeriveRatio,
    ExplodeContinuous,
    ExplodeDiscrete,
    RenameField,
)
from repro.errors import DerivationError
from repro.units.temporal import Timestamp, TimeSpan


# ----------------------------------------------------------------------
# explode_discrete
# ----------------------------------------------------------------------

def test_explode_discrete(ctx, dictionary):
    schema = Schema({
        "job": domain("jobs", "identifier"),
        "nodelist": domain("compute nodes", "list<identifier>"),
    })
    ds = ScrubJayDataset.from_rows(ctx, [
        {"job": 1, "nodelist": [10, 11]},
        {"job": 2, "nodelist": [12]},
        {"job": 3, "nodelist": []},
    ], schema, "jobs")
    out = ExplodeDiscrete("nodelist").apply(ds, dictionary)
    assert out.schema["nodelist_exploded"].units == "identifier"
    assert "nodelist" not in out.schema
    assert out.collect() == [
        {"job": 1, "nodelist_exploded": 10},
        {"job": 1, "nodelist_exploded": 11},
        {"job": 2, "nodelist_exploded": 12},
    ]


def test_explode_discrete_not_applicable_on_scalar(dictionary):
    schema = Schema({"node": domain("compute nodes", "identifier")})
    assert not ExplodeDiscrete("node").applies(schema, dictionary)
    assert not ExplodeDiscrete("missing").applies(schema, dictionary)


def test_explode_discrete_apply_rejects_invalid(ctx, dictionary):
    schema = Schema({"node": domain("compute nodes", "identifier")})
    ds = ScrubJayDataset.from_rows(ctx, [], schema, "x")
    with pytest.raises(DerivationError):
        ExplodeDiscrete("node").apply(ds, dictionary)


def test_explode_discrete_instantiations(dictionary):
    schema = Schema({
        "a": domain("compute nodes", "list<identifier>"),
        "b": domain("racks", "identifier"),
    })
    insts = ExplodeDiscrete.instantiations(schema, dictionary)
    assert [i.field for i in insts] == ["a"]


# ----------------------------------------------------------------------
# explode_continuous
# ----------------------------------------------------------------------

def test_explode_continuous(ctx, dictionary):
    schema = Schema({
        "job": domain("jobs", "identifier"),
        "span": domain("time", "timespan"),
    })
    ds = ScrubJayDataset.from_rows(ctx, [
        {"job": 1, "span": TimeSpan(0.0, 300.0)},
    ], schema, "jobs")
    out = ExplodeContinuous("span", period=100.0).apply(ds, dictionary)
    assert out.schema["span_exploded"].units == "datetime"
    assert [r["span_exploded"].epoch for r in out.collect()] == \
        [0.0, 100.0, 200.0]


def test_explode_continuous_rejects_bad_period():
    with pytest.raises(DerivationError):
        ExplodeContinuous("span", period=0.0)


def test_explode_continuous_skips_malformed_rows(ctx, dictionary):
    schema = Schema({"span": domain("time", "timespan")})
    ds = ScrubJayDataset.from_rows(
        ctx, [{"span": TimeSpan(0, 100)}, {}], schema, "x"
    )
    out = ExplodeContinuous("span", period=50.0).apply(ds, dictionary)
    assert out.count() == 2  # only the well-formed row explodes


# ----------------------------------------------------------------------
# convert_units
# ----------------------------------------------------------------------

def test_convert_units(ctx, dictionary):
    schema = Schema({"temp": value("temperature", "degrees Celsius")})
    ds = ScrubJayDataset.from_rows(ctx, [{"temp": 100.0}], schema, "t")
    out = ConvertUnits("temp", "degrees Fahrenheit").apply(ds, dictionary)
    assert out.schema["temp"].units == "degrees Fahrenheit"
    assert out.collect()[0]["temp"] == pytest.approx(212.0)


def test_convert_units_cross_dimension_not_applicable(dictionary):
    schema = Schema({"temp": value("temperature", "degrees Celsius")})
    assert not ConvertUnits("temp", "seconds").applies(schema, dictionary)


# ----------------------------------------------------------------------
# rename_field
# ----------------------------------------------------------------------

def test_rename_field(ctx, dictionary):
    schema = Schema({"n": domain("compute nodes", "identifier")})
    ds = ScrubJayDataset.from_rows(ctx, [{"n": 1}], schema, "x")
    out = RenameField("n", "node").apply(ds, dictionary)
    assert out.schema.fields() == ["node"]
    assert out.collect() == [{"node": 1}]


def test_rename_to_existing_not_applicable(dictionary):
    schema = Schema({
        "a": domain("racks", "identifier"),
        "b": domain("jobs", "identifier"),
    })
    assert not RenameField("a", "b").applies(schema, dictionary)


# ----------------------------------------------------------------------
# derive_rate
# ----------------------------------------------------------------------

RATE_SCHEMA = Schema({
    "cpu": domain("cpus", "identifier"),
    "time": domain("time", "datetime"),
    "events": value("event count", "count"),
})


def _samples(cpu, series):
    return [
        {"cpu": cpu, "time": Timestamp(float(t)), "events": c}
        for t, c in series
    ]


def test_derive_rate_basic(ctx, dictionary):
    ds = ScrubJayDataset.from_rows(
        ctx,
        _samples(0, [(0, 100), (10, 300), (20, 400)]),
        RATE_SCHEMA, "c",
    )
    out = DeriveRate().apply(ds, dictionary)
    assert "events" not in out.schema
    sem = out.schema["events_rate"]
    assert sem.units == "count per second"
    assert sem.dimension == "event count per time"
    rows = sorted(out.collect(), key=lambda r: r["time"])
    assert [r["events_rate"] for r in rows] == [20.0, 10.0]


def test_derive_rate_groups_by_entity(ctx, dictionary):
    rows = _samples(0, [(0, 0), (10, 100)]) + _samples(1, [(0, 0), (10, 500)])
    ds = ScrubJayDataset.from_rows(ctx, rows, RATE_SCHEMA, "c")
    out = {r["cpu"]: r["events_rate"]
           for r in DeriveRate().apply(ds, dictionary).collect()}
    assert out == {0: 10.0, 1: 50.0}


def test_derive_rate_reset_safe(ctx, dictionary):
    # counter resets between t=10 and t=20; that pair must be skipped
    ds = ScrubJayDataset.from_rows(
        ctx,
        _samples(0, [(0, 1000), (10, 2000), (20, 50), (30, 150)]),
        RATE_SCHEMA, "c",
    )
    rows = sorted(DeriveRate().apply(ds, dictionary).collect(),
                  key=lambda r: r["time"])
    assert [r["events_rate"] for r in rows] == [100.0, 10.0]


def test_derive_rate_unsorted_input(ctx, dictionary):
    ds = ScrubJayDataset.from_rows(
        ctx,
        _samples(0, [(20, 400), (0, 100), (10, 300)]),
        RATE_SCHEMA, "c",
    )
    rows = sorted(DeriveRate().apply(ds, dictionary).collect(),
                  key=lambda r: r["time"])
    assert [r["events_rate"] for r in rows] == [20.0, 10.0]


def test_derive_rate_requires_counts_and_time(dictionary):
    no_time = Schema({
        "cpu": domain("cpus", "identifier"),
        "events": value("event count", "count"),
    })
    assert not DeriveRate().applies(no_time, dictionary)
    no_counts = Schema({
        "cpu": domain("cpus", "identifier"),
        "time": domain("time", "datetime"),
        "temp": value("temperature", "degrees Celsius"),
    })
    assert not DeriveRate().applies(no_counts, dictionary)


def test_derive_rate_field_subset(ctx, dictionary):
    schema = RATE_SCHEMA.with_field("other", value("event count", "count"))
    rows = [
        {"cpu": 0, "time": Timestamp(0.0), "events": 0, "other": 0},
        {"cpu": 0, "time": Timestamp(10.0), "events": 100, "other": 50},
    ]
    ds = ScrubJayDataset.from_rows(ctx, rows, schema, "c")
    out = DeriveRate(fields=["events"]).apply(ds, dictionary)
    assert "events_rate" in out.schema
    assert "other" in out.schema  # untouched
    assert "other_rate" not in out.schema


def test_derive_rate_preserves_non_count_values(ctx, dictionary):
    schema = RATE_SCHEMA.with_field(
        "temp", value("temperature", "degrees Celsius")
    )
    rows = [
        {"cpu": 0, "time": Timestamp(0.0), "events": 0, "temp": 20.0},
        {"cpu": 0, "time": Timestamp(10.0), "events": 10, "temp": 21.0},
    ]
    ds = ScrubJayDataset.from_rows(ctx, rows, schema, "c")
    out_rows = DeriveRate().apply(ds, dictionary).collect()
    assert out_rows[0]["temp"] == 21.0  # later sample's domains+values


# ----------------------------------------------------------------------
# derive_ratio
# ----------------------------------------------------------------------

def test_derive_ratio(ctx, dictionary):
    schema = Schema({
        "job": domain("jobs", "identifier"),
        "instructions": value("event count", "count"),
        "elapsed": value("time", "seconds"),
    })
    ds = ScrubJayDataset.from_rows(ctx, [
        {"job": 1, "instructions": 1000, "elapsed": 10.0},
        {"job": 2, "instructions": 500, "elapsed": 0.0},  # dropped
    ], schema, "j")
    t = DeriveRatio("instructions", "elapsed", "ips",
                    "event count per time", "count per second")
    out = t.apply(ds, dictionary)
    assert out.schema["ips"].dimension == "event count per time"
    rows = out.collect()
    assert len(rows) == 1 and rows[0]["ips"] == 100.0


def test_derive_ratio_drop_inputs(ctx, dictionary):
    schema = Schema({
        "a": value("event count", "count"),
        "b": value("time", "seconds"),
    })
    ds = ScrubJayDataset.from_rows(ctx, [{"a": 4, "b": 2.0}], schema, "x")
    t = DeriveRatio("a", "b", "r", "event count per time",
                    "count per second", drop_inputs=True)
    out = t.apply(ds, dictionary)
    assert out.schema.fields() == ["r"]
    assert out.collect() == [{"r": 2.0}]


def test_derive_ratio_requires_value_fields(dictionary):
    schema = Schema({
        "a": domain("jobs", "identifier"),
        "b": value("time", "seconds"),
    })
    t = DeriveRatio("a", "b", "r", "event count per time",
                    "count per second")
    assert not t.applies(schema, dictionary)


# ----------------------------------------------------------------------
# serialization / reflection
# ----------------------------------------------------------------------

def test_params_via_reflection():
    t = ExplodeContinuous("span", period=30.0)
    assert t.to_json_dict() == {
        "op": "explode_continuous", "field": "span", "period": 30.0
    }


def test_equality_by_params():
    assert ExplodeDiscrete("a") == ExplodeDiscrete("a")
    assert ExplodeDiscrete("a") != ExplodeDiscrete("b")
    assert ExplodeDiscrete("a") != ExplodeContinuous("a")
