#!/usr/bin/env python3
"""A compact rerun of the paper's Figure 3 scaling study (§6).

Sweeps the two most expensive derivations — Natural Join and the
novel Interpolation Join — over row counts and simulated cluster
sizes, printing the four panels as small tables. Cluster timing uses
:class:`repro.rdd.executors.SimulatedClusterExecutor` (tasks run and
are timed for real; an N-worker stage takes its critical path, and
driver-side shuffle exchange stays serial), because this machine
exposes a single CPU core.

Run: python examples/scaling_study.py
"""

from repro import SJContext, ScrubJayDataset, default_dictionary
from repro.core.combinations import InterpolationJoin, NaturalJoin
from repro.datagen.synthetic import (
    KEYED_LEFT_SCHEMA,
    KEYED_RIGHT_SCHEMA,
    TIMED_LEFT_SCHEMA,
    TIMED_RIGHT_SCHEMA,
    keyed_tables,
    timed_tables,
)

PARTITIONS = 20
DICTIONARY = default_dictionary()


def run_natural(workers, left_rows, right_rows):
    with SJContext(executor="simulated", num_workers=workers,
                   default_parallelism=PARTITIONS) as ctx:
        left = ScrubJayDataset.from_rows(
            ctx, left_rows, KEYED_LEFT_SCHEMA, "l", PARTITIONS)
        right = ScrubJayDataset.from_rows(
            ctx, right_rows, KEYED_RIGHT_SCHEMA, "r", PARTITIONS)
        ctx.executor.reset()
        NaturalJoin().apply(left, right, DICTIONARY).count()
        return ctx.executor.simulated_elapsed


def run_interp(workers, left_rows, right_rows):
    with SJContext(executor="simulated", num_workers=workers,
                   default_parallelism=PARTITIONS) as ctx:
        left = ScrubJayDataset.from_rows(
            ctx, left_rows, TIMED_LEFT_SCHEMA, "l", PARTITIONS)
        right = ScrubJayDataset.from_rows(
            ctx, right_rows, TIMED_RIGHT_SCHEMA, "r", PARTITIONS)
        ctx.executor.reset()
        InterpolationJoin(2.0).apply(left, right, DICTIONARY).count()
        return ctx.executor.simulated_elapsed


def main() -> None:
    print("Natural Join — time vs rows (10 simulated workers):")
    kl, kr = keyed_tables(160_000, num_keys=1024)
    for n in (20_000, 40_000, 80_000, 160_000):
        s = run_natural(10, kl[:n], kr)
        print(f"  {n:>8} rows: {s:6.3f} s")

    print("\nNatural Join — strong scaling (160k rows):")
    base = None
    for w in (1, 2, 4, 8, 10):
        s = run_natural(w, kl, kr)
        base = base or s
        print(f"  {w:>2} workers: {s:6.3f} s  (speedup ×{base / s:.2f})")

    print("\nInterpolation Join — time vs rows (10 simulated workers):")
    for n in (5_000, 10_000, 20_000, 40_000):
        tl, tr = timed_tables(n, num_keys=64)
        s = run_interp(10, tl, tr)
        print(f"  {n:>8} rows: {s:6.3f} s")

    print("\nInterpolation Join — strong scaling (40k rows):")
    tl, tr = timed_tables(40_000, num_keys=64)
    base = None
    for w in (1, 2, 4, 8, 10):
        s = run_interp(w, tl, tr)
        base = base or s
        print(f"  {w:>2} workers: {s:6.3f} s  (speedup ×{base / s:.2f})")

    print(
        "\nshapes to compare with the paper's Figure 3: linear growth in"
        "\nrows; speedup with workers, flattening as the serial shuffle"
        "\nexchange dominates."
    )


if __name__ == "__main__":
    main()
