"""Thin wire layer: line-delimited JSON over TCP, stdlib only.

One request per line, one JSON response per line — the simplest
protocol that lets ``examples/`` run a real client/server demo and
that a load generator can hammer from many sockets. The same request
dispatcher backs an :class:`InProcessClient`, so tests and embedded
callers speak the exact protocol without a socket.

Requests (``op`` selects the action)::

    {"op": "hello",  "version": 2}
    {"op": "ping"}
    {"op": "query",  "domains": [...], "values": [...],
     "tenant": "...", "timeout": 1.5}
    {"op": "aggregate", "domains": [...], "values": [...],
     "group_by": [...], "value_field": "...", "how": "mean",
     "partial": false}
    {"op": "explain","domains": [...], "values": [...]}
    {"op": "metrics"}
    {"op": "register", "name": "...", "schema": {...}, "rows": [...]}
    {"op": "drop", "name": "..."}
    {"op": "define_dimension" / "define_unit", ...}
    {"op": "sync"}
    {"op": "trace"}

The ``hello`` handshake pins the protocol version: a client opening a
connection announces its :data:`PROTOCOL_VERSION`, and a server on a
different version answers with a typed ``ProtocolVersionError`` naming
both versions — so a mixed-version router/shard fleet fails with one
clear message instead of a mid-query decode error. ``register``/
``drop``/``define_*``/``sync`` are the replication surface the sharded
serve tier (:mod:`repro.serve.sharded`) drives its catalog fan-out
with; their responses echo the server session's ``catalog_version``
and ``state`` fingerprint so the replicator can verify convergence.

Responses are ``{"ok": true, ...}`` or
``{"ok": false, "error": "<type name>", "message": "..."}`` — the
error type name round-trips the server-side exception class so
clients can tell a shed (``ServiceOverloadError``) from a timeout
from a planning failure and react accordingly (back off, give up,
fix the query).

Row values are text-encoded with the semantic codec
(:mod:`repro.wrappers.codec`) — the schema rides along, so a client
holding a compatible dictionary can decode typed values back.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.query import FilterTerm, Query
from repro.core.semantics import Schema
from repro.errors import (
    ProtocolVersionError,
    ScrubJayError,
    ServiceError,
    UnsupportedOpError,
    WrapperError,
)
from repro.serve.service import AggregateSpec, QueryService
from repro.wrappers.codec import decode_value, encode_value

#: NDJSON protocol version. Bump on any incompatible change to the
#: request/response shapes; the ``hello`` handshake compares versions
#: exactly (no negotiation — the fleet is deployed as one unit). The
#: streaming ops (``subscribe``/``updates``/``unsubscribe``/
#: ``advance``) are *additive*, so they ride on v2: an older v2 server
#: answers them with a typed ``UnsupportedOpError`` naming the op and
#: its supported set, which clients surface as
#: :class:`~repro.errors.UnsupportedOpError` — graceful degradation
#: instead of a handshake break.
PROTOCOL_VERSION = 2

#: every op this dispatcher understands (advertised in the typed
#: unknown-op error so a client can see what the server speaks)
SUPPORTED_OPS = (
    "hello", "ping", "metrics", "sync", "trace",
    "register", "drop", "define_dimension", "define_unit",
    "query", "explain", "aggregate", "metric",
    "subscribe", "updates", "unsubscribe", "advance",
)


# ----------------------------------------------------------------------
# shared dispatch (socket handler + in-process handle)
# ----------------------------------------------------------------------


def _values_from_wire(values: Sequence[Any]) -> List[Any]:
    """JSON arrays arrive as lists; Query.of wants str | (dim, units)."""
    out: List[Any] = []
    for v in values:
        if isinstance(v, str):
            out.append(v)
        else:
            dim, units = v
            out.append((dim, units))
    return out


def encode_rows(
    rows: List[Dict[str, Any]], schema: Schema, dictionary
) -> List[Dict[str, str]]:
    """Text-encode typed row values for JSON transport."""
    out = []
    for row in rows:
        enc: Dict[str, str] = {}
        for field, value in row.items():
            sem = schema[field] if field in schema else None
            if sem is None:
                enc[field] = str(value)
            else:
                enc[field] = encode_value(value, sem, dictionary)
        out.append(enc)
    return out


def decode_rows(
    rows: List[Dict[str, str]], schema: Schema, dictionary
) -> List[Dict[str, Any]]:
    """Invert :func:`encode_rows` given a compatible dictionary."""
    out = []
    for row in rows:
        dec: Dict[str, Any] = {}
        for field, text in row.items():
            # only strings rode the codec; JSON-native values (a
            # client pushing plain ints/floats without a dictionary)
            # pass through untouched
            if field in schema and isinstance(text, str):
                dec[field] = decode_value(text, schema[field], dictionary)
            else:
                dec[field] = text
        out.append(dec)
    return out


def encode_groups(
    groups: Dict[tuple, Any],
    group_by: Sequence[str],
    schema: Schema,
    dictionary,
) -> List[List[Any]]:
    """Wire form of a ``{group_tuple: value}`` aggregate: each entry is
    ``[[key parts (codec text)...], value]``. Key parts ride through
    the semantic codec (the group fields are result-schema fields);
    values must be JSON-native (numbers / ``[sum, count]`` partials)."""
    out: List[List[Any]] = []
    for key, value in groups.items():
        enc_key = []
        for field, part in zip(group_by, key):
            sem = schema[field] if field in schema else None
            if sem is None or part is None:
                enc_key.append(None if part is None else str(part))
            else:
                enc_key.append(encode_value(part, sem, dictionary))
        if isinstance(value, tuple):
            value = list(value)
        out.append([enc_key, value])
    return out


def decode_groups(
    groups: Sequence[Sequence[Any]],
    group_by: Sequence[str],
    schema: Schema,
    dictionary,
    partial_how: Optional[str] = None,
) -> Dict[tuple, Any]:
    """Invert :func:`encode_groups`. ``partial_how`` names the
    aggregator when the values are *unfinalized* partials (``mean``
    partials come back as 2-lists and must become tuples again)."""
    out: Dict[tuple, Any] = {}
    for enc_key, value in groups:
        key = []
        for field, part in zip(group_by, enc_key):
            if part is None:
                key.append(None)
            elif field in schema:
                key.append(decode_value(part, schema[field], dictionary))
            else:
                key.append(part)
        if partial_how in ("mean", "p50", "p95") and isinstance(
            value, list
        ):
            # mean partials are (sum, count); p50/p95 partials are
            # the raw sample tuples — both ride JSON as lists
            value = tuple(value)
        out[tuple(key)] = value
    return out


def _sub_payload(service: QueryService, sub, upd) -> Dict[str, Any]:
    """Wire form of one :class:`~repro.serve.subscribe.
    SubscriptionUpdate` (rows/groups ride the semantic codec; an
    unchanged long-poll answer carries no data)."""
    body: Dict[str, Any] = {
        "sub_id": upd.sub_id,
        "version": upd.version,
        "watermarks": dict(upd.watermarks),
        "changed": bool(upd.changed),
        "refresh_mode": upd.refresh_mode,
        "schema": (
            sub.schema.to_json_dict() if sub.schema is not None else None
        ),
    }
    if not upd.changed:
        return body
    if upd.groups is not None:
        spec = sub.aggregate
        body["groups"] = encode_groups(
            upd.groups, list(spec.group_by), sub.schema,
            service.session.dictionary,
        )
        body["group_by"] = list(spec.group_by)
        body["how"] = spec.how
        body["partial"] = bool(spec.partial)
        body["group_count"] = len(upd.groups)
    elif upd.rows is not None:
        body["rows"] = encode_rows(
            upd.rows, sub.schema, service.session.dictionary
        )
        body["row_count"] = len(upd.rows)
    return body


def _state_stamp(service: QueryService) -> Dict[str, Any]:
    """The catalog consistency stamp replication and scatter-gather
    verify against."""
    return {
        "catalog_version": service.session.catalog_version,
        "state": service.session.state_fingerprint(),
    }


def dispatch(service: QueryService, request: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one wire request against a service; never raises — all
    failures become typed error responses."""
    try:
        op = request.get("op")
        v = request.get("v")
        if v is not None and v != PROTOCOL_VERSION:
            raise ProtocolVersionError(
                f"request speaks wire protocol v{v}, server speaks "
                f"v{PROTOCOL_VERSION}; upgrade the older side",
                local=PROTOCOL_VERSION,
                remote=int(v),
            )
        if op == "hello":
            remote = request.get("version")
            if remote != PROTOCOL_VERSION:
                raise ProtocolVersionError(
                    f"client speaks wire protocol v{remote}, server "
                    f"speaks v{PROTOCOL_VERSION}; upgrade the older "
                    f"side of the connection",
                    local=PROTOCOL_VERSION,
                    remote=int(remote or 0),
                )
            return {"ok": True, "version": PROTOCOL_VERSION}
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "metrics":
            return {
                "ok": True,
                "metrics": service.snapshot().as_dict(),
            }
        if op == "sync":
            out = {"ok": True, **_state_stamp(service)}
            # Profile propagation piggybacks on the sync round: the
            # router sends its tuned knob state, the shard adopts it
            # (pinned knobs win locally) and echoes its resulting
            # tuned state + version so the router can assert fleet
            # agreement. Keys are additive — a client that sends no
            # profile gets the plain stamp and, when the session has a
            # profile, the shard's current tuned view.
            profile = getattr(service.session, "profile", None)
            if profile is not None:
                state = request.get("profile")
                if isinstance(state, dict):
                    profile.apply_tuned(state)
                echoed = profile.tuned_state()
                out["profile_version"] = echoed["version"]
                out["profile_tuned"] = echoed["tuned"]
            return out
        if op == "trace":
            from repro.obs.export import to_chrome_trace

            tracer = getattr(service.session.ctx, "tracer", None)
            roots = tracer.roots() if tracer is not None else []
            return {"ok": True, "trace": to_chrome_trace(roots)}
        if op == "register":
            schema = Schema.from_json_dict(request["schema"])
            rows = decode_rows(
                request.get("rows") or [], schema,
                service.session.dictionary,
            )
            if request.get("feed"):
                # Replicating a *live* dataset: back it with a push
                # feed so later `advance` ops can grow it in place
                # (the sharded router's feed fan-out path).
                builder = service.session.ingest().feed(
                    schema, rows=rows
                )
                if request.get("partitions"):
                    builder = builder.partitions(
                        int(request["partitions"])
                    )
                feed = builder.tail(request["name"])
                return {
                    "ok": True,
                    "feed": True,
                    "watermark": feed.watermark,
                    **_state_stamp(service),
                }
            service.session.register_rows(
                rows, schema, name=request["name"],
                num_partitions=request.get("partitions"),
            )
            return {"ok": True, **_state_stamp(service)}
        if op == "advance":
            name = request["name"]
            rows_in = request.get("rows")
            rows = None
            if rows_in is not None:
                schema = service.session.dataset(name).schema
                rows = decode_rows(
                    rows_in, schema, service.session.dictionary
                )
            out = service.advance(name, rows=rows)
            return {"ok": True, **out, **_state_stamp(service)}
        if op == "subscribe":
            tenant = str(request.get("tenant", "default"))
            if request.get("query"):
                # full-Query form (metric subscriptions): the server
                # rebuilds the bucketed plan and derives the spec
                # from the measures; ``partial`` keeps shard-mode
                # subscriptions mergeable
                sub = service.subscribe(
                    Query.from_json_dict(request["query"]),
                    tenant=tenant,
                    partial=bool(request.get("partial")),
                )
            else:
                domains = request.get("domains") or []
                values = _values_from_wire(request.get("values") or [])
                filters = tuple(
                    FilterTerm.from_json_dict(f)
                    for f in request.get("filters") or ()
                )
                sub = service.subscribe(
                    domains, values,
                    tenant=tenant,
                    filters=filters,
                    aggregate=AggregateSpec.from_wire(request),
                )
            return {
                "ok": True,
                **_sub_payload(service, sub, sub.current()),
                **_state_stamp(service),
            }
        if op == "updates":
            sub = service.subscription(request["sub_id"])
            upd = sub.updates(
                int(request.get("since_version", 0)),
                timeout=request.get("timeout"),
            )
            return {
                "ok": True,
                **_sub_payload(service, sub, upd),
                **_state_stamp(service),
            }
        if op == "unsubscribe":
            removed = service.unsubscribe(request["sub_id"])
            return {"ok": True, "removed": removed}
        if op == "drop":
            service.session.drop(request["name"])
            return {"ok": True, **_state_stamp(service)}
        if op == "define_dimension":
            service.session.define_dimension(
                request["name"],
                bool(request.get("continuous")),
                bool(request.get("ordered")),
                request.get("description", ""),
            )
            return {"ok": True, **_state_stamp(service)}
        if op == "define_unit":
            service.session.define_unit(
                request["name"],
                request["kind"],
                request.get("dimension"),
                request.get("scale", 1.0),
                request.get("offset", 0.0),
            )
            return {"ok": True, **_state_stamp(service)}
        if op == "aggregate":
            domains = request.get("domains") or []
            values = _values_from_wire(request.get("values") or [])
            filters = tuple(
                FilterTerm.from_json_dict(f)
                for f in request.get("filters") or ()
            )
            spec = AggregateSpec.from_wire(request)
            if spec is None:
                raise ServiceError(
                    "aggregate needs group_by (and value_field)"
                )
            partial = bool(request.get("partial"))
            groups, schema = service._aggregate_for_wire(
                Query.of(domains, values, filters),
                spec,
                tenant=str(request.get("tenant", "default")),
                timeout=request.get("timeout"),
                partial=partial,
            )
            return {
                "ok": True,
                "schema": schema.to_json_dict(),
                "groups": encode_groups(
                    groups, list(spec.group_by), schema,
                    service.session.dictionary,
                ),
                "group_count": len(groups),
                "partial": partial,
                **_state_stamp(service),
            }
        if op == "metric":
            # additive on v2: an older server answers with the typed
            # UnsupportedOpError below, which clients surface as
            # repro.errors.UnsupportedOpError
            from repro.metrics.compute import metric_group_fields

            q = Query.from_json_dict(request["query"])
            ticket = service.submit(
                q,
                tenant=str(request.get("tenant", "default")),
                timeout=request.get("timeout"),
            )
            ans = ticket.result()
            schema = ticket.result_schema
            gf, _ = metric_group_fields(schema, q)
            decision = ans.decision
            return {
                "ok": True,
                "schema": schema.to_json_dict(),
                "groups": encode_groups(
                    ans.groups, gf, schema,
                    service.session.dictionary,
                ),
                "group_fields": list(gf),
                "group_dims": list(ans.group_dims),
                "measures": ans.measure_keys(),
                "group_count": len(ans.groups),
                "decision": (
                    decision.as_dict()
                    if decision is not None else None
                ),
                **_state_stamp(service),
            }
        if op in ("query", "explain"):
            domains = request.get("domains") or []
            values = _values_from_wire(request.get("values") or [])
            filters = tuple(
                FilterTerm.from_json_dict(f)
                for f in request.get("filters") or ()
            )
            if op == "explain":
                plan = service.session.plan(
                    Query.of(domains, values, filters)
                )
                return {
                    "ok": True,
                    "plan": plan.describe(),
                    "operations": plan.operations(),
                    "steps": plan.num_steps(),
                }
            dataset = service.query(
                domains,
                values,
                tenant=str(request.get("tenant", "default")),
                timeout=request.get("timeout"),
                filters=filters,
            )
            rows = dataset.collect()
            return {
                "ok": True,
                "name": dataset.name,
                "schema": dataset.schema.to_json_dict(),
                "rows": encode_rows(
                    rows, dataset.schema, service.session.dictionary
                ),
                "row_count": len(rows),
                **_state_stamp(service),
            }
        return {
            "ok": False,
            "error": "UnsupportedOpError",
            "message": (
                f"unknown op {op!r}; this server supports: "
                + ", ".join(SUPPORTED_OPS)
            ),
            "op": op,
            "supported": list(SUPPORTED_OPS),
        }
    except (ScrubJayError, WrapperError) as exc:
        resp = {
            "ok": False,
            "error": type(exc).__name__,
            "message": str(exc),
        }
        if isinstance(exc, ProtocolVersionError):
            resp["local"] = exc.local
            resp["remote"] = exc.remote
        return resp
    except Exception as exc:  # malformed requests must not kill a conn
        return {
            "ok": False,
            "error": "InternalError",
            "message": f"{type(exc).__name__}: {exc}",
        }


class WireError(ServiceError):
    """Client-side surfacing of an ``ok: false`` response."""

    def __init__(self, error: str, message: str) -> None:
        super().__init__(f"{error}: {message}")
        self.error = error
        self.remote_message = message


def _raise_on_error(response: Dict[str, Any]) -> Dict[str, Any]:
    if not response.get("ok"):
        err = str(response.get("error", "UnknownError"))
        msg = str(response.get("message", ""))
        if err == "UnsupportedOpError" or (
            # A pre-streaming v2 server answers unknown ops with a
            # generic ProtocolError; map it to the same typed error so
            # callers degrade gracefully against old fleets too.
            err == "ProtocolError" and msg.startswith("unknown op")
        ):
            raise UnsupportedOpError(
                msg,
                op=response.get("op"),
                supported=response.get("supported") or (),
            )
        raise WireError(err, msg)
    return response


# ----------------------------------------------------------------------
# in-process handle
# ----------------------------------------------------------------------


class InProcessClient:
    """The wire protocol without the wire: same requests/responses,
    dispatched directly against a local service. Useful for embedding
    and for protocol tests that should not depend on sockets."""

    def __init__(self, service: QueryService) -> None:
        self.service = service

    def request(self, req: Dict[str, Any]) -> Dict[str, Any]:
        return dispatch(self.service, req)

    def ping(self) -> bool:
        return bool(_raise_on_error(self.request({"op": "ping"})).get("pong"))

    def hello(self) -> int:
        """Version handshake. Returns the server's protocol version;
        raises a typed :class:`ProtocolVersionError` on mismatch."""
        resp = self.request({"op": "hello", "version": PROTOCOL_VERSION})
        if not resp.get("ok"):
            if resp.get("error") == "ProtocolVersionError":
                raise ProtocolVersionError(
                    str(resp.get("message", "protocol version mismatch")),
                    local=PROTOCOL_VERSION,
                    remote=int(resp.get("local", 0)),
                )
            _raise_on_error(resp)
        return int(resp["version"])

    def metrics(self) -> Dict[str, Any]:
        return _raise_on_error(self.request({"op": "metrics"}))["metrics"]

    def sync(self) -> Dict[str, Any]:
        """The server session's current consistency stamp."""
        resp = _raise_on_error(self.request({"op": "sync"}))
        return {
            "catalog_version": resp["catalog_version"],
            "state": resp["state"],
        }

    def trace(self) -> Dict[str, Any]:
        """The server's span tree as Chrome Trace Event Format JSON."""
        return _raise_on_error(self.request({"op": "trace"}))["trace"]

    def register_rows(
        self,
        rows: List[Dict[str, Any]],
        schema: Schema,
        name: str,
        dictionary,
        partitions: Optional[int] = None,
        feed: bool = False,
    ) -> Dict[str, Any]:
        """Register in-memory rows on the server (replication op).
        ``feed=True`` registers them as a *live* dataset backed by a
        push feed, so later :meth:`advance` calls can grow it.
        Returns the server's post-mutation consistency stamp."""
        req: Dict[str, Any] = {
            "op": "register",
            "name": name,
            "schema": schema.to_json_dict(),
            "rows": encode_rows(rows, schema, dictionary),
            "partitions": partitions,
        }
        if feed:
            req["feed"] = True
        resp = _raise_on_error(self.request(req))
        out = {
            "catalog_version": resp["catalog_version"],
            "state": resp["state"],
        }
        if "watermark" in resp:
            out["watermark"] = resp["watermark"]
        return out

    def drop(self, name: str) -> Dict[str, Any]:
        resp = _raise_on_error(self.request({"op": "drop", "name": name}))
        return {
            "catalog_version": resp["catalog_version"],
            "state": resp["state"],
        }

    def define_dimension(
        self,
        name: str,
        continuous: bool,
        ordered: bool,
        description: str = "",
    ) -> Dict[str, Any]:
        resp = _raise_on_error(self.request({
            "op": "define_dimension",
            "name": name,
            "continuous": continuous,
            "ordered": ordered,
            "description": description,
        }))
        return {
            "catalog_version": resp["catalog_version"],
            "state": resp["state"],
        }

    def define_unit(
        self,
        name: str,
        kind: str,
        dimension: Optional[str] = None,
        scale: float = 1.0,
        offset: float = 0.0,
    ) -> Dict[str, Any]:
        resp = _raise_on_error(self.request({
            "op": "define_unit",
            "name": name,
            "kind": kind,
            "dimension": dimension,
            "scale": scale,
            "offset": offset,
        }))
        return {
            "catalog_version": resp["catalog_version"],
            "state": resp["state"],
        }

    def aggregate(
        self,
        domains: Sequence[str],
        values: Sequence[Any],
        group_by: Sequence[str],
        value_field: str,
        how: str = "mean",
        tenant: str = "default",
        timeout: Optional[float] = None,
        filters: Sequence = (),
        partial: bool = False,
        dictionary=None,
    ) -> Tuple[Dict[tuple, Any], Schema]:
        """Grouped aggregate over the wire. With a ``dictionary`` the
        group keys come back as typed tuples; without one they stay
        codec text (same contract as :meth:`query`)."""
        resp = _raise_on_error(self.request({
            "op": "aggregate",
            "domains": list(domains),
            "values": list(values),
            "group_by": list(group_by),
            "value_field": value_field,
            "how": how,
            "tenant": tenant,
            "timeout": timeout,
            "filters": [f.to_json_dict() for f in filters],
            "partial": partial,
        }))
        schema = Schema.from_json_dict(resp["schema"])
        groups: Any = resp["groups"]
        if dictionary is not None:
            groups = decode_groups(
                groups, list(group_by), schema, dictionary,
                partial_how=how if partial else None,
            )
        return groups, schema

    def metric(
        self,
        query,
        tenant: str = "default",
        timeout: Optional[float] = None,
        dictionary=None,
    ):
        """Measure query over the wire (additive v2 op — an old
        server answers :class:`~repro.errors.UnsupportedOpError`).

        ``query`` is a metric :class:`Query` (or an unbuilt builder).
        Returns a :class:`~repro.metrics.MetricAnswer`; with a
        ``dictionary`` the group-key parts come back typed, without
        one they stay codec text. The routing decision rides along as
        a plain dict on ``answer.decision``.
        """
        if not isinstance(query, Query):
            query = query.build()
        resp = _raise_on_error(self.request({
            "op": "metric",
            "query": query.to_json_dict(),
            "tenant": tenant,
            "timeout": timeout,
        }))
        from repro.metrics.compute import MetricAnswer

        schema = Schema.from_json_dict(resp["schema"])
        gf = list(resp.get("group_fields") or [])
        if dictionary is not None:
            groups = decode_groups(
                resp["groups"], gf, schema, dictionary
            )
        else:
            groups = {
                tuple(key): value for key, value in resp["groups"]
            }
        return MetricAnswer(
            query, groups, resp.get("decision"),
            tuple(resp.get("group_dims") or ()),
        )

    def explain(
        self,
        domains: Sequence[str],
        values: Sequence[Any],
        filters: Sequence = (),
    ) -> Dict[str, Any]:
        return _raise_on_error(self.request({
            "op": "explain",
            "domains": list(domains),
            "values": list(values),
            "filters": [f.to_json_dict() for f in filters],
        }))

    def query(
        self,
        domains: Sequence[str],
        values: Sequence[Any],
        tenant: str = "default",
        timeout: Optional[float] = None,
        dictionary=None,
        filters: Sequence = (),
    ) -> Tuple[List[Dict[str, Any]], Schema]:
        resp = _raise_on_error(self.request({
            "op": "query",
            "domains": list(domains),
            "values": list(values),
            "tenant": tenant,
            "timeout": timeout,
            "filters": [f.to_json_dict() for f in filters],
        }))
        schema = Schema.from_json_dict(resp["schema"])
        rows = resp["rows"]
        if dictionary is not None:
            rows = decode_rows(rows, schema, dictionary)
        return rows, schema

    # -- streaming ops (additive on v2; an old server answers these
    # -- with UnsupportedOpError) --------------------------------------

    def _decode_sub(
        self, resp: Dict[str, Any], dictionary
    ) -> Dict[str, Any]:
        out = {
            "sub_id": resp["sub_id"],
            "version": resp["version"],
            "watermarks": dict(resp.get("watermarks") or {}),
            "changed": bool(resp.get("changed")),
            "refresh_mode": resp.get("refresh_mode"),
            "schema": None,
            "rows": None,
            "groups": None,
        }
        schema = None
        if resp.get("schema") is not None:
            schema = Schema.from_json_dict(resp["schema"])
            out["schema"] = schema
        if resp.get("groups") is not None:
            groups: Any = resp["groups"]
            if dictionary is not None and schema is not None:
                groups = decode_groups(
                    groups, list(resp.get("group_by") or []),
                    schema, dictionary,
                    partial_how=(
                        resp.get("how") if resp.get("partial") else None
                    ),
                )
            out["groups"] = groups
        elif resp.get("rows") is not None:
            rows: Any = resp["rows"]
            if dictionary is not None and schema is not None:
                rows = decode_rows(rows, schema, dictionary)
            out["rows"] = rows
        return out

    def subscribe(
        self,
        domains: Sequence[str] = (),
        values: Sequence[Any] = (),
        tenant: str = "default",
        filters: Sequence = (),
        group_by: Optional[Sequence[str]] = None,
        value_field: Optional[str] = None,
        how: str = "mean",
        partial: bool = False,
        dictionary=None,
        query: Optional[Query] = None,
    ) -> Dict[str, Any]:
        """Install a standing query; returns its initial answer plus
        the ``sub_id`` to poll :meth:`updates` with. Pass a metric
        ``query`` to subscribe to a measure — the server derives the
        grouping from the measures and buckets by the grain."""
        if query is not None:
            req: Dict[str, Any] = {
                "op": "subscribe",
                "query": query.to_json_dict(),
                "tenant": tenant,
                "partial": partial,
            }
        else:
            req = {
                "op": "subscribe",
                "domains": list(domains),
                "values": list(values),
                "tenant": tenant,
                "filters": [f.to_json_dict() for f in filters],
            }
            if group_by:
                req.update(AggregateSpec(
                    tuple(group_by), str(value_field), how, partial
                ).to_wire())
        resp = _raise_on_error(self.request(req))
        return self._decode_sub(resp, dictionary)

    def updates(
        self,
        sub_id: str,
        since_version: int = 0,
        timeout: Optional[float] = None,
        dictionary=None,
    ) -> Dict[str, Any]:
        """The subscription's answer if it changed past
        ``since_version`` (``changed: False`` otherwise); ``timeout``
        long-polls server-side for the change."""
        resp = _raise_on_error(self.request({
            "op": "updates",
            "sub_id": sub_id,
            "since_version": since_version,
            "timeout": timeout,
        }))
        return self._decode_sub(resp, dictionary)

    def unsubscribe(self, sub_id: str) -> bool:
        resp = _raise_on_error(self.request({
            "op": "unsubscribe", "sub_id": sub_id,
        }))
        return bool(resp.get("removed"))

    def advance(
        self,
        name: str,
        rows: Optional[List[Dict[str, Any]]] = None,
        schema: Optional[Schema] = None,
        dictionary=None,
    ) -> Dict[str, Any]:
        """Advance feed ``name`` on the server (pushing ``rows``
        first when given; they ride the codec, so pass the feed's
        ``schema`` and a compatible ``dictionary``)."""
        req: Dict[str, Any] = {"op": "advance", "name": name}
        if rows is not None:
            if schema is not None and dictionary is not None:
                rows = encode_rows(rows, schema, dictionary)
            req["rows"] = rows
        resp = _raise_on_error(self.request(req))
        return {
            "name": resp["name"],
            "since": resp["since"],
            "watermark": resp["watermark"],
            "rows_added": resp["rows_added"],
            "evicted": resp["evicted"],
            "subscriptions_refreshed": resp["subscriptions_refreshed"],
        }

    def close(self) -> None:  # symmetry with QueryClient
        pass

    def __enter__(self) -> "InProcessClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# socket server
# ----------------------------------------------------------------------


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # one connection, many requests
        service = self.server.service  # type: ignore[attr-defined]
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            try:
                request = json.loads(line.decode("utf-8"))
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
            except (ValueError, UnicodeDecodeError) as exc:
                response = {
                    "ok": False,
                    "error": "ProtocolError",
                    "message": f"malformed request line: {exc}",
                }
            else:
                response = dispatch(service, request)
            try:
                self.wfile.write(
                    (json.dumps(response) + "\n").encode("utf-8")
                )
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                return


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class QueryServer:
    """Line-delimited-JSON TCP front-end for a :class:`QueryService`.

    Binds immediately (``port=0`` picks a free port — read
    :attr:`address`); ``start()`` serves on a background thread.
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self._server = _TCPServer((host, port), _Handler)
        self._server.service = service  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address  # type: ignore[return-value]

    def start(self) -> "QueryServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="sj-serve-wire",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()


class QueryClient(InProcessClient):
    """Socket client speaking the NDJSON protocol.

    Inherits the convenience surface (``query``/``explain``/
    ``metrics``/``ping``) from :class:`InProcessClient`; only
    :meth:`request` differs — it crosses the wire.

    Opening a connection performs the ``hello`` handshake and raises
    :class:`~repro.errors.ProtocolVersionError` against a server on a
    different protocol version (``handshake=False`` skips it, for
    protocol tests that need to speak raw).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        handshake: bool = True,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._lock = threading.Lock()  # one request/response at a time
        if handshake:
            try:
                self.hello()
            except BaseException:
                self.close()
                raise

    def request(self, req: Dict[str, Any]) -> Dict[str, Any]:
        payload = (json.dumps(req) + "\n").encode("utf-8")
        with self._lock:
            self._sock.sendall(payload)
            line = self._rfile.readline()
        if not line:
            raise WireError("ConnectionClosed", "server closed the stream")
        return json.loads(line.decode("utf-8"))

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()
