"""Regression: portable_hash is stable across *interpreter invocations*.

Shard placement (``repro.serve.sharded``) routes rows and predicates
with ``portable_hash(key) % num_shards``, and router and shard run in
different processes that may have been started at different times with
different ``PYTHONHASHSEED`` values. If any routable key type ever
leaked through to the salted builtin ``hash``, a router restart would
silently route queries to shards that don't own the rows.

These tests freeze the battery of routable key types — None, bool,
int, float, str, bytes, nested tuples, frozensets, and structural
dataclass keys — and assert that fresh ``python`` subprocesses with
*explicitly different* hash seeds compute bit-identical hashes, both
against each other and against this (third) interpreter.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys

from repro.rdd.shuffle import portable_hash

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)

# The subprocess defines an identically-shaped dataclass; the
# structural hash keys on the class __qualname__ plus field values, so
# both sides must agree on both. Defined at module scope (not nested)
# to keep the __qualname__ a bare class name on each side.
_DATACLASS_SRC = """
@dataclasses.dataclass(frozen=True)
class RouteKey:
    node: str
    sample: int
"""
exec(compile(_DATACLASS_SRC, "<routekey>", "exec"), globals())


def _battery():
    """Every key shape the shard router may legally route on."""
    return [
        None,
        True,
        False,
        0,
        1,
        -1,
        2**63 + 11,
        -(2**40),
        0.0,
        -0.0,
        2.0,        # int-valued float must co-hash with int 2
        3.141592653589793,
        -7.25,
        "",
        "node-000017",
        "café ☃",
        b"",
        b"\x00\xffraw",
        (),
        ("node-1", 42),
        ("a", (2, ("deep", None)), 5.5),
        frozenset(),
        frozenset({"x", "y", "z"}),
        frozenset({1, ("t", 2)}),
        RouteKey("n1", 7),  # noqa: F821  (defined via exec above)
        RouteKey("", -3),  # noqa: F821
        ("mixed", RouteKey("n2", 0), frozenset({False})),  # noqa: F821
    ]


_SUBPROCESS_SCRIPT = f"""
import dataclasses, json, sys
sys.path.insert(0, {_SRC!r})
from repro.rdd.shuffle import portable_hash
{_DATACLASS_SRC}
def _battery():
    return [
        None, True, False, 0, 1, -1, 2**63 + 11, -(2**40),
        0.0, -0.0, 2.0, 3.141592653589793, -7.25,
        "", "node-000017", "caf\\u00e9 \\u2603",
        b"", b"\\x00\\xffraw",
        (), ("node-1", 42), ("a", (2, ("deep", None)), 5.5),
        frozenset(), frozenset({{"x", "y", "z"}}),
        frozenset({{1, ("t", 2)}}),
        RouteKey("n1", 7), RouteKey("", -3),
        ("mixed", RouteKey("n2", 0), frozenset({{False}})),
    ]
print(json.dumps([portable_hash(k, strict=True) for k in _battery()]))
"""


def _hashes_in_fresh_interpreter(hash_seed: str):
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    out = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SCRIPT],
        env=env, capture_output=True, text=True, check=True,
    )
    return json.loads(out.stdout)


def test_hashes_identical_across_hash_seeds_and_interpreters():
    here = [portable_hash(k, strict=True) for k in _battery()]
    seed_0 = _hashes_in_fresh_interpreter("0")
    seed_other = _hashes_in_fresh_interpreter("424242")
    seed_random = _hashes_in_fresh_interpreter("random")
    assert seed_0 == here
    assert seed_other == here
    assert seed_random == here


def test_every_battery_entry_hashes_strictly():
    # the battery must stay inside the strict (process-stable) domain;
    # if someone adds a key type here that falls back to builtin hash,
    # fail loudly in-process rather than flakily across seeds
    for key in _battery():
        assert isinstance(portable_hash(key, strict=True), int)


def test_int_valued_float_routes_with_int():
    # dict semantics: 2 and 2.0 are the same key, so they must land on
    # the same shard
    assert portable_hash(2, strict=True) == portable_hash(2.0, strict=True)
    assert portable_hash(-0.0, strict=True) == portable_hash(0, strict=True)


def test_dataclass_hash_is_structural():
    same = RouteKey("n1", 7)  # noqa: F821
    other = RouteKey("n1", 8)  # noqa: F821
    assert portable_hash(same, strict=True) == portable_hash(
        RouteKey("n1", 7), strict=True  # noqa: F821
    )
    assert portable_hash(same, strict=True) != portable_hash(
        other, strict=True
    )
