"""Narrow transformations and structural ops."""

import pytest


def test_map(ctx):
    assert ctx.parallelize([1, 2, 3]).map(lambda x: x * 2).collect() == [2, 4, 6]


def test_filter(ctx):
    r = ctx.parallelize(range(10), 3).filter(lambda x: x % 2 == 0)
    assert r.collect() == [0, 2, 4, 6, 8]


def test_flatMap(ctx):
    r = ctx.parallelize([1, 2], 2).flatMap(lambda x: [x] * x)
    assert r.collect() == [1, 2, 2]


def test_map_chain_pipelines(ctx):
    r = (
        ctx.parallelize(range(20), 4)
        .map(lambda x: x + 1)
        .filter(lambda x: x % 2 == 0)
        .map(lambda x: x * 10)
    )
    assert r.collect() == [x * 10 for x in range(1, 21) if x % 2 == 0]


def test_mapPartitions(ctx):
    r = ctx.parallelize(range(10), 2).mapPartitions(lambda items: [sum(items)])
    assert r.collect() == [sum(range(5)), sum(range(5, 10))]


def test_mapPartitionsWithIndex(ctx):
    r = ctx.parallelize(range(4), 2).mapPartitionsWithIndex(
        lambda i, items: [(i, x) for x in items]
    )
    assert r.collect() == [(0, 0), (0, 1), (1, 2), (1, 3)]


def test_glom(ctx):
    r = ctx.parallelize(range(6), 3).glom()
    assert r.collect() == [[0, 1], [2, 3], [4, 5]]


def test_keyBy_keys_values(ctx):
    r = ctx.parallelize(["aa", "b"]).keyBy(len)
    assert r.collect() == [(2, "aa"), (1, "b")]
    assert r.keys().collect() == [2, 1]
    assert r.values().collect() == ["aa", "b"]


def test_mapValues_flatMapValues(ctx):
    r = ctx.parallelize([(1, 2), (3, 4)])
    assert r.mapValues(lambda v: v * 10).collect() == [(1, 20), (3, 40)]
    assert r.flatMapValues(lambda v: [v, v]).collect() == [
        (1, 2), (1, 2), (3, 4), (3, 4)
    ]


def test_sample_deterministic_and_subset(ctx):
    r = ctx.parallelize(range(1000), 8)
    a = r.sample(0.3, seed=42).collect()
    b = r.sample(0.3, seed=42).collect()
    assert a == b
    assert set(a) <= set(range(1000))
    assert 200 < len(a) < 400


def test_sample_different_seeds_differ(ctx):
    r = ctx.parallelize(range(1000), 4)
    assert r.sample(0.5, seed=1).collect() != r.sample(0.5, seed=2).collect()


def test_union(ctx):
    a = ctx.parallelize([1, 2], 2)
    b = ctx.parallelize([3], 1)
    u = a.union(b)
    assert u.collect() == [1, 2, 3]
    assert u.getNumPartitions() == 3


def test_ctx_union_many(ctx):
    rdds = [ctx.parallelize([i], 1) for i in range(4)]
    assert ctx.union(rdds).collect() == [0, 1, 2, 3]
    assert ctx.union([]).collect() == []


def test_coalesce(ctx):
    r = ctx.parallelize(range(10), 5).coalesce(2)
    assert r.getNumPartitions() == 2
    assert sorted(r.collect()) == list(range(10))


def test_coalesce_rejects_nonpositive(ctx):
    with pytest.raises(ValueError):
        ctx.parallelize([1]).coalesce(0)


def test_repartition_spreads_and_preserves(ctx):
    r = ctx.parallelize(range(100), 2).repartition(5)
    assert r.getNumPartitions() == 5
    assert sorted(r.collect()) == list(range(100))
    sizes = [len(p) for p in r.glom().collect()]
    assert max(sizes) - min(sizes) <= 2


def test_parallelize_caps_partitions_to_data(ctx):
    r = ctx.parallelize([1, 2], 10)
    assert r.getNumPartitions() <= 2


def test_empty_rdd(ctx):
    r = ctx.emptyRDD()
    assert r.collect() == []
    assert r.isEmpty()


def test_distinct(ctx):
    r = ctx.parallelize([1, 2, 2, 3, 3, 3], 3)
    assert sorted(r.distinct().collect()) == [1, 2, 3]
