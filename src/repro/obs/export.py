"""Exporters: span trees and metric registries in standard formats.

- :func:`to_json_tree` — a span tree as nested plain dicts (stable,
  test-friendly, ``json.dumps``-able).
- :func:`to_chrome_trace` — the ``chrome://tracing`` / Perfetto
  "Trace Event Format": a dict with a ``traceEvents`` list of
  complete ("ph": "X") events, timestamps in microseconds. Load the
  dumped JSON straight into a trace viewer.
- :func:`to_prometheus` — a :class:`MetricsRegistry` as the flat
  Prometheus text exposition format (counters, gauges, histogram
  summaries as ``_count``/``_sum``/``_min``/``_max`` series).
- :func:`render_analyze` — the EXPLAIN ANALYZE renderer: a plan-node
  span tree as the Figure-5-style indented text tree with per-node
  runtime stats appended to each line.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span


def to_json_tree(span: Span) -> Dict[str, Any]:
    """A span tree as one nested dict; see :meth:`Span.to_dict`."""
    return span.to_dict()


def to_chrome_trace(
    spans: Union[Span, Iterable[Span]],
    pid: int = 1,
) -> Dict[str, Any]:
    """Span tree(s) as Chrome Trace Event Format JSON (dict form).

    Each span becomes one complete event (``"ph": "X"``) with its
    counters and attributes in ``args``. Timestamps are the spans'
    ``perf_counter`` readings converted to integer microseconds —
    relative placement and durations are what a viewer shows, and
    those are exact. Spans carrying a ``worker`` attribute (executor
    tasks) are mapped to that thread lane so per-worker concurrency
    is visible.
    """
    if isinstance(spans, Span):
        spans = [spans]
    events: List[Dict[str, Any]] = []
    for root in spans:
        for span in root.walk():
            args: Dict[str, Any] = {}
            if span.counters:
                args["counters"] = dict(span.counters)
            if span.attrs:
                args["attrs"] = {
                    k: v for k, v in span.attrs.items()
                    if isinstance(v, (str, int, float, bool, type(None)))
                }
            worker = span.attrs.get("worker")
            events.append({
                "name": span.name,
                "cat": span.kind or "span",
                "ph": "X",
                "ts": int(span.start * 1e6),
                "dur": max(0, int(span.duration * 1e6)),
                "pid": pid,
                "tid": int(worker) + 2 if worker is not None else 1,
                "args": args,
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(
    spans: Union[Span, Iterable[Span]], pid: int = 1
) -> str:
    """:func:`to_chrome_trace`, serialized — ready to write to a
    ``.json`` file and open in a viewer."""
    return json.dumps(to_chrome_trace(spans, pid))


# ----------------------------------------------------------------------


def _prom_name(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if (ch.isalnum() or ch == "_") else "_")
    s = "".join(out)
    if s and s[0].isdigit():
        s = "_" + s
    return s


def _prom_labels(series: str) -> str:
    """``name{k=v,...}`` (registry snapshot form) → prometheus form."""
    if "{" not in series:
        return _prom_name(series)
    name, _, rest = series.partition("{")
    inner = rest.rstrip("}")
    pairs = []
    for item in inner.split(","):
        if not item:
            continue
        k, _, v = item.partition("=")
        pairs.append(f'{_prom_name(k)}="{v}"')
    return f"{_prom_name(name)}{{{','.join(pairs)}}}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition format."""
    snap = registry.snapshot()
    lines: List[str] = []
    for series, value in snap["counters"].items():
        lines.append(f"{_prom_labels(series)} {value}")
    for series, value in snap["gauges"].items():
        lines.append(f"{_prom_labels(series)} {value}")
    for series, summary in snap["histograms"].items():
        base = series.partition("{")[0]
        labels = series[len(base):]
        for suffix in ("count", "sum", "min", "max"):
            v = summary.get(suffix)
            if v is None:
                continue
            lines.append(
                f"{_prom_labels(base + '_' + suffix + labels)} {v}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024.0 or unit == "GB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024.0
    return f"{n:.1f}GB"


def _analyze_line(span: Span) -> str:
    stats: List[str] = []
    rows = span.counters.get("rows_out")
    if rows is not None:
        stats.append(f"rows={int(rows)}")
    approx = span.counters.get("approx_bytes")
    if approx:
        stats.append(f"~bytes={_fmt_bytes(approx)}")
    stats.append(f"time={span.duration * 1e3:.1f}ms")
    cache = span.attrs.get("cache")
    if cache:
        stats.append(f"cache={cache}")
    kernel = span.attrs.get("kernel")
    if kernel:
        stats.append(f"kernel={kernel}")
    batches = span.counters.get("batches")
    if batches is not None:
        stats.append(f"batches={int(batches)}")
    scan_rows = span.counters.get("scan.rows_read")
    if scan_rows is not None:
        stats.append(f"scan.rows_read={int(scan_rows)}")
        skipped = span.counters.get("scan.segments_skipped")
        if skipped:
            stats.append(f"scan.segments_skipped={int(skipped)}")
        pruned = span.counters.get("scan.partitions_pruned")
        if pruned:
            stats.append(f"scan.partitions_pruned={int(pruned)}")
        nbytes = span.counters.get("scan.bytes_scanned")
        if nbytes:
            stats.append(f"scan.bytes_scanned={_fmt_bytes(nbytes)}")
    label = span.attrs.get("label", span.name)
    return f"{label}  [{'; '.join(stats)}]"


def render_analyze(root: Span) -> str:
    """An EXPLAIN ANALYZE text tree from a plan-node span tree.

    ``root`` is the ``"plan"`` span produced by
    ``DerivationPlan.execute(..., tracer=..., measure=True)``; each
    descendant of kind ``"plan-node"`` renders as one line, indented
    by depth, carrying its measured rows/bytes/time and cache
    outcome.
    """
    lines: List[str] = []

    def visit(span: Span, depth: int) -> None:
        lines.append("  " * depth + _analyze_line(span))
        for c in span.children:
            if c.kind == "plan-node":
                visit(c, depth + 1)

    top = [c for c in root.children if c.kind == "plan-node"]
    if not top and root.kind == "plan-node":
        top = [root]
    for span in top:
        visit(span, 0)
    return "\n".join(lines)
