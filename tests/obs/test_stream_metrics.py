"""Streaming observability: feed gauges and ``stream.*`` counters in
the registry snapshot and the Prometheus exporter."""

from __future__ import annotations

import pytest

from repro import ScrubJaySession
from repro.datagen.synthetic import (
    KEYED_LEFT_SCHEMA,
    KEYED_RIGHT_SCHEMA,
    keyed_tables,
)
from repro.obs import MetricsRegistry, to_prometheus
from repro.serve import QueryService

from tests.serve.conftest import JOIN_DOMAINS, JOIN_VALUES


@pytest.fixture()
def feed_service():
    sj = ScrubJaySession()
    left, right = keyed_tables(60, num_keys=8)
    sj.ingest().feed(KEYED_LEFT_SCHEMA, rows=left).tail("samples")
    sj.register_rows(right, KEYED_RIGHT_SCHEMA, name="lookup")
    svc = QueryService(sj, num_workers=1)
    yield svc, sj
    svc.close()
    sj.close()


def _advance(svc, start, n):
    return svc.advance("samples", rows=[
        {"node": (start + i) % 8, "sample": 10_000 + start + i,
         "metric_a": float(start + i)}
        for i in range(n)
    ])


def test_feed_gauges_in_snapshot(feed_service):
    svc, sj = feed_service
    _advance(svc, 0, 5)
    gauges = sj.ctx.metrics.snapshot()["gauges"]
    assert gauges["feed.watermark{feed=samples}"] == 65
    assert gauges["feed.lag_rows{feed=samples}"] == 0


def test_stream_counters_in_snapshot(feed_service):
    svc, sj = feed_service
    sub = svc.subscribe(JOIN_DOMAINS, JOIN_VALUES)
    _advance(svc, 0, 5)
    _advance(svc, 5, 5)
    svc.unsubscribe(sub.sub_id)
    counters = sj.ctx.metrics.snapshot()["counters"]
    assert counters["stream.subscribe"] == 1
    assert counters["stream.unsubscribe"] == 1
    assert counters["stream.refresh.delta"] == 2
    assert counters["stream.refresh.rows"] == 10
    assert "stream.refresh.replay" not in counters
    # the classification decisions mirror in with their choice label
    assert counters["stream.delta.decisions{choice=delta}"] >= 2


def test_stream_metrics_in_prometheus_export(feed_service):
    svc, sj = feed_service
    svc.subscribe(JOIN_DOMAINS, JOIN_VALUES)
    _advance(svc, 0, 4)
    text = to_prometheus(sj.ctx.metrics)
    assert 'feed_watermark{feed="samples"} 64' in text
    assert 'feed_lag_rows{feed="samples"} 0' in text
    assert "stream_subscribe 1" in text
    assert "stream_refresh_delta 1" in text
    assert "stream_refresh_rows 4" in text
    assert 'stream_delta_decisions{choice="delta"}' in text


def test_prometheus_export_without_streams_has_no_stream_series():
    reg = MetricsRegistry()
    reg.inc("serve.completed")
    text = to_prometheus(reg)
    assert "stream_" not in text and "feed_" not in text
