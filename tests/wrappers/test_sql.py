"""SQL (sqlite3) wrapper/unwrapper."""

import sqlite3

import pytest

from repro.core.dataset import ScrubJayDataset
from repro.core.semantics import Schema, domain, value
from repro.errors import WrapperError
from repro.units.temporal import Timestamp
from repro.wrappers import SQLUnwrapper, SQLWrapper

SCHEMA = Schema({
    "node": domain("compute nodes", "identifier"),
    "time": domain("time", "datetime"),
    "temp": value("temperature", "degrees Celsius"),
})

ROWS = [
    {"node": 1, "time": Timestamp(0.0), "temp": 20.0},
    {"node": 2, "time": Timestamp(60.0), "temp": 21.0},
]


def test_round_trip_table(ctx, dictionary, tmp_path):
    db = str(tmp_path / "perf.db")
    ds = ScrubJayDataset.from_rows(ctx, ROWS, SCHEMA, "t")
    SQLUnwrapper(db, "temps", dictionary).save(ds)
    back = SQLWrapper(db, SCHEMA, dictionary, table="temps").load(ctx)
    assert back.collect() == ROWS


def test_custom_query(ctx, dictionary, tmp_path):
    db = str(tmp_path / "perf.db")
    SQLUnwrapper(db, "temps", dictionary).save(
        ScrubJayDataset.from_rows(ctx, ROWS, SCHEMA, "t")
    )
    back = SQLWrapper(
        db, SCHEMA, dictionary,
        query='SELECT * FROM temps WHERE node = "2"',
    ).load(ctx)
    assert back.collect() == [ROWS[1]]


def test_column_names_from_cursor_description(ctx, dictionary, tmp_path):
    # the paper's "common data wrapper extracts column names from their
    # schemas": native sqlite tables (typed columns) work too
    db = str(tmp_path / "native.db")
    with sqlite3.connect(db) as conn:
        conn.execute("CREATE TABLE temps (node INTEGER, temp REAL, junk TEXT)")
        conn.execute("INSERT INTO temps VALUES (5, 19.5, 'x')")
    back = SQLWrapper(db, SCHEMA, dictionary, table="temps").load(ctx)
    assert back.collect() == [{"node": 5, "temp": 19.5}]


def test_table_and_query_mutually_exclusive(dictionary, tmp_path):
    with pytest.raises(WrapperError):
        SQLWrapper(str(tmp_path / "x.db"), SCHEMA, dictionary)
    with pytest.raises(WrapperError):
        SQLWrapper(str(tmp_path / "x.db"), SCHEMA, dictionary,
                   table="a", query="SELECT 1")


def test_missing_table_raises(ctx, dictionary, tmp_path):
    db = str(tmp_path / "empty.db")
    sqlite3.connect(db).close()
    with pytest.raises(WrapperError, match="sqlite error"):
        SQLWrapper(db, SCHEMA, dictionary, table="none").load(ctx)


def test_unwrapper_replaces_table(ctx, dictionary, tmp_path):
    db = str(tmp_path / "perf.db")
    ds = ScrubJayDataset.from_rows(ctx, ROWS, SCHEMA, "t")
    SQLUnwrapper(db, "temps", dictionary).save(ds)
    SQLUnwrapper(db, "temps", dictionary).save(ds)  # no error, replaced
    back = SQLWrapper(db, SCHEMA, dictionary, table="temps").load(ctx)
    assert back.count() == 2
