"""Domain-specific derivations provided by system experts (paper §7).

These two derivations are the paper's worked examples of the green
"domain-specific derivations" box in Figure 2: reusable rules written
once by someone who understands the facility, then discovered and
applied automatically by the derivation engine whenever a query needs
them.

- :class:`DeriveHeat` (§7.2): each rack carries six temperature
  sensors — top/middle/bottom of the hot and cold aisles. The
  instantaneous heat generated at a rack location is approximated by
  the hot-aisle minus cold-aisle temperature difference at one instant
  in time.
- :class:`DeriveActiveFrequency` (§7.3): CPUs expose no direct active
  frequency; instead MPERF increments at the rated (base) frequency
  and APERF at the active frequency, so
  ``active = (ΔAPERF/Δt) / (ΔMPERF/Δt) × rated``. The rates come from
  :class:`~repro.core.transformations.DeriveRate`, and the rated
  frequency from the static CPU-specification dataset — a relation the
  engine must infer (Figure 7).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.dataset import ScrubJayDataset
from repro.core.derivation import Transformation, register_derivation
from repro.core.dictionary import SemanticDictionary
from repro.core.semantics import DOMAIN, VALUE, Schema, SemanticType

#: Conventional labels for the two rack aisles.
HOT_AISLE = "hot"
COLD_AISLE = "cold"


@register_derivation
class DeriveHeat(Transformation):
    """Heat ≈ hot-aisle temperature − cold-aisle temperature.

    Requires a dataset with a temperature value defined over an aisle
    domain (labels ``hot``/``cold``) and a datetime domain. Rows are
    grouped by every *other* domain field (rack, rack location, time);
    each group with both aisles present yields one row where the aisle
    field and raw temperature are replaced by a ``heat`` value in
    delta-degrees-Celsius.
    """

    op_name = "derive_heat"

    OUT_FIELD = "heat"

    def __init__(self) -> None:
        pass

    # ------------------------------------------------------------------

    def _aisle_field(self, schema: Schema) -> Optional[str]:
        fields = schema.fields_for("aisles", DOMAIN)
        return fields[0] if len(fields) == 1 else None

    def _temp_field(self, schema: Schema) -> Optional[str]:
        fields = schema.fields_for("temperature", VALUE)
        return fields[0] if len(fields) == 1 else None

    def applies(self, schema: Schema, dictionary: SemanticDictionary) -> bool:
        return (
            self._aisle_field(schema) is not None
            and self._temp_field(schema) is not None
            and self.OUT_FIELD not in schema
            and any(
                dictionary.has_unit(sem.units)
                and dictionary.unit(sem.units).kind == "datetime"
                for sem in schema.domain_fields().values()
            )
        )

    def derive_schema(
        self, schema: Schema, dictionary: SemanticDictionary
    ) -> Schema:
        aisle = self._aisle_field(schema)
        temp = self._temp_field(schema)
        assert aisle is not None and temp is not None
        return (
            schema.without_field(aisle)
            .without_field(temp)
            .with_field(
                self.OUT_FIELD,
                SemanticType(VALUE, "heat", "delta degrees Celsius"),
            )
        )

    def apply(
        self, dataset: ScrubJayDataset, dictionary: SemanticDictionary
    ) -> ScrubJayDataset:
        self._check(dataset, dictionary)
        schema = dataset.schema
        aisle = self._aisle_field(schema)
        temp = self._temp_field(schema)
        assert aisle is not None and temp is not None
        group_fields = [
            f for f in schema.domain_fields() if f != aisle
        ]
        out_field = self.OUT_FIELD

        def key(row: Dict[str, Any]):
            return tuple(row.get(f) for f in group_fields)

        def heat(kv) -> List[Dict[str, Any]]:
            _k, rows = kv
            hot = [r[temp] for r in rows
                   if r.get(aisle) == HOT_AISLE and temp in r]
            cold = [r[temp] for r in rows
                    if r.get(aisle) == COLD_AISLE and temp in r]
            if not hot or not cold:
                return []
            base = next(r for r in rows if temp in r)
            new = {
                k: v for k, v in base.items() if k not in (aisle, temp)
            }
            new[out_field] = sum(hot) / len(hot) - sum(cold) / len(cold)
            return [new]

        rdd = dataset.rdd.keyBy(key).groupByKey().flatMap(heat)
        return dataset.with_rdd(
            rdd,
            self.derive_schema(schema, dictionary),
            name=f"{dataset.name}|{self.op_name}",
            provenance={"op": self.op_name, "input": dataset.provenance},
        )

    @classmethod
    def instantiations(
        cls, schema: Schema, dictionary: SemanticDictionary
    ) -> List["DeriveHeat"]:
        inst = cls()
        return [inst] if inst.applies(schema, dictionary) else []


@register_derivation
class DeriveActiveFrequency(Transformation):
    """Active CPU frequency from APERF/MPERF rates × rated frequency.

    Requires value fields on the dimensions ``aperf events per time``,
    ``mperf events per time`` (produced by ``derive_rate``) and
    ``rated frequency`` (from the CPU-specification dataset, reached
    via a natural join the engine infers). Adds an
    ``active_frequency`` value on the ``active frequency`` dimension.
    """

    op_name = "derive_active_frequency"

    OUT_FIELD = "active_frequency"

    def __init__(self) -> None:
        pass

    def _field_on(self, schema: Schema, dim: str) -> Optional[str]:
        fields = schema.fields_for(dim, VALUE)
        return fields[0] if len(fields) == 1 else None

    def applies(self, schema: Schema, dictionary: SemanticDictionary) -> bool:
        return (
            self._field_on(schema, "aperf events per time") is not None
            and self._field_on(schema, "mperf events per time") is not None
            and self._field_on(schema, "rated frequency") is not None
            and self.OUT_FIELD not in schema
        )

    def derive_schema(
        self, schema: Schema, dictionary: SemanticDictionary
    ) -> Schema:
        return schema.with_field(
            self.OUT_FIELD,
            SemanticType(VALUE, "active frequency", "active gigahertz"),
        )

    def apply(
        self, dataset: ScrubJayDataset, dictionary: SemanticDictionary
    ) -> ScrubJayDataset:
        self._check(dataset, dictionary)
        schema = dataset.schema
        aperf = self._field_on(schema, "aperf events per time")
        mperf = self._field_on(schema, "mperf events per time")
        rated = self._field_on(schema, "rated frequency")
        assert aperf and mperf and rated
        out_field = self.OUT_FIELD

        def derive(row: Dict[str, Any]) -> List[Dict[str, Any]]:
            if aperf not in row or mperf not in row or rated not in row:
                return []
            if not row[mperf]:
                return []
            new = dict(row)
            new[out_field] = row[aperf] / row[mperf] * row[rated]
            return [new]

        return dataset.with_rdd(
            dataset.rdd.flatMap(derive),
            self.derive_schema(schema, dictionary),
            name=f"{dataset.name}|{self.op_name}",
            provenance={"op": self.op_name, "input": dataset.provenance},
        )

    @classmethod
    def instantiations(
        cls, schema: Schema, dictionary: SemanticDictionary
    ) -> List["DeriveActiveFrequency"]:
        inst = cls()
        return [inst] if inst.applies(schema, dictionary) else []
