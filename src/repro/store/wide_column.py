"""Wide-column store: keyspace / table / partition key / clustering key.

Mimics the slice of Cassandra's data model that HPC monitoring
ingestion uses (paper §7.1: "a distributed ingestion framework to
continuously collect LDMS data into a distributed NoSQL database
store"):

- a **partition key** (one or more columns) groups rows that are
  stored and scanned together — e.g. ``(node_id,)`` for node counters;
- **clustering columns** order rows inside a partition — e.g. the
  sample timestamp;
- writes append to a per-table **memtable**; ``flush()`` (or exceeding
  the memtable limit) writes an immutable, sorted **segment** file
  plus a **zone map** sidecar (per-column min/max/null-count and the
  partition keys present) used to skip segments at scan time;
- ``scan()`` merge-reads segments plus the memtable, optionally
  restricted to one partition, projected to ``columns``, and filtered
  by a pushed-down ``predicate`` — segments whose zone map proves no
  row can match are never unpickled.

Values must be picklable; rows are plain dicts.
"""

from __future__ import annotations

import math
import os
import pickle
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import StoreError

#: zone maps list explicit partition keys up to this many per segment;
#: beyond it the list is dropped (pruning falls back to reading rows)
ZONE_PKEY_CAP = 1024


def _zone_epoch(value: Any) -> Any:
    """Normalize orderable values (Timestamps → epoch) for min/max."""
    return getattr(value, "epoch", value)


def build_zone_map(rows: Sequence[Dict[str, Any]],
                   pkeys: Sequence[Tuple]) -> Dict[str, Any]:
    """Per-segment statistics: row count, partition keys, and for each
    column its min/max over non-null *finite* values, a null count, and
    a count of non-finite (NaN/±inf) values.

    A column absent from ``columns`` appears in *no* row; a column with
    ``min``/``max`` of None holds unorderable (or mixed-type) values
    and cannot be range-pruned. NaN and ±inf never fold into min/max —
    a single NaN would otherwise poison both bounds (every comparison
    with NaN is False, freezing min/max at whatever came before it) and
    let pruning skip segments whose NaN rows the row-level filter would
    keep. Conservative by construction — pruning built on these stats
    may only skip segments that provably cannot match.
    """
    columns: Dict[str, Dict[str, Any]] = {}
    unorderable: set = set()
    for row in rows:
        for col, value in row.items():
            stats = columns.setdefault(
                col, {"min": None, "max": None, "present": 0, "nans": 0}
            )
            if value is None:
                continue
            stats["present"] += 1
            if col in unorderable:
                continue
            v = _zone_epoch(value)
            try:
                finite = math.isfinite(v)
            except TypeError:
                finite = True  # non-numeric; orderability decided below
            if not finite:
                stats["nans"] += 1
                continue
            try:
                if stats["min"] is None or v < stats["min"]:
                    stats["min"] = v
                if stats["max"] is None or v > stats["max"]:
                    stats["max"] = v
            except TypeError:
                unorderable.add(col)
                stats["min"] = None
                stats["max"] = None
    n = len(rows)
    out_cols = {
        col: {
            "min": None if col in unorderable else stats["min"],
            "max": None if col in unorderable else stats["max"],
            "nulls": n - stats["present"],
            "nans": stats["nans"],
        }
        for col, stats in columns.items()
    }
    key_list = sorted(set(pkeys), key=repr)
    return {
        "rows": n,
        "pkeys": key_list if len(key_list) <= ZONE_PKEY_CAP else None,
        "columns": out_cols,
    }


class Table:
    """One wide-column table (created through :class:`WideColumnStore`)."""

    def __init__(
        self,
        directory: str,
        name: str,
        partition_key: Sequence[str],
        clustering: Sequence[str] = (),
        memtable_limit: int = 10_000,
    ) -> None:
        if not partition_key:
            raise StoreError(f"table {name!r} needs a partition key")
        self.directory = directory
        self.name = name
        self.partition_key = tuple(partition_key)
        self.clustering = tuple(clustering)
        self.memtable_limit = memtable_limit
        self._memtable: Dict[Tuple, List[dict]] = {}
        self._memtable_rows = 0
        os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def _pkey(self, row: Dict[str, Any]) -> Tuple:
        try:
            return tuple(row[c] for c in self.partition_key)
        except KeyError as exc:
            raise StoreError(
                f"row missing partition key column {exc} for table "
                f"{self.name!r}"
            ) from None

    def _ckey(self, row: Dict[str, Any]) -> Tuple:
        return tuple(row.get(c) for c in self.clustering)

    def insert(self, row: Dict[str, Any]) -> None:
        """Append one row; flushes automatically at the memtable limit."""
        self._memtable.setdefault(self._pkey(row), []).append(dict(row))
        self._memtable_rows += 1
        if self._memtable_rows >= self.memtable_limit:
            self.flush()

    def insert_many(self, rows: Sequence[Dict[str, Any]]) -> None:
        for row in rows:
            self.insert(row)

    def flush(self) -> Optional[str]:
        """Write the memtable as one sorted, immutable segment file,
        plus its zone-map sidecar (``zones-NNNNNN.pkl``) stamped with
        the segment's mtime/length so staleness is detectable."""
        if not self._memtable:
            return None
        seg_rows: List[dict] = []
        for pkey in sorted(self._memtable, key=repr):
            part = sorted(self._memtable[pkey], key=self._ckey)
            seg_rows.extend(part)
        zone = build_zone_map(seg_rows, list(self._memtable))
        seg_id = len(self._segment_paths())
        path = os.path.join(self.directory, f"segment-{seg_id:06d}.pkl")
        with open(path, "wb") as f:
            pickle.dump(seg_rows, f)
        self._write_zone(path, zone)
        self._memtable.clear()
        self._memtable_rows = 0
        return path

    def append_rows(
        self, rows: Sequence[Dict[str, Any]]
    ) -> Dict[str, Any]:
        """Insert ``rows`` and seal them into new immutable segments.

        The streaming-ingestion write path: every call ends with the
        appended rows durably sealed (a ``flush`` even below the
        memtable limit), each new segment carrying its zone-map
        sidecar, and *no sealed segment rewritten* — ``flush`` only
        ever writes ``segment-{next_id}`` files. Returns the sealed
        segment paths and the table's new committed segment count (the
        feed offset for :class:`~repro.sources.table_source.TableSource`
        tailing).
        """
        before = self.segment_count()
        had_memtable = self._memtable_rows > 0
        self.insert_many(rows)
        if self._memtable:
            self.flush()
        paths = self._segment_paths()
        return {
            "sealed": paths[before:],
            "segment_count": len(paths),
            "rows": len(rows),
            # rows that were sitting in the memtable before this call
            # get sealed along with the append
            "flushed_memtable": had_memtable,
        }

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def segment_count(self) -> int:
        """Number of sealed segments (the append-feed offset)."""
        return len(self._segment_paths())

    def read_segment_range(
        self, lo: int, hi: int
    ) -> List[Dict[str, Any]]:
        """Rows of sealed segments ``[lo, hi)`` in segment order.

        Segment ids are allocated densely by ``flush`` (id = count at
        seal time), so the sorted path list indexes by id. The memtable
        is deliberately excluded: feed-visible data is sealed data.
        """
        paths = self._segment_paths()
        if lo < 0 or hi > len(paths):
            raise StoreError(
                f"segment range [{lo}, {hi}) outside sealed segments "
                f"[0, {len(paths)}) of table {self.name!r}"
            )
        out: List[Dict[str, Any]] = []
        for path in paths[lo:hi]:
            with open(path, "rb") as f:
                out.extend(pickle.load(f))
        return out

    def _segment_paths(self) -> List[str]:
        return sorted(
            os.path.join(self.directory, f)
            for f in os.listdir(self.directory)
            if f.startswith("segment-") and f.endswith(".pkl")
        )

    @staticmethod
    def _zone_path(segment_path: str) -> str:
        head, tail = os.path.split(segment_path)
        return os.path.join(head, "zones-" + tail[len("segment-"):])

    @staticmethod
    def _segment_stamp(segment_path: str) -> Optional[Dict[str, Any]]:
        try:
            st = os.stat(segment_path)
        except OSError:
            return None
        return {"mtime": st.st_mtime, "size": st.st_size}

    def _write_zone(self, segment_path: str, zone: Dict[str, Any]) -> None:
        zone = dict(zone, stamp=self._segment_stamp(segment_path))
        with open(self._zone_path(segment_path), "wb") as f:
            pickle.dump(zone, f)

    def _load_zone(self, segment_path: str) -> Optional[Dict[str, Any]]:
        zpath = self._zone_path(segment_path)
        if not os.path.exists(zpath):
            return None  # pre-zone-map segment: never prune it
        try:
            with open(zpath, "rb") as f:
                zone = pickle.load(f)
        except (OSError, pickle.PickleError, EOFError):
            return None
        # a sidecar surviving a segment rewrite must not be believed:
        # only trust it when its stamp matches the live segment file
        if zone.get("stamp") != self._segment_stamp(segment_path):
            return None
        return zone

    def ensure_zone_maps(self) -> int:
        """Backfill missing or stale zone-map sidecars; returns how many
        segments were (re)scanned.

        Segments whose sidecar exists and matches the segment's current
        mtime/length are skipped without being read, so opening a table
        whose sidecars are all present touches no segment data.
        """
        rebuilt = 0
        for path in self._segment_paths():
            if self._load_zone(path) is not None:
                continue
            try:
                with open(path, "rb") as f:
                    seg_rows = pickle.load(f)
            except (OSError, pickle.PickleError, EOFError):
                continue  # unreadable segment: leave unpruned
            pkeys = {self._pkey(row) for row in seg_rows}
            self._write_zone(path, build_zone_map(seg_rows, sorted(
                pkeys, key=repr)))
            rebuilt += 1
        return rebuilt

    def segment_zones(self) -> List[Tuple[str, Optional[Dict[str, Any]]]]:
        """(segment path, zone map or None) for every segment."""
        return [(p, self._load_zone(p)) for p in self._segment_paths()]

    def _segment_skippable(
        self,
        zone: Optional[Dict[str, Any]],
        partition: Optional[Tuple],
        predicate: Optional[Any],
    ) -> bool:
        """True when the zone map proves no segment row can match."""
        if zone is None:
            return False
        if partition is not None and zone.get("pkeys") is not None \
                and partition not in zone["pkeys"]:
            return True
        if predicate is not None:
            may = getattr(predicate, "segment_may_match", None)
            if may is not None and not may(zone):
                return True
        return False

    def scan(
        self,
        partition: Optional[Tuple] = None,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[Any] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Iterate rows (all, or one partition), clustering-ordered
        within each source.

        ``predicate`` is a row filter exposing ``matches(row)`` and
        (optionally) ``segment_may_match(zone)`` — typically a
        :class:`repro.sources.predicate.ColumnPredicate`. Segments the
        zone maps rule out are skipped without being read; ``columns``
        projects surviving rows.
        """
        stats: Dict[str, Any] = {}
        return self._scan_impl(partition, columns, predicate, stats)

    def scan_stats(
        self,
        partition: Optional[Tuple] = None,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[Any] = None,
    ) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
        """Materializing :meth:`scan` that also reports read statistics:
        ``rows_read`` (rows examined after partition restriction,
        before the predicate), ``bytes_scanned`` (segment file bytes
        unpickled), ``segments_read`` and ``segments_skipped``."""
        stats: Dict[str, Any] = {}
        rows = list(self._scan_impl(partition, columns, predicate, stats))
        return rows, stats

    def _scan_impl(
        self,
        partition: Optional[Tuple],
        columns: Optional[Sequence[str]],
        predicate: Optional[Any],
        stats: Dict[str, Any],
    ) -> Iterator[Dict[str, Any]]:
        if partition is not None and not isinstance(partition, tuple):
            partition = (partition,)
        wanted = set(columns) if columns is not None else None
        stats.update(
            rows_read=0, bytes_scanned=0, segments_read=0,
            segments_skipped=0,
        )

        def emit(row: Dict[str, Any]) -> Optional[Dict[str, Any]]:
            stats["rows_read"] += 1
            if predicate is not None and not predicate.matches(row):
                return None
            if wanted is None:
                return row
            projected = {k: v for k, v in row.items() if k in wanted}
            return projected or None

        for path in self._segment_paths():
            if self._segment_skippable(
                self._load_zone(path), partition, predicate
            ):
                stats["segments_skipped"] += 1
                continue
            stats["segments_read"] += 1
            try:
                stats["bytes_scanned"] += os.path.getsize(path)
            except OSError:
                pass
            with open(path, "rb") as f:
                for row in pickle.load(f):
                    if partition is None or self._pkey(row) == partition:
                        out = emit(row)
                        if out is not None:
                            yield out
        for pkey, rows in self._memtable.items():
            if partition is None or pkey == partition:
                for row in sorted(rows, key=self._ckey):
                    out = emit(row)
                    if out is not None:
                        yield out

    def scan_batches(
        self,
        partition: Optional[Tuple] = None,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[Any] = None,
    ) -> Tuple[List[Any], Dict[str, Any]]:
        """Columnar :meth:`scan_stats`: one
        :class:`~repro.columnar.batch.ColumnBatch` per surviving
        segment (plus one for the memtable), with the predicate
        evaluated as a vectorized mask and the projection applied
        column-wise. Zone-map skipping and the reported statistics are
        identical to the row scan; the segment rows never become
        per-row work downstream — they pivot straight into typed
        column buffers here.
        """
        from repro.columnar import ColumnBatch, kernels

        if partition is not None and not isinstance(partition, tuple):
            partition = (partition,)
        stats: Dict[str, Any] = dict(
            rows_read=0, bytes_scanned=0, segments_read=0,
            segments_skipped=0,
        )
        batches: List[Any] = []

        def emit(rows: List[dict]) -> None:
            stats["rows_read"] += len(rows)
            if not rows:
                return
            batch = ColumnBatch.from_rows(rows)
            if predicate is not None:
                batch = kernels.apply_predicate(batch, predicate)
            if columns is not None:
                batch = batch.project(columns).drop_all_null_rows()
            if batch.num_rows:
                batches.append(batch)

        for path in self._segment_paths():
            if self._segment_skippable(
                self._load_zone(path), partition, predicate
            ):
                stats["segments_skipped"] += 1
                continue
            stats["segments_read"] += 1
            try:
                stats["bytes_scanned"] += os.path.getsize(path)
            except OSError:
                pass
            with open(path, "rb") as f:
                seg_rows = pickle.load(f)
            if partition is not None:
                seg_rows = [
                    r for r in seg_rows if self._pkey(r) == partition
                ]
            emit(seg_rows)
        mem_rows: List[dict] = []
        for pkey, rows in self._memtable.items():
            if partition is None or pkey == partition:
                mem_rows.extend(sorted(rows, key=self._ckey))
        emit(mem_rows)
        return batches, stats

    def count(self) -> int:
        return sum(1 for _ in self.scan())

    def partitions(self) -> List[Tuple]:
        """Distinct partition keys across segments and memtable.

        Reads zone-map sidecars where available; only segments without
        one (or whose key list overflowed the cap) are scanned."""
        seen = set()
        for path in self._segment_paths():
            zone = self._load_zone(path)
            if zone is not None and zone.get("pkeys") is not None:
                seen.update(zone["pkeys"])
                continue
            with open(path, "rb") as f:
                for row in pickle.load(f):
                    seen.add(self._pkey(row))
        seen.update(self._memtable)
        return sorted(seen, key=repr)


class WideColumnStore:
    """A directory of keyspaces, each a directory of tables."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._tables: Dict[Tuple[str, str], Table] = {}

    def _table_dir(self, keyspace: str, table: str) -> str:
        return os.path.join(self.root, keyspace, table)

    def create_table(
        self,
        keyspace: str,
        name: str,
        partition_key: Sequence[str],
        clustering: Sequence[str] = (),
        memtable_limit: int = 10_000,
    ) -> Table:
        key = (keyspace, name)
        if key in self._tables:
            raise StoreError(
                f"table {keyspace}.{name} already exists in this store"
            )
        meta_path = os.path.join(self._table_dir(keyspace, name), "meta.pkl")
        table = Table(
            self._table_dir(keyspace, name),
            name,
            partition_key,
            clustering,
            memtable_limit,
        )
        with open(meta_path, "wb") as f:
            pickle.dump(
                {
                    "partition_key": tuple(partition_key),
                    "clustering": tuple(clustering),
                },
                f,
            )
        self._tables[key] = table
        return table

    def table(self, keyspace: str, name: str) -> Table:
        """Open a table, reading its metadata from disk if needed."""
        key = (keyspace, name)
        if key in self._tables:
            return self._tables[key]
        meta_path = os.path.join(self._table_dir(keyspace, name), "meta.pkl")
        if not os.path.exists(meta_path):
            raise StoreError(f"no table {keyspace}.{name} in this store")
        with open(meta_path, "rb") as f:
            meta = pickle.load(f)
        table = Table(
            self._table_dir(keyspace, name),
            name,
            meta["partition_key"],
            meta["clustering"],
        )
        table.ensure_zone_maps()
        self._tables[key] = table
        return table

    def keyspaces(self) -> List[str]:
        return sorted(
            d
            for d in os.listdir(self.root)
            if os.path.isdir(os.path.join(self.root, d))
        )

    def tables(self, keyspace: str) -> List[str]:
        ks_dir = os.path.join(self.root, keyspace)
        if not os.path.isdir(ks_dir):
            return []
        return sorted(
            d
            for d in os.listdir(ks_dir)
            if os.path.isdir(os.path.join(ks_dir, d))
        )

    def append_rows(
        self, keyspace: str, table: str, rows: Sequence[Dict[str, Any]]
    ) -> Dict[str, Any]:
        """Append ``rows`` to a table, sealing them into fresh
        segments with zone-map sidecars (see
        :meth:`Table.append_rows`)."""
        return self.table(keyspace, table).append_rows(rows)

    def flush_all(self) -> None:
        for table in self._tables.values():
            table.flush()
