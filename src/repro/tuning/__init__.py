"""Online self-tuning: close the loop from telemetry to knobs.

Since the adaptive-execution work, every physical choice the engine
makes is recorded on the :class:`~repro.rdd.stats.ExecutionReport` —
join strategies with the statistics that drove them, shuffle shapes,
kernel batch-vs-fallback outcomes, cache counters — and since the
timing work those decisions carry measured wall-clock costs. This
module is the consumer that ROADMAP item 5 calls for: a
:class:`Tuner` that scans the report after each query, computes
per-decision *regret* (how much slower the chosen strategy was than
the modeled cost of the alternative), and applies bounded,
hysteresis-damped adjustments to the session's
:class:`~repro.config.TuningProfile`.

Rules implemented:

- **shuffle-join regret** — a join shuffled because the small side's
  *estimated* bytes exceeded the broadcast threshold, but its row
  count was broadcast-friendly and the measured shuffle ran slower
  than the modeled broadcast cost (size sampling over-estimates, e.g.
  shared objects counted once per row) → raise
  ``adaptive.broadcast_threshold_bytes`` just past the estimate;
- **broadcast-join regret** — a broadcast measured slower than the
  modeled shuffle cost (the estimate under-counted the build side) →
  lower the threshold below the build side's estimate;
- **kernel fallback** — columnar execution is on but one operator's
  kernel keeps falling back to the row path → add that operator to
  ``engine.columnar_off_ops`` so it skips the failed vectorization
  attempt;
- **result-cache churn** — the serve tier's result-cache hit rate
  collapses with expirations/invalidations dominating → shrink
  ``serve.result_ttl``.

Every applied adjustment is recorded as a :class:`TuningDecision`
(old value, new value, evidence, regret) on the report — surfacing in
``EXPLAIN ANALYZE`` and as ``tuning.*`` metrics — and persisted under
the session's ``cache_dir`` so tuning survives restarts.

Safety properties (tested in ``tests/tuning/``): adjustments clamp to
each knob's declared bounds; alternating evidence never oscillates a
knob (hysteresis requires consecutive same-direction proposals); a
per-knob cooldown lets each adjustment's effect be measured before
the next move; user-pinned knobs are never touched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.config import KNOBS, TuningProfile, clamp
from repro.errors import ConfigError

__all__ = ["Tuner", "TuningDecision"]


@dataclass
class TuningDecision:
    """One applied knob adjustment, with its evidence.

    Lands on the :class:`~repro.rdd.stats.ExecutionReport` next to the
    join/shuffle/kernel decisions it was derived from, so the full
    causal chain — statistics → choice → measured cost → regret →
    adjustment — is auditable from a single trail.
    """

    knob: str
    old: Any
    new: Any
    #: estimated seconds lost to the mis-tuned knob across the
    #: observations that triggered this adjustment
    regret: float
    #: the observations that fired the rule, human-readable
    evidence: str
    reason: str

    kind = "tuning"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "knob": self.knob,
            "old": self.old,
            "new": self.new,
            "regret": self.regret,
            "evidence": self.evidence,
            "reason": self.reason,
        }

    def __str__(self) -> str:
        return (
            f"tuning[{self.knob}] {self.old!r} -> {self.new!r}"
            f" (regret {self.regret:.3f}s): {self.reason};"
            f" {self.evidence}"
        )


@dataclass
class _Pending:
    """Accumulated same-direction evidence for one knob (hysteresis)."""

    direction: str  # "up" | "down" | the merge token for set-knobs
    count: int = 0
    value: Any = None
    regret: float = 0.0
    evidence: List[str] = field(default_factory=list)
    reason: str = ""


class Tuner:
    """Observes an :class:`ExecutionReport`, adjusts a profile.

    One tuner per session, created when ``tuning.enabled`` is on. The
    session calls :meth:`observe` after each executed plan; the serve
    tier additionally feeds result-cache counters through
    :meth:`observe_cache`. All rule parameters (hysteresis depth,
    cooldown, regret thresholds) are themselves knobs on the profile.
    """

    #: EWMA smoothing for the per-row cost rates
    _ALPHA = 0.3

    def __init__(
        self,
        profile: TuningProfile,
        report,
        metrics=None,
        store_path: Optional[str] = None,
    ) -> None:
        self.profile = profile
        self.report = report
        self.metrics = metrics
        self.store_path = store_path
        self._cursor = 0  # decisions consumed so far
        self._pending: Dict[str, _Pending] = {}
        self._cooldown: Dict[str, int] = {}
        # Modeled per-row costs (seconds/row), calibrated online from
        # measured joins via EWMA. Seeds are deliberately rough — they
        # only need the *ordering* right (shuffle costs a few times a
        # broadcast per row) until real measurements arrive.
        self._broadcast_rate = 1.5e-6
        self._shuffle_rate = 4.0e-6
        #: all decisions applied over this tuner's lifetime
        self.applied: List[TuningDecision] = []

    # -- main loop -----------------------------------------------------

    def observe(self) -> List[TuningDecision]:
        """Consume new report decisions, fire rules, apply what the
        hysteresis admits. Returns the adjustments applied now."""
        decisions = self.report.decisions
        new = decisions[self._cursor:]
        self._cursor = len(decisions)
        proposed = False
        for d in new:
            if self.metrics is not None:
                self.metrics.inc(
                    "tuning.observed", labels={"kind": d.kind}
                )
            if d.kind == "join":
                self._calibrate(d)
                proposed |= self._rule_join(d)
            elif d.kind == "kernel":
                proposed |= self._rule_kernel(d)
        if not (proposed or new):
            return []
        return self._apply_ready()

    # -- cost model ----------------------------------------------------

    def _calibrate(self, d) -> None:
        if d.measured_s is None or d.measured_s <= 0:
            return
        rows = max(1, d.left_rows + d.right_rows)
        rate = d.measured_s / rows
        if d.strategy == "broadcast":
            self._broadcast_rate += self._ALPHA * (
                rate - self._broadcast_rate
            )
        else:
            self._shuffle_rate += self._ALPHA * (
                rate - self._shuffle_rate
            )

    def _predicted_broadcast_s(self, d) -> float:
        return self._broadcast_rate * max(1, d.left_rows + d.right_rows)

    def _predicted_shuffle_s(self, d) -> float:
        return self._shuffle_rate * max(1, d.left_rows + d.right_rows)

    # -- rules ---------------------------------------------------------

    def _significant(self, regret: float, measured: float) -> bool:
        return (
            regret > self.profile.get("tuning.regret_threshold") * measured
            and regret > self.profile.get("tuning.min_regret_s")
        )

    def _rule_join(self, d) -> bool:
        """Broadcast-threshold regret, both directions."""
        if not d.adaptive or d.measured_s is None:
            return False
        small_bytes = min(d.left_bytes, d.right_bytes)
        small_rows = (
            d.left_rows if d.left_bytes <= d.right_bytes else d.right_rows
        )
        if d.strategy == "shuffle":
            # Shuffled only because the *size estimate* crossed the
            # threshold, while the row count stayed broadcast-friendly
            # — the signature of an over-estimate. Regret = measured
            # shuffle minus modeled broadcast.
            if small_bytes <= d.threshold_bytes:
                return False  # shuffled for another reason (rows, hint)
            row_cap = self.profile.get(
                "adaptive.broadcast_threshold_rows"
            )
            if small_rows > row_cap:
                return False
            regret = d.measured_s - self._predicted_broadcast_s(d)
            if not self._significant(regret, d.measured_s):
                return False
            target = int(math.ceil(small_bytes * 1.25))
            self._propose(
                "adaptive.broadcast_threshold_bytes", "up", target,
                regret,
                f"join[{d.op}] shuffled {d.measured_s:.3f}s vs"
                f" ~{self._predicted_broadcast_s(d):.3f}s modeled"
                f" broadcast (small side ~{small_bytes} B est,"
                f" {small_rows} rows)",
                "shuffle chosen on an over-estimated small side;"
                " raising broadcast threshold past the estimate",
            )
            return True
        # broadcast path: regret vs the modeled shuffle cost
        build_bytes = (
            d.left_bytes if d.build_side == "left" else d.right_bytes
        )
        regret = d.measured_s - self._predicted_shuffle_s(d)
        if not self._significant(regret, d.measured_s):
            return False
        target = int(build_bytes * 0.8)
        self._propose(
            "adaptive.broadcast_threshold_bytes", "down", target,
            regret,
            f"join[{d.op}] broadcast {d.measured_s:.3f}s vs"
            f" ~{self._predicted_shuffle_s(d):.3f}s modeled shuffle"
            f" (build side ~{build_bytes} B est)",
            "broadcast measured slower than the stats-predicted"
            " shuffle; lowering broadcast threshold below the build"
            " side",
        )
        return True

    def _rule_kernel(self, d) -> bool:
        """Per-operator columnar gate: an operator whose kernel keeps
        falling back pays vectorization-attempt overhead for nothing."""
        if not self.profile.get("engine.columnar"):
            return False
        if d.choice != "row-fallback" or d.reason.startswith("tuned"):
            return False
        fallbacks = sum(
            1
            for k in self.report.decisions
            if k.kind == "kernel"
            and k.op == d.op
            and k.choice == "row-fallback"
        )
        batched = sum(
            1
            for k in self.report.decisions
            if k.kind == "kernel" and k.op == d.op and k.choice == "batch"
        )
        if fallbacks < 3 or fallbacks <= batched:
            return False
        current = self.profile.get("engine.columnar_off_ops")
        if d.op in current:
            return False
        self._propose(
            "engine.columnar_off_ops", f"off:{d.op}",
            tuple(sorted(set(current) | {d.op})), 0.0,
            f"kernel[{d.op}] fell back {fallbacks}x vs {batched}"
            f" batched (last: {d.reason})",
            "kernel fallback dominates this operator; gating it off"
            " the columnar path",
        )
        return True

    def observe_cache(self, stats: Mapping[str, Any]) -> List[TuningDecision]:
        """Feed result-cache counters (the serve tier calls this).

        Detects the churn signature — plenty of lookups, hit rate
        collapsed, expirations/invalidations rivaling hits — and
        proposes halving ``serve.result_ttl``. Counters are cumulative;
        deltas are taken against the previous call.
        """
        prev = getattr(self, "_cache_prev", None)
        self._cache_prev = dict(stats)
        if prev is None:
            return []
        d = {
            k: stats.get(k, 0) - prev.get(k, 0)
            for k in ("hits", "misses", "expirations", "invalidations")
        }
        lookups = d["hits"] + d["misses"]
        if lookups < 20:
            return []
        hit_rate = d["hits"] / lookups
        churn = d["expirations"] + d["invalidations"]
        # the *effective* TTL: the service reports the cache's live
        # value (which may come from a ServeConfig override rather
        # than the profile knob); the profile is the fallback
        ttl = stats.get("ttl", self.profile.get("serve.result_ttl"))
        if hit_rate >= 0.2 or churn < d["hits"] or ttl is None:
            return self._apply_ready()
        self._propose(
            "serve.result_ttl", "down", max(0.05, ttl / 2), 0.0,
            f"result cache {d['hits']} hits / {d['misses']} misses"
            f" ({hit_rate:.0%}), {churn} expired/invalidated",
            "result-cache hit rate collapsed under churn; shrinking"
            " TTL so entries stop outliving their usefulness",
        )
        return self._apply_ready()

    # -- hysteresis & application -------------------------------------

    def _propose(
        self,
        knob: str,
        direction: str,
        value: Any,
        regret: float,
        evidence: str,
        reason: str,
    ) -> None:
        if not self.profile.tunable(knob):
            return  # pinned or untunable: never even accumulates
        p = self._pending.get(knob)
        if p is None or p.direction != direction:
            # opposite/new direction resets the streak — this is what
            # keeps alternating evidence from oscillating the knob
            p = self._pending[knob] = _Pending(direction=direction)
        p.count += 1
        p.value = value
        p.regret += max(0.0, regret)
        p.evidence.append(evidence)
        p.reason = reason

    def _apply_ready(self) -> List[TuningDecision]:
        need = self.profile.get("tuning.hysteresis")
        applied: List[TuningDecision] = []
        for knob, p in list(self._pending.items()):
            if p.count < need:
                continue
            if self._cooldown.get(knob, 0) > 0:
                self._cooldown[knob] -= 1
                continue
            del self._pending[knob]
            decision = self._apply(knob, p)
            if decision is not None:
                applied.append(decision)
        return applied

    def _apply(self, knob: str, p: _Pending) -> Optional[TuningDecision]:
        k = KNOBS[knob]
        value = p.value
        if k.kind in ("int", "float") and value is not None:
            value = clamp(knob, value)
        if knob == "engine.columnar_off_ops":
            # merge against the *current* value — another rule firing
            # in between must not be overwritten
            op = p.direction.split(":", 1)[1]
            value = tuple(
                sorted(set(self.profile.get(knob)) | {op})
            )
        old = self.profile.get(knob)
        if value == old:
            return None  # clamped back onto the current value: no-op
        try:
            self.profile.tune(knob, value)
        except ConfigError:
            return None  # pinned between propose and apply
        decision = TuningDecision(
            knob=knob,
            old=old,
            new=value,
            regret=p.regret,
            evidence="; ".join(p.evidence[-3:]),
            reason=getattr(p, "reason", ""),
        )
        self.applied.append(decision)
        self.report.add(decision)  # mirrors tuning.decisions counter
        if self.metrics is not None and isinstance(
            value, (int, float)
        ) and not isinstance(value, bool):
            self.metrics.set_gauge(f"tuning.value.{knob}", value)
        self._cooldown[knob] = self.profile.get("tuning.cooldown")
        self._save()
        return decision

    def _save(self) -> None:
        if self.store_path is None:
            return
        try:
            self.profile.save_tuned(self.store_path)
        except OSError:
            pass  # persistence is advisory, never load-bearing
