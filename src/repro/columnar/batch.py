"""ColumnBatch: the columnar record batch the vectorized kernels run on.

A batch holds a horizontal slice of a dataset as *columns*: one typed
value buffer plus a validity bitmap per field, instead of one dict per
row. Types are chosen per column when the batch is built:

- ``"f"`` — float64 values in an ``array('d')``;
- ``"q"`` — int64 values in an ``array('q')``;
- ``"dict"`` — dictionary-encoded strings: an ``array('q')`` of codes
  into a per-column list of distinct values (HPC identifier columns —
  node names, application names — have tiny cardinality, so encoding
  both shrinks the batch and lets kernels evaluate a predicate once
  per *distinct* value instead of once per row);
- ``"obj"`` — anything else (Timestamps, TimeSpans, lists) as a plain
  Python list.

Null handling follows the row convention of the rest of the codebase,
where a missing value is an *absent dict key*: a column slot whose
validity byte is 0 means "this row does not have this field", and
``to_rows`` omits it, so a row→batch→row round trip is exact for the
sparse dict rows every wrapper produces. ``None`` values are
normalized to nulls on the way in (sources already drop them). NaN is
a *value*, not a null — it stays in the buffer and flows through
kernels with IEEE comparison semantics, exactly like the row path.

Batches are plain picklable objects, so they ride through thread and
process executors the same way rows do.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Column", "ColumnBatch", "count_rows"]

_I64_MIN = -(2 ** 63)
_I64_MAX = 2 ** 63 - 1


class Column:
    """One typed column: ``(kind, data, validity[, dictionary])``.

    ``validity`` is a bytearray (1 = value present). Invalid slots hold
    a type-appropriate placeholder (0.0 / 0 / code 0 / None) that must
    never be observed through the public accessors.
    """

    __slots__ = ("kind", "data", "validity", "dictionary")

    def __init__(
        self,
        kind: str,
        data: Any,
        validity: bytearray,
        dictionary: Optional[List[str]] = None,
    ) -> None:
        self.kind = kind
        self.data = data
        self.validity = validity
        self.dictionary = dictionary

    # pickle support for __slots__ classes
    def __getstate__(self):
        return (self.kind, self.data, self.validity, self.dictionary)

    def __setstate__(self, state):
        self.kind, self.data, self.validity, self.dictionary = state

    def __len__(self) -> int:
        return len(self.validity)

    def get(self, i: int) -> Any:
        """Value at row ``i``, or None when the slot is null."""
        if not self.validity[i]:
            return None
        if self.kind == "dict":
            return self.dictionary[self.data[i]]
        return self.data[i]

    def values(self) -> List[Any]:
        """All slots as Python values, None where null (kernel food)."""
        valid = self.validity
        if self.kind == "dict":
            d = self.dictionary
            if 0 not in valid:
                return list(map(d.__getitem__, self.data))
            return [
                d[c] if v else None for c, v in zip(self.data, valid)
            ]
        if 0 not in valid:
            if self.kind in ("f", "q"):
                return self.data.tolist()
            return list(self.data)
        return [x if v else None for x, v in zip(self.data, valid)]

    def take(self, indices: Sequence[int]) -> "Column":
        # map() keeps the gather loop in C; the no-null fast path
        # skips the per-slot validity gather entirely
        data = self.data
        validity = self.validity
        gathered = map(data.__getitem__, indices)
        if self.kind in ("f", "q"):
            out = array(data.typecode, gathered)
        else:
            out = list(gathered)
        if 0 not in validity:
            new_validity = bytearray(b"\x01") * len(out)
        else:
            new_validity = bytearray(map(validity.__getitem__, indices))
        return Column(self.kind, out, new_validity, self.dictionary)

    def approx_bytes(self) -> int:
        if self.kind in ("f", "q"):
            n = len(self.data) * self.data.itemsize
        elif self.kind == "dict":
            n = len(self.data) * self.data.itemsize + sum(
                len(s) + 49 for s in self.dictionary
            )
        else:
            n = len(self.data) * 56
        return n + len(self.validity)


def _encode_column(raw: List[Any], present: int) -> Column:
    """Pick the physical kind for one column's raw values (None =
    null) and build the typed buffer.

    ``bool`` is excluded from the numeric kinds on purpose (it is an
    ``int`` subclass but a semantically different value), as are int
    subclasses generally — strict ``type() is`` checks keep exotic
    types on the exact-preserving object path.
    """
    validity = bytearray(0 if v is None else 1 for v in raw)
    n = len(raw)
    if present:
        kinds = {type(v) for v in raw if v is not None}
        if kinds == {float}:
            return Column(
                "f",
                array("d", (0.0 if v is None else v for v in raw)),
                validity,
            )
        if kinds == {int} and all(
            v is None or _I64_MIN <= v <= _I64_MAX for v in raw
        ):
            return Column(
                "q",
                array("q", (0 if v is None else v for v in raw)),
                validity,
            )
        if kinds == {str}:
            codes: Dict[str, int] = {}
            data = array("q", bytes(8) * n)
            for i, v in enumerate(raw):
                if v is None:
                    continue
                code = codes.get(v)
                if code is None:
                    code = codes[v] = len(codes)
                data[i] = code
            return Column("dict", data, validity, list(codes))
    return Column("obj", list(raw), validity)


class ColumnBatch:
    """A set of equal-length named :class:`Column` buffers."""

    __slots__ = ("cols", "num_rows")

    def __init__(self, cols: Dict[str, Column], num_rows: int) -> None:
        self.cols = cols
        self.num_rows = num_rows

    def __getstate__(self):
        return (self.cols, self.num_rows)

    def __setstate__(self, state):
        self.cols, self.num_rows = state

    # -- construction --------------------------------------------------

    @staticmethod
    def from_rows(rows: Sequence[Dict[str, Any]]) -> "ColumnBatch":
        """Pivot sparse dict rows into columns (missing/None → null)."""
        n = len(rows)
        raw: Dict[str, List[Any]] = {}
        present: Dict[str, int] = {}
        for i, row in enumerate(rows):
            for k, v in row.items():
                col = raw.get(k)
                if col is None:
                    col = raw[k] = [None] * n
                    present[k] = 0
                if v is not None:
                    col[i] = v
                    present[k] += 1
        return ColumnBatch(
            {k: _encode_column(v, present[k]) for k, v in raw.items()},
            n,
        )

    @staticmethod
    def concat(batches: Sequence["ColumnBatch"]) -> "ColumnBatch":
        """One batch holding every input batch's rows, in order."""
        batches = [b for b in batches if b.num_rows]
        if not batches:
            return ColumnBatch({}, 0)
        if len(batches) == 1:
            return batches[0]
        # columns are sparse: concatenation goes through row values so
        # a column present in only some batches stays null elsewhere
        names: List[str] = []
        for b in batches:
            for k in b.cols:
                if k not in names:
                    names.append(k)
        n = sum(b.num_rows for b in batches)
        out: Dict[str, Column] = {}
        for name in names:
            vals: List[Any] = []
            present = 0
            for b in batches:
                col = b.cols.get(name)
                if col is None:
                    vals.extend([None] * b.num_rows)
                else:
                    chunk = col.values()
                    vals.extend(chunk)
                    present += sum(col.validity)
            out[name] = _encode_column(vals, present)
        return ColumnBatch(out, n)

    # -- accessors -----------------------------------------------------

    def columns(self) -> List[str]:
        return list(self.cols)

    def __len__(self) -> int:
        return self.num_rows

    def column_values(self, name: str) -> List[Any]:
        """One column as Python values with None at nulls; a column
        absent from the batch is all-null."""
        col = self.cols.get(name)
        if col is None:
            return [None] * self.num_rows
        return col.values()

    def row(self, i: int) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for name, col in self.cols.items():
            if col.validity[i]:
                out[name] = col.get(i)
        return out

    def to_rows(self) -> List[Dict[str, Any]]:
        """Back to sparse dict rows (nulls become absent keys)."""
        out: List[Dict[str, Any]] = [
            {} for _ in range(self.num_rows)
        ]
        for name, col in self.cols.items():
            validity = col.validity
            if col.kind == "dict":
                d = col.dictionary
                data = col.data
                for i, v in enumerate(validity):
                    if v:
                        out[i][name] = d[data[i]]
            else:
                data = col.data
                for i, v in enumerate(validity):
                    if v:
                        out[i][name] = data[i]
        return out

    def approx_bytes(self) -> int:
        return 64 + sum(c.approx_bytes() for c in self.cols.values())

    # -- row-preserving transforms -------------------------------------

    def project(self, fields: Iterable[str]) -> "ColumnBatch":
        """Keep only the named columns (absent names are ignored —
        the row-path projection also just drops unknown keys)."""
        keep = {
            f: self.cols[f] for f in fields if f in self.cols
        }
        return ColumnBatch(keep, self.num_rows)

    def rename(self, field: str, to: str) -> "ColumnBatch":
        """Rename one column, preserving column order at its slot."""
        if field not in self.cols:
            return self
        out: Dict[str, Column] = {}
        for name, col in self.cols.items():
            if name == field:
                out[to] = col
            elif name != to:
                out[name] = col
        return ColumnBatch(out, self.num_rows)

    def take(self, indices: Sequence[int]) -> "ColumnBatch":
        """Gather rows by index into a new batch."""
        return ColumnBatch(
            {k: c.take(indices) for k, c in self.cols.items()},
            len(indices),
        )

    def filter(self, mask: Sequence[int]) -> "ColumnBatch":
        """Keep rows whose mask entry is truthy."""
        indices = [i for i, m in enumerate(mask) if m]
        if len(indices) == self.num_rows:
            return self
        return self.take(indices)

    def drop_all_null_rows(self) -> "ColumnBatch":
        """Drop rows with no valid value in any column (the batch
        analogue of ``.filter(bool)`` after a row projection)."""
        if not self.cols:
            return ColumnBatch({}, 0)
        validities = [c.validity for c in self.cols.values()]
        mask = [1 if any(v[i] for v in validities) else 0
                for i in range(self.num_rows)]
        return self.filter(mask)

    def key_tuples(self, fields: Sequence[str]) -> List[Tuple]:
        """Join/group keys: ``tuple(row.get(f) for f in fields)`` per
        row, computed column-wise."""
        cols = [self.column_values(f) for f in fields]
        if not cols:
            return [()] * self.num_rows
        return list(zip(*cols)) if self.num_rows else []

    def __repr__(self) -> str:
        kinds = {k: c.kind for k, c in self.cols.items()}
        return f"ColumnBatch({self.num_rows} rows, {kinds})"


def count_rows(elements: Sequence[Any]) -> int:
    """Logical row count of a partition that may hold batches, rows,
    or a mix (the scheduler's batch-aware accounting helper)."""
    total = 0
    for x in elements:
        total += x.num_rows if isinstance(x, ColumnBatch) else 1
    return total
