"""Fault tolerance: task retry, stage replay, degradation, injection.

The acceptance contract: with faults injected on a seeded schedule,
every RDD op still produces results identical to a clean serial run
(retry replays deterministic tasks exactly), and a worker-pool death
mid-job recovers via lineage-based stage replay instead of raising.
"""

from __future__ import annotations

import logging
import operator
import os
import time

import pytest

from repro.errors import (
    ExecutorError,
    FatalTaskError,
    TaskError,
    TransientTaskError,
    WorkerPoolError,
)
from repro.rdd import SJContext
from repro.rdd.executors import (
    FaultInjectingExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.rdd.fault import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    no_retry_policy,
    run_task_with_retry,
)

FAST = dict(backoff_base=0.0)  # retries without real sleeping


# ----------------------------------------------------------------------
# RetryPolicy and the task runner
# ----------------------------------------------------------------------

def test_backoff_is_exponential_and_capped():
    p = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, max_backoff=0.3)
    assert [p.backoff(k) for k in (1, 2, 3, 4)] == [0.1, 0.2, 0.3, 0.3]


def test_policy_rejects_zero_budgets():
    with pytest.raises(ValueError):
        RetryPolicy(max_task_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(max_stage_attempts=0)


def test_transient_failure_retried_until_success():
    sleeps = []
    p = RetryPolicy(max_task_attempts=4, backoff_base=0.1,
                    sleep=sleeps.append)
    calls = []

    def flaky(index, items):
        calls.append(index)
        if len(calls) < 3:
            raise TransientTaskError("flaky")
        return [x + 1 for x in items]

    assert run_task_with_retry(flaky, 0, [1, 2], p) == [2, 3]
    assert len(calls) == 3
    assert sleeps == [p.backoff(1), p.backoff(2)]  # backoff between tries


def test_deterministic_failure_not_retried():
    calls = []

    def bad(index, items):
        calls.append(index)
        raise ValueError("deterministic application bug")

    with pytest.raises(ValueError) as ei:
        run_task_with_retry(bad, 3, [], RetryPolicy(**FAST))
    assert len(calls) == 1  # retrying a deterministic error is futile
    assert ei.value.partition_index == 3  # chained task position


def test_exhausted_budget_raises_fatal_with_taxonomy():
    p = RetryPolicy(max_task_attempts=2, **FAST)

    def always_flaky(index, items):
        raise TransientTaskError("the environment hates you")

    with pytest.raises(FatalTaskError) as ei:
        run_task_with_retry(always_flaky, 5, [], p)
    err = ei.value
    assert err.partition_index == 5 and err.task_index == 5
    assert err.attempts == 2
    assert isinstance(err.__cause__, TransientTaskError)
    assert isinstance(err, TaskError) and isinstance(err, ExecutorError)


def test_task_error_attributes_survive_pickling():
    import pickle

    err = FatalTaskError("gone", task_index=1, partition_index=2, attempts=3)
    back = pickle.loads(pickle.dumps(err))
    assert type(back) is FatalTaskError
    assert (back.task_index, back.partition_index, back.attempts) == (1, 2, 3)


# ----------------------------------------------------------------------
# FaultInjectingExecutor: seeded task kills leave results unchanged
# ----------------------------------------------------------------------

DATA = list(range(60))
PAIRS = [(i % 7, i) for i in range(60)]


def _invariant_ops(ctx):
    """The RDD ops of the invariants suite, as comparable values."""
    add = operator.add
    pairs = ctx.parallelize(PAIRS, 5)
    other = ctx.parallelize([(k, k * 100) for k in range(7)], 3)
    return {
        "map": ctx.parallelize(DATA, 5).map(lambda x: x * 2).collect(),
        "filter": ctx.parallelize(DATA, 5).filter(lambda x: x % 3).collect(),
        "flatMap": ctx.parallelize(DATA[:10], 3)
                      .flatMap(lambda x: [x, -x]).collect(),
        "reduceByKey": sorted(pairs.reduceByKey(add).collect()),
        "groupByKey": sorted(
            (k, tuple(v)) for k, v in pairs.groupByKey().collect()
        ),
        "aggregateByKey": sorted(
            pairs.aggregateByKey(0, add, add).collect()
        ),
        "join": sorted(pairs.join(other).collect()),
        "cogroup": sorted(
            (k, tuple(a), tuple(b))
            for k, (a, b) in pairs.cogroup(other).collect()
        ),
        "distinct": sorted(
            ctx.parallelize([x % 5 for x in DATA], 4).distinct().collect()
        ),
        "sortBy": ctx.parallelize(DATA, 4)
                     .sortBy(lambda x: -x).collect(),
        "union": ctx.parallelize(DATA[:5], 2)
                    .union(ctx.parallelize(DATA[5:10], 2)).collect(),
        "repartition": sorted(
            ctx.parallelize(DATA, 6).repartition(3).collect()
        ),
        "count": ctx.parallelize(DATA, 5).count(),
        "sum": ctx.parallelize(DATA, 5).sum(),
        "reduce": ctx.parallelize(DATA, 5).reduce(add),
        "take": ctx.parallelize(DATA, 5).take(7),
    }


@pytest.fixture(scope="module")
def serial_expected():
    with SJContext(executor="serial", default_parallelism=4) as ctx:
        return _invariant_ops(ctx)


@pytest.mark.parametrize("seed", [0, 1, 42])
def test_kill_one_task_per_stage_matches_serial(serial_expected, seed):
    inj = FaultInjectingExecutor(
        SerialExecutor(RetryPolicy(**FAST)),
        seed=seed,
        kill_tasks_per_stage=1,
    )
    with SJContext(executor=inj, default_parallelism=4) as ctx:
        got = _invariant_ops(ctx)
    assert got == serial_expected
    assert inj.injected_task_faults > 0  # the schedule actually fired


def test_kill_and_delay_under_threads_matches_serial(serial_expected):
    inj = FaultInjectingExecutor(
        ThreadExecutor(2, RetryPolicy(**FAST)),
        seed=7,
        kill_tasks_per_stage=1,
        delay_task_probability=0.3,
        max_delay=0.002,
    )
    with SJContext(executor=inj, default_parallelism=4) as ctx:
        got = _invariant_ops(ctx)
    assert got == serial_expected
    assert inj.injected_task_faults > 0


def test_fault_schedule_is_deterministic():
    def run():
        inj = FaultInjectingExecutor(
            SerialExecutor(RetryPolicy(**FAST)), seed=5,
            kill_tasks_per_stage=2,
        )
        with SJContext(executor=inj, default_parallelism=4) as ctx:
            ctx.parallelize(PAIRS, 5).reduceByKey(operator.add).collect()
        return inj.injected_task_faults

    assert run() == run() > 0


def test_injected_faults_outlasting_budget_become_fatal():
    inj = FaultInjectingExecutor(
        SerialExecutor(RetryPolicy(max_task_attempts=2, **FAST)),
        kill_tasks_per_stage=1,
        faults_per_task=99,  # fault on every attempt
    )
    with SJContext(executor=inj, default_parallelism=4) as ctx:
        with pytest.raises(FatalTaskError) as ei:
            ctx.parallelize(DATA, 4).map(lambda x: x).collect()
    assert ei.value.attempts == 2
    assert ei.value.partition_index is not None


# ----------------------------------------------------------------------
# pool death: lineage-based stage replay in the scheduler
# ----------------------------------------------------------------------

@pytest.mark.parametrize("dead_stage", [0, 1, 2])
def test_pool_death_recovers_via_stage_replay(dead_stage):
    # a reduceByKey job is three stages: narrow, shuffle-map,
    # shuffle-reduce; killing any of them must not change the result
    inj = FaultInjectingExecutor(
        SerialExecutor(RetryPolicy(**FAST)),
        pool_death_stages={dead_stage},
    )
    with SJContext(executor=inj, default_parallelism=4) as ctx:
        got = sorted(
            ctx.parallelize(PAIRS, 4)
            .map(lambda kv: (kv[0], kv[1] * 10))
            .reduceByKey(operator.add)
            .collect()
        )
    with SJContext(executor="serial", default_parallelism=4) as ctx:
        expected = sorted(
            ctx.parallelize(PAIRS, 4)
            .map(lambda kv: (kv[0], kv[1] * 10))
            .reduceByKey(operator.add)
            .collect()
        )
    assert got == expected


def test_stage_replay_logged(caplog):
    inj = FaultInjectingExecutor(
        SerialExecutor(RetryPolicy(**FAST)), pool_death_stages={0}
    )
    with SJContext(executor=inj, default_parallelism=2) as ctx:
        with caplog.at_level(logging.WARNING, logger="repro.rdd.plan"):
            ctx.parallelize(DATA, 2).map(lambda x: x).collect()
    assert any("replaying stage" in r.getMessage() for r in caplog.records)


def test_pool_deaths_exhausting_stage_budget_raise():
    inj = FaultInjectingExecutor(
        SerialExecutor(RetryPolicy(max_stage_attempts=2, **FAST)),
        pool_death_stages={0},
        pool_deaths_per_stage=99,
    )
    with SJContext(executor=inj, default_parallelism=2) as ctx:
        with pytest.raises(WorkerPoolError):
            ctx.parallelize(DATA, 2).map(lambda x: x).collect()


# ----------------------------------------------------------------------
# real worker-process death under ProcessExecutor
# ----------------------------------------------------------------------

def _die_once_then_double(marker_dir):
    """Kill the hosting worker process the first time element 7 is
    seen; the marker file makes the stage replay succeed."""

    def fn(x):
        marker = os.path.join(marker_dir, "died")
        if x == 7 and not os.path.exists(marker):
            open(marker, "w").close()
            os._exit(1)
        return x * 2

    return fn


def test_real_pool_death_recovers_via_lineage_replay(tmp_path):
    with SJContext(
        executor="processes", num_workers=2, default_parallelism=4,
        retry_policy=RetryPolicy(backoff_base=0.001),
    ) as ctx:
        out = ctx.parallelize(range(20), 4).map(
            _die_once_then_double(str(tmp_path))
        ).collect()
        assert out == [x * 2 for x in range(20)]
        assert not ctx.executor.degraded
        # the pool is healthy again for the next job
        assert ctx.parallelize(range(10), 2).sum() == 45


def _die_n_times_then_increment(marker_dir, n):
    def fn(x):
        if x == 3:
            count = len(os.listdir(marker_dir))
            if count < n:
                open(os.path.join(marker_dir, f"d{count}"), "w").close()
                os._exit(1)
        return x + 1

    return fn


def test_process_executor_degrades_to_serial_after_repeated_deaths(
    tmp_path, caplog
):
    policy = RetryPolicy(
        backoff_base=0.001, degrade_after_pool_deaths=2,
        max_stage_attempts=4,
    )
    with SJContext(
        executor="processes", num_workers=2, default_parallelism=2,
        retry_policy=policy,
    ) as ctx:
        with caplog.at_level(logging.WARNING, logger="repro.rdd"):
            out = ctx.parallelize(range(10), 2).map(
                _die_n_times_then_increment(str(tmp_path), 2)
            ).collect()
    # degraded serial execution finished the job instead of raising;
    # by the time the driver runs the task itself, two markers exist
    # so the fault path is not reached again (os._exit in the driver
    # would kill pytest outright)
    assert out == [x + 1 for x in range(10)]
    assert ctx.executor.degraded
    assert any(
        "degrading to serial" in r.getMessage() for r in caplog.records
    )


def test_degraded_executor_keeps_serving_jobs(tmp_path):
    policy = RetryPolicy(
        backoff_base=0.001, degrade_after_pool_deaths=1,
        max_stage_attempts=3,
    )
    ex = ProcessExecutor(2, policy)
    with SJContext(executor=ex, default_parallelism=2) as ctx:
        out = ctx.parallelize(range(8), 2).map(
            _die_n_times_then_increment(str(tmp_path), 1)
        ).collect()
        assert out == [x + 1 for x in range(8)]
        assert ex.degraded
        # subsequent jobs run serially, still correctly
        assert ctx.parallelize(range(10), 2).sum() == 45
        assert sorted(
            ctx.parallelize(PAIRS, 3).reduceByKey(operator.add).collect()
        ) == sorted(
            SJContext(executor="serial").parallelize(PAIRS, 3)
            .reduceByKey(operator.add).collect()
        )


# ----------------------------------------------------------------------
# retry disabled = seed behaviour; misc integration
# ----------------------------------------------------------------------

def test_no_retry_policy_propagates_transient_errors():
    inj = FaultInjectingExecutor(
        SerialExecutor(no_retry_policy()), kill_tasks_per_stage=1
    )
    with SJContext(executor=inj, default_parallelism=2) as ctx:
        with pytest.raises(TransientTaskError):
            ctx.parallelize(DATA, 2).map(lambda x: x).collect()


def test_retry_does_not_mask_deterministic_failures():
    class Boom(RuntimeError):
        pass

    def explode(x):
        if x == 4:
            raise Boom("poisoned element 4")
        return x

    with SJContext(executor="serial", default_parallelism=2) as ctx:
        with pytest.raises(Boom, match="poisoned element 4") as ei:
            ctx.parallelize(range(10), 2).map(explode).collect()
    assert getattr(ei.value, "partition_index", None) is not None


def test_executor_instance_accepted_by_context_and_session():
    from repro import ScrubJaySession

    inj = FaultInjectingExecutor(SerialExecutor(), kill_tasks_per_stage=1)
    with ScrubJaySession(executor=inj) as sj:
        assert sj.ctx.executor is inj
    with pytest.raises(Exception, match="ctx or executor"):
        ScrubJaySession(ctx=SJContext(), executor="serial")


def test_fault_injector_reset_restarts_schedule():
    inj = FaultInjectingExecutor(
        SerialExecutor(RetryPolicy(**FAST)), seed=3, kill_tasks_per_stage=1
    )
    with SJContext(executor=inj, default_parallelism=2) as ctx:
        ctx.parallelize(DATA, 2).map(lambda x: x).collect()
        first = inj.injected_task_faults
        inj.reset()
        ctx.parallelize(DATA, 2).map(lambda x: x).collect()
    assert inj.injected_task_faults == first > 0


def test_to_debug_string_shows_lineage(ctx):
    rdd = (
        ctx.parallelize(PAIRS, 3)
        .mapValues(lambda v: v + 1)
        .reduceByKey(operator.add)
    )
    text = rdd.toDebugString()
    assert "ShuffledRDD" in text and "SourceRDD" in text
    assert "MappedPartitionsRDD" in text


def test_default_policy_adds_retry_wrapper_and_noop_otherwise():
    from repro.rdd.fault import make_retrying_task

    def fn(i, items):
        return items

    assert make_retrying_task(fn, no_retry_policy()) is fn
    assert make_retrying_task(fn, DEFAULT_RETRY_POLICY) is not fn


def test_delays_do_not_change_results(serial_expected):
    inj = FaultInjectingExecutor(
        SerialExecutor(RetryPolicy(**FAST)),
        seed=11,
        delay_task_probability=0.5,
        max_delay=0.001,
    )
    with SJContext(executor=inj, default_parallelism=4) as ctx:
        assert _invariant_ops(ctx) == serial_expected
