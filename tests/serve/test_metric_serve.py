"""Metric queries through the serve tier: raw and rollup routes,
``aggregate()``, the wire ``metric`` op, and live metric
subscriptions."""

from __future__ import annotations

import pytest

from repro import ScrubJaySession
from repro.core.query import Query
from repro.errors import ServiceError
from repro.serve.service import AggregateSpec, QueryService
from repro.serve.wire import InProcessClient

from tests.metrics.conftest import (
    RACK_POWER_SCHEMA,
    assert_groups_equal,
    power_rows,
)


def metric_query(sj):
    return (sj.query()
            .measure("power", "mean").per("racks").grain("1h")
            .build())


@pytest.fixture()
def power_service():
    sj = ScrubJaySession()
    sj.register_rows(power_rows(), RACK_POWER_SCHEMA, "rack_power")
    svc = QueryService(sj, num_workers=2)
    yield sj, svc
    svc.close()
    sj.close()


def truth(sj):
    return sj.ask(metric_query(sj)).groups


def test_service_answers_metric_raw(power_service):
    sj, svc = power_service
    ans = svc.query(metric_query(sj))
    assert ans.decision.route == "raw"
    assert_groups_equal(ans.groups, truth(sj))


def test_aggregate_accepts_query_objects(power_service):
    sj, svc = power_service
    ans = svc.aggregate(metric_query(sj))
    assert_groups_equal(ans.groups, truth(sj))
    # mixing the metric query with legacy spec args is a typed error
    with pytest.raises(ServiceError):
        svc.aggregate(metric_query(sj), group_by=["rack"])


def test_service_accepts_unbuilt_builder(power_service):
    sj, svc = power_service
    ans = svc.query(
        sj.query().measure("power", "mean").per("racks").grain("1h")
    )
    assert_groups_equal(ans.groups, truth(sj))


def test_legacy_positional_aggregate_still_works(power_service):
    sj, svc = power_service
    legacy = svc.aggregate(
        ["racks", "time"], ["power"],
        group_by=["rack"], value_field="power", how="mean",
    )
    assert isinstance(legacy, dict) and legacy


def test_service_routes_through_rollup(power_service):
    sj, svc = power_service
    want = truth(sj)
    sj.rollup("power_1h", metric_query(sj))
    svc.invalidate()
    ans = svc.query(metric_query(sj))
    assert ans.decision.route == "rollup"
    assert ans.decision.rollup == "power_1h"
    assert_groups_equal(ans.groups, want)


def test_wire_metric_op(power_service):
    sj, svc = power_service
    client = InProcessClient(svc)
    ans = client.metric(metric_query(sj), dictionary=sj.dictionary)
    assert_groups_equal(ans.groups, truth(sj))
    assert ans.decision["route"] == "raw"
    assert ans.group_dims == ("racks", "time")


def test_wire_unknown_op_typed_error(power_service):
    _sj, svc = power_service
    client = InProcessClient(svc)
    resp = client.request({"op": "metric_v3"})
    assert resp["error"] == "UnsupportedOpError"


def test_aggregate_spec_wire_round_trip():
    spec = AggregateSpec(("rack",), "power", "mean", False)
    assert AggregateSpec.from_wire(spec.to_wire()) == spec
    assert spec.as_partial().partial
    assert spec.as_partial().as_partial() is spec.as_partial() or \
        spec.as_partial().as_partial() == spec.as_partial()
    assert AggregateSpec.from_wire({"group_by": []}) is None


def test_metric_subscription_refreshes_incrementally():
    rows = power_rows()
    half = len(rows) // 2
    sj = ScrubJaySession()
    sj.ingest().feed(RACK_POWER_SCHEMA, rows=rows[:half]) \
        .tail("rack_power")
    svc = QueryService(sj, num_workers=2)
    try:
        sub = svc.subscribe(metric_query(sj))
        snap0 = sub.current()
        assert snap0.groups

        out = svc.advance("rack_power", rows=rows[half:])
        assert out["subscriptions_refreshed"] == 1, out
        snap1 = sub.current()

        ref = ScrubJaySession()
        try:
            ref.register_rows(rows, RACK_POWER_SCHEMA, "rack_power")
            want = {k: v["power_mean"]
                    for k, v in truth(ref).items()}
        finally:
            ref.close()
        assert_groups_equal(dict(snap1.groups), want)
    finally:
        svc.close()
        sj.close()


def test_metric_subscription_rejects_explicit_spec(power_service):
    sj, svc = power_service
    with pytest.raises(ServiceError):
        svc.subscribe(
            metric_query(sj),
            aggregate=AggregateSpec(("rack",), "power", "mean", False),
        )
