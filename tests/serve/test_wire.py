"""Wire layer: NDJSON protocol over sockets and in-process, error
mapping, codec round-trip."""

from __future__ import annotations

import json
import socket

import pytest

from repro.serve import (
    InProcessClient,
    QueryClient,
    QueryServer,
    QueryService,
    WireError,
    decode_rows,
    encode_rows,
)

from tests.serve.conftest import (
    HOT_DOMAINS,
    HOT_VALUES,
    JOIN_DOMAINS,
    JOIN_VALUES,
    row_multiset,
)


@pytest.fixture()
def service(serve_session):
    svc = QueryService(serve_session, num_workers=2, max_queue=16)
    yield svc
    svc.close()


@pytest.fixture()
def server(service):
    with QueryServer(service) as srv:
        yield srv


def test_in_process_matches_socket(service, server, serve_session):
    host, port = server.address
    with QueryClient(host, port) as remote:
        local = InProcessClient(service)
        r_rows, r_schema = remote.query(JOIN_DOMAINS, JOIN_VALUES)
        l_rows, l_schema = local.query(JOIN_DOMAINS, JOIN_VALUES)
        assert r_schema == l_schema
        assert row_multiset(r_rows) == row_multiset(l_rows)
        assert len(r_rows) == 200


def test_codec_round_trip(service, server, serve_session):
    host, port = server.address
    with QueryClient(host, port) as client:
        rows, schema = client.query(
            HOT_DOMAINS, HOT_VALUES, dictionary=serve_session.dictionary
        )
        direct = serve_session.ask(HOT_DOMAINS, HOT_VALUES).collect()
        assert row_multiset(rows) == row_multiset(direct)
        # typed: identifiers decode to int, quantities to float
        assert isinstance(rows[0]["node"], int)
        assert isinstance(rows[0]["metric_b"], float)


def test_encode_decode_inverse(serve_session):
    ds = serve_session.dataset("samples")
    rows = ds.collect()
    enc = encode_rows(rows, ds.schema, serve_session.dictionary)
    assert all(isinstance(v, str) for r in enc for v in r.values())
    dec = decode_rows(enc, ds.schema, serve_session.dictionary)
    assert row_multiset(dec) == row_multiset(rows)


def test_explain_and_ping_and_metrics(service, server):
    host, port = server.address
    with QueryClient(host, port) as client:
        assert client.ping() is True
        ex = client.explain(JOIN_DOMAINS, JOIN_VALUES)
        assert "Load[" in ex["plan"]
        assert ex["steps"] >= 1
        client.query(HOT_DOMAINS, HOT_VALUES)
        m = client.metrics()
        assert m["completed"] >= 1
        assert "plan_cache" in m and "latency_s" in m


def test_error_mapping_no_solution(service, server):
    host, port = server.address
    with QueryClient(host, port) as client:
        with pytest.raises(WireError) as exc_info:
            client.query(["racks"], ["power"])
        assert exc_info.value.error == "NoSolutionError"


def test_overload_maps_to_typed_wire_error(serve_session):
    import threading

    from repro.errors import ServiceOverloadError

    release = threading.Event()
    original = serve_session.execute
    serve_session.execute = lambda plan: (
        release.wait(10.0),
        original(plan),
    )[1]
    svc = QueryService(serve_session, num_workers=1, max_queue=1)
    try:
        # occupy the single worker, then fill the queue to the brim
        import time as _time

        blocker = svc.submit(HOT_DOMAINS, HOT_VALUES)
        deadline = _time.monotonic() + 5.0
        while blocker.state == "queued" and _time.monotonic() < deadline:
            _time.sleep(0.01)
        assert blocker.state == "running"
        tickets = [blocker]
        for _ in range(5):
            try:
                tickets.append(svc.submit(HOT_DOMAINS, HOT_VALUES))
            except ServiceOverloadError:
                break
        assert len(tickets) == 2  # worker busy + queue of 1 full

        with QueryServer(svc) as server:
            host, port = server.address
            with QueryClient(host, port) as client:
                # the socket path reports the same typed error name
                with pytest.raises(WireError) as exc_info:
                    client.query(HOT_DOMAINS, HOT_VALUES)
                assert exc_info.value.error == "ServiceOverloadError"
        release.set()
        for t in tickets:
            t.result(timeout=10.0)
    finally:
        release.set()
        svc.close()


def test_malformed_lines_do_not_kill_connection(service, server):
    host, port = server.address
    with socket.create_connection((host, port), timeout=10) as sock:
        f = sock.makefile("rwb")
        f.write(b"this is not json\n")
        f.flush()
        resp = json.loads(f.readline())
        assert resp["ok"] is False and resp["error"] == "ProtocolError"
        # connection survives: a valid request still works
        f.write(json.dumps({"op": "ping"}).encode() + b"\n")
        f.flush()
        assert json.loads(f.readline())["ok"] is True


def test_unknown_op(service):
    local = InProcessClient(service)
    resp = local.request({"op": "selfdestruct"})
    assert resp["ok"] is False and resp["error"] == "UnsupportedOpError"
    assert resp["op"] == "selfdestruct"
    assert "query" in resp["supported"]
