"""Fluent ingestion builder: ``session.ingest().csv(path, schema)...``.

The ingestion mirror of the query-side ``QueryBuilder``: one chain
picks a source, tunes it, and lands it in the catalog::

    temps = (
        session.ingest()
        .csv("temps.csv", RACK_TEMPERATURE_SCHEMA)
        .partitions(8)
        .register("rack_temperatures")
    )

Every terminal produces a :class:`~repro.core.dataset.ScrubJayDataset`
backed by a :class:`~repro.rdd.rdd.ScanRDD` — rows are read lazily,
partition by partition, inside workers; nothing is materialized on the
driver at ingest time. The dataset keeps a reference to its
:class:`~repro.sources.base.DataSource` (``dataset.source``) so the
pushdown rewrite can collapse query predicates into the scan.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.dataset import ScrubJayDataset
from repro.core.semantics import Schema
from repro.errors import FeedError, SourceError
from repro.rdd.rdd import ScanRDD
from repro.sources.base import DataSource
from repro.sources.csv_source import CSVSource
from repro.sources.feed_source import FeedSource
from repro.sources.rows_source import RowsSource
from repro.sources.sql_source import SQLSource
from repro.sources.table_source import TableSource


class IngestBuilder:
    """One fluent chain = one source landed in a session's catalog."""

    def __init__(self, session) -> None:
        self._session = session
        self._source: Optional[DataSource] = None
        self._num_partitions: Optional[int] = None

    # -- source selection (exactly one per chain) ----------------------

    def _set(self, source: DataSource) -> "IngestBuilder":
        if self._source is not None:
            raise SourceError(
                "ingest() chain already has a source "
                f"({type(self._source).__name__}); build one source "
                "per chain"
            )
        self._source = source
        return self

    def csv(self, path: str, schema: Schema) -> "IngestBuilder":
        """A headered CSV file, split into byte-range partitions."""
        return self._set(CSVSource(
            path, schema, self._session.dictionary,
            num_partitions=self._default_partitions(),
        ))

    def sql(
        self,
        db_path: str,
        schema: Schema,
        table: Optional[str] = None,
        query: Optional[str] = None,
    ) -> "IngestBuilder":
        """A sqlite3 table (rowid-range partitioned) or SELECT query."""
        return self._set(SQLSource(
            db_path, schema, self._session.dictionary,
            table=table, query=query,
            num_partitions=self._default_partitions(),
        ))

    def table(
        self, store, keyspace: str, table: str, schema: Schema
    ) -> "IngestBuilder":
        """A wide-column store table, one partition per partition key."""
        return self._set(TableSource(store, keyspace, table, schema))

    def rows(
        self, data: Sequence[Dict[str, Any]], schema: Schema
    ) -> "IngestBuilder":
        """Already-materialized rows (tests, generators)."""
        return self._set(RowsSource(
            data, schema, num_partitions=self._default_partitions()
        ))

    def source(self, source: DataSource) -> "IngestBuilder":
        """A custom :class:`DataSource` implementation."""
        return self._set(source)

    def feed(
        self,
        schema: Schema,
        rows: Optional[Sequence[Dict[str, Any]]] = None,
    ) -> "IngestBuilder":
        """An in-process push feed (see
        :class:`~repro.sources.feed_source.FeedSource`): producers
        ``push()`` rows in, and the ``.tail(name)`` terminal turns it
        into a live dataset."""
        return self._set(FeedSource(
            schema, rows=rows,
            num_partitions=self._default_partitions(),
        ))

    # -- tuning --------------------------------------------------------

    def partitions(self, n: int) -> "IngestBuilder":
        """Override the partition count (sources that support it)."""
        self._num_partitions = max(1, int(n))
        src = self._source
        if src is not None and hasattr(src, "num_partitions_hint"):
            src.num_partitions_hint = self._num_partitions
            for cache in ("_ranges", "_slices"):
                if getattr(src, cache, None) is not None:
                    setattr(src, cache, None)
        if isinstance(src, RowsSource):
            rebuilt = RowsSource(
                src._rows, src.schema(), src.name, self._num_partitions
            )
            self._source = rebuilt
        return self

    def _default_partitions(self) -> int:
        return self._num_partitions or self._session.ctx.default_parallelism

    # -- terminals -----------------------------------------------------

    def load(self, name: Optional[str] = None) -> ScrubJayDataset:
        """Build the lazily-scanned dataset without registering it."""
        if self._source is None:
            raise SourceError(
                "ingest() chain has no source; call .csv()/.sql()/"
                ".table()/.rows()/.source() first"
            )
        src = self._source
        if name:
            src.name = name
        ds = ScrubJayDataset(
            ScanRDD(self._session.ctx, src),
            src.schema(),
            name or src.name,
            provenance={"op": "scan", "source": type(src).__name__,
                        "name": name or src.name},
        )
        ds.source = src
        return ds

    def register(self, name: str) -> ScrubJayDataset:
        """Build the dataset and register it under ``name``."""
        ds = self.load(name)
        self._session.register(ds, name)
        return ds

    def tail(self, name: str) -> "Feed":  # noqa: F821
        """Register the source as a *live* dataset and return a
        :class:`~repro.stream.Feed` handle tailing it.

        The source must support the append capability
        (:meth:`~repro.sources.base.DataSource.supports_append`):
        CSV files being appended to, wide-column tables gaining sealed
        segments, push :meth:`feed` endpoints. The feed starts at the
        source's current committed offset; ``feed.advance()`` folds
        newly committed rows into the session (bumping the dataset's
        data version) and returns them.
        """
        from repro.stream.feed import Feed

        if self._source is None:
            raise SourceError(
                "ingest() chain has no source; call .csv()/.table()/"
                ".feed()/.source() first"
            )
        if not self._source.supports_append():
            raise FeedError(
                f"{type(self._source).__name__} cannot be tailed; "
                "use .register() for static sources"
            )
        ds = self.register(name)
        feed = Feed(self._session, ds, self._source, name)
        self._session._register_feed(feed)
        return feed
