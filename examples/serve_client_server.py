#!/usr/bin/env python3
"""Serving queries: many clients, one shared session, two caches.

Spins up the whole repro.serve stack in one process:

1. build a session with two registered monitoring tables;
2. wrap it in a :class:`~repro.serve.QueryService` (worker pool,
   plan cache, result cache, admission control);
3. expose the service over the line-delimited-JSON TCP protocol with
   :class:`~repro.serve.QueryServer`;
4. hammer it from several socket clients in parallel, then read the
   service's own metrics: cache hit rates, latency percentiles, qps.

then does it again sharded: ``sj.serve(shards=2)`` forks two shard
processes each owning half the samples table (hash-split on the node
key), and the same queries scatter-gather across them — eq-filtered
ones pruned down to the single owning shard.

Run: python examples/serve_client_server.py
"""

import threading
import time

from repro import ScrubJaySession, TuningProfile
from repro.core.query import FilterTerm
from repro.datagen.synthetic import (
    KEYED_LEFT_SCHEMA,
    KEYED_RIGHT_SCHEMA,
    keyed_tables,
)
from repro.serve import QueryClient, QueryServer


def main() -> None:
    # one shared session = one catalog + dictionary + executor pool
    sj = ScrubJaySession(TuningProfile(executor_kind="threads"))
    samples, lookup = keyed_tables(5_000, num_keys=64)
    sj.register_rows(samples, KEYED_LEFT_SCHEMA, name="samples")
    sj.register_rows(lookup, KEYED_RIGHT_SCHEMA, name="lookup")

    with sj, sj.serve(num_workers=4, max_queue=256) as service, \
            QueryServer(service) as server:
        host, port = server.address
        print(f"serving on {host}:{port}\n")

        def client(i: int) -> None:
            # each client opens its own socket and replays a mix of a
            # cheap projection and the two-dataset natural join
            with QueryClient(host, port) as c:
                for _ in range(5):
                    c.query(
                        ["compute nodes"], ["temperature"],
                        tenant=f"client-{i}",
                    )
                    rows, schema = c.query(
                        ["compute nodes", "jobs"],
                        ["power", "temperature"],
                        tenant=f"client-{i}",
                        dictionary=sj.dictionary,
                    )
            print(
                f"client {i}: join returned {len(rows)} rows "
                f"({', '.join(sorted(schema.fields()))})"
            )

        t0 = time.perf_counter()
        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0

        # one plan search and one execution per distinct query — the
        # other 58 requests were answered from the caches
        with QueryClient(host, port) as c:
            m = c.metrics()
        print(
            f"\n{m['completed']} queries in {wall:.2f}s "
            f"({m['completed'] / wall:.0f} qps)"
        )
        print(
            "plan cache: "
            f"{m['plan_cache']['hits']} hits / "
            f"{m['plan_cache']['misses']} misses; "
            "result cache: "
            f"{m['result_cache']['hits']} hits / "
            f"{m['result_cache']['misses']} misses"
        )
        lat = m["latency_s"]
        print(
            f"latency p50 {lat['p50'] * 1e3:.2f} ms, "
            f"p95 {lat['p95'] * 1e3:.2f} ms, "
            f"p99 {lat['p99'] * 1e3:.2f} ms"
        )

    sharded_main()


def sharded_main() -> None:
    """The same service scaled out: two shard processes, the samples
    table hash-split on its node key, queries scatter-gathered."""
    print("\n--- sharded: serve(shards=2) ---\n")
    sj = ScrubJaySession()
    samples, lookup = keyed_tables(5_000, num_keys=64)
    sj.register_rows(samples, KEYED_LEFT_SCHEMA, name="samples")
    sj.register_rows(lookup, KEYED_RIGHT_SCHEMA, name="lookup")

    with sj, sj.serve(
        shards=2,
        shard_on={"samples": ["node"]},  # hash-partitioned fleet-wide
        num_workers=2,
    ) as router:
        # an eq-filter on the shard key routes to exactly one shard —
        # the other is pruned without being asked
        for node in (3, 17, 42):
            ds = router.query(
                ["compute nodes", "jobs"], ["power", "temperature"],
                filters=(FilterTerm("compute nodes", value=node),),
            )
            print(f"node {node}: {len(ds.collect())} joined rows")

        # grouped aggregates merge per-shard partials — only small
        # (sum, count) pairs cross the wire, never rows
        means = router.aggregate(
            ["compute nodes", "jobs"], ["power", "temperature"],
            group_by=["node"], value_field="metric_b", how="mean",
        )
        print(f"mean metric_b over {len(means)} node groups")

        routing = router.snapshot().shards["routing"]
        print(
            f"routing: {routing['scattered']} scatters, "
            f"{routing['shard_requests']} shard requests, "
            f"{routing['pruned']} pruned"
        )


if __name__ == "__main__":
    main()
