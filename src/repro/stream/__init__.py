"""Streaming ingestion and incremental derivation.

ScrubJay's inputs are live HPC feeds — LDMS samplers, Caliper traces,
job logs — yet batch registration answers every standing question by
full replay. This package closes that gap:

- :class:`Feed` — a tailing handle over any appendable
  :class:`~repro.sources.base.DataSource` (growing CSV files, sealed
  wide-column segments, in-process push endpoints) with a monotonic
  committed **watermark**; created by
  ``session.ingest()....tail(name)``;
- :class:`DeltaPlan` — classifies a
  :class:`~repro.core.pipeline.DerivationPlan` against a set of
  changed datasets and, when every operator on the changed paths is
  union-distributive, executes the plan over just the appended rows
  (delta execution); otherwise falls back to a scoped replay at the
  new watermark. Each choice lands as a
  :class:`~repro.rdd.stats.DeltaDecision` on the ExecutionReport;
- the serve layer builds standing-query subscriptions on these
  (:meth:`repro.serve.QueryService.subscribe`).

See DESIGN.md "Streaming & incremental derivation" for the watermark
semantics and the delta-vs-replay decision table.
"""

from repro.rdd.stats import DeltaDecision
from repro.stream.delta import DELTA_SAFE_TRANSFORMS, DeltaPlan
from repro.stream.feed import Feed, FeedAdvance

__all__ = [
    "DELTA_SAFE_TRANSFORMS",
    "DeltaDecision",
    "DeltaPlan",
    "Feed",
    "FeedAdvance",
]
