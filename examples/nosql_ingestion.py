#!/usr/bin/env python3
"""Continuous ingestion into the NoSQL store, then analysis (§7.1).

The paper: "we employed a distributed ingestion framework to
continuously collect LDMS data into a distributed NoSQL database
store." This example replays that pipeline end to end on the
wide-column store:

1. stream LDMS node samples into a keyspace/table partitioned by node
   and clustered by time (segments flush as the memtable fills);
2. ingest the table as a lazily scanned, partition-pruned dataset
   (`session.ingest().table(...)`) registered with semantics;
3. query {jobs, compute nodes} → {applications, cpu utilization} and
   watch the engine relate the ingested stream to the job log;
4. correlate the derived utilization with jobs' presence.

Run: python examples/nosql_ingestion.py
"""

import tempfile

from repro import EngineConfig, ScrubJaySession
from repro.analysis import group_aggregate
from repro.datagen.counters import CounterSimulator
from repro.datagen.dat import JOB_LOG_SCHEMA, LDMS_SCHEMA, ensure_semantics
from repro.datagen.facility import Facility, FacilityConfig
from repro.datagen.scheduler import JobScheduler
from repro.store import WideColumnStore


def main() -> None:
    facility = Facility(FacilityConfig(num_racks=1, nodes_per_rack=4))
    sched = JobScheduler(facility)
    sched.pin("Kripke", [0, 1], 300.0, 1500.0)
    sched.pin("prime95", [2], 600.0, 1200.0)
    # node 3 stays idle for contrast

    # ------------------------------------------------------------------
    # 1. continuous ingestion into the wide-column store
    # ------------------------------------------------------------------
    store = WideColumnStore(tempfile.mkdtemp(prefix="scrubjay-store-"))
    table = store.create_table(
        "perf", "ldms", partition_key=["nodeid"], clustering=["time"],
        memtable_limit=2000,
    )
    sim = CounterSimulator(facility, sched, seed=5)
    samples = sim.ldms_rows(facility.nodes(), 0.0, 2400.0, period=5.0)
    table.insert_many(samples)   # memtable flushes segments on the way
    table.flush()
    print(f"ingested {table.count()} LDMS samples into perf.ldms "
          f"({len(table.partitions())} partitions, "
          f"{len(table._segment_paths())} on-disk segments)")

    # ------------------------------------------------------------------
    # 2-3. ingest, register, query
    # ------------------------------------------------------------------
    with ScrubJaySession(
        config=EngineConfig(interpolation_window=10.0)
    ) as sj:
        ensure_semantics(sj.dictionary)
        # one scan partition per store partition key: reads happen
        # lazily inside workers, and query restrictions prune
        # partitions/segments before rows are unpickled
        sj.ingest().table(store, "perf", "ldms", LDMS_SCHEMA) \
          .register("ldms")
        sj.register_rows(sched.job_log_rows(), JOB_LOG_SCHEMA,
                         "job_queue_log")

        plan = (sj.query().across("jobs", "compute nodes")
                .values("applications", "cpu utilization").plan())
        print("\nderivation sequence:")
        print(plan.describe())

        result = sj.execute(plan).persist()
        print(f"\nderived {result.count()} rows")

        # ------------------------------------------------------------------
        # 4. analysis: utilization per application
        # ------------------------------------------------------------------
        agg = group_aggregate(result, ["job_name"], "cpu_util", "mean")
        print("\nmean CPU utilization while each application ran:")
        for (app,), util in sorted(agg.items(), key=lambda kv: -kv[1]):
            print(f"  {app:>9}: {util:5.1f} %")
        assert all(util > 80.0 for util in agg.values()), \
            "busy nodes should show high utilization"
        print("\n(idle node 3 never appears: no job-instant relates to it)")


if __name__ == "__main__":
    main()
