"""The HPC performance data-source taxonomy (paper §2.1, Figure 1).

The paper organizes available data sources into hardware/software
categories refined into subdomains, with collection mechanisms split
into **state** information (the status of a resource at an instant —
temperatures, link traffic levels, job-queue status) and **event**
information (details of a single occurrence — packets sent, reads and
writes, job submissions).

This module encodes that taxonomy so datasets can be tagged with
*where their data comes from*, making the catalog browsable the way
Figure 1 lays the landscape out: "which state feeds do we have for
storage hardware?", "which event sources cover the resource
scheduler?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ScrubJayError

#: top-level categories and their Figure 1 subdomains
CATEGORIES: Dict[str, Tuple[str, ...]] = {
    "hardware": (
        "computation and memory",
        "communication",
        "storage",
        "infrastructure",
    ),
    "software": (
        "application",
        "software libraries",
        "operating system",
        "resource scheduler",
    ),
}

#: collection mechanisms
STATE = "state"
EVENT = "event"
_MECHANISMS = (STATE, EVENT)


@dataclass(frozen=True)
class DataSource:
    """One cell of Figure 1: a source subdomain × collection mechanism."""

    name: str
    category: str
    subdomain: str
    mechanism: str
    description: str = ""

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise ScrubJayError(
                f"unknown category {self.category!r}; expected one of "
                f"{sorted(CATEGORIES)}"
            )
        if self.subdomain not in CATEGORIES[self.category]:
            raise ScrubJayError(
                f"unknown {self.category} subdomain {self.subdomain!r}; "
                f"expected one of {CATEGORIES[self.category]}"
            )
        if self.mechanism not in _MECHANISMS:
            raise ScrubJayError(
                f"mechanism must be 'state' or 'event', got "
                f"{self.mechanism!r}"
            )


def default_sources() -> List[DataSource]:
    """A representative set of Figure 1's entries, instantiated for the
    tools this reproduction simulates."""
    return [
        DataSource("papi", "hardware", "computation and memory", STATE,
                   "CPU counter samples (instructions, APERF, MPERF)"),
        DataSource("ipmi", "hardware", "computation and memory", STATE,
                   "motherboard sensors: memory traffic, power, thermal"),
        DataSource("link_counters", "hardware", "communication", STATE,
                   "per-link byte/packet counters"),
        DataSource("fs_counters", "hardware", "storage", STATE,
                   "filesystem server load and pending operations"),
        DataSource("rack_temperatures", "hardware", "infrastructure",
                   STATE, "rack temperature sensors (hot/cold aisle)"),
        DataSource("rack_power", "hardware", "infrastructure", STATE,
                   "rack power draw"),
        DataSource("ldms", "software", "operating system", STATE,
                   "node OS metrics: utilization, memory, ctx switches"),
        DataSource("job_queue_log", "software", "resource scheduler",
                   EVENT, "job submission/completion records"),
        DataSource("caliper", "software", "application", EVENT,
                   "application phase invocations and iteration steps"),
    ]


class SourceCatalog:
    """Registry of data sources plus dataset tags.

    The catalog answers Figure 1-shaped questions about *what is
    instrumented*: which registered datasets carry state data about
    infrastructure hardware, which event sources exist for the
    scheduler, and so on.
    """

    def __init__(self, sources: Optional[List[DataSource]] = None) -> None:
        self._sources: Dict[str, DataSource] = {}
        self._tags: Dict[str, str] = {}  # dataset name -> source name
        for src in (default_sources() if sources is None else sources):
            self.register(src)

    # ------------------------------------------------------------------

    def register(self, source: DataSource) -> DataSource:
        existing = self._sources.get(source.name)
        if existing is not None and existing != source:
            raise ScrubJayError(
                f"data source {source.name!r} already registered with a "
                f"different definition"
            )
        self._sources[source.name] = source
        return source

    def source(self, name: str) -> DataSource:
        try:
            return self._sources[name]
        except KeyError:
            raise ScrubJayError(f"unknown data source {name!r}") from None

    def sources(
        self,
        category: Optional[str] = None,
        subdomain: Optional[str] = None,
        mechanism: Optional[str] = None,
    ) -> List[DataSource]:
        """Sources filtered by any combination of taxonomy axes."""
        return [
            s for s in self._sources.values()
            if (category is None or s.category == category)
            and (subdomain is None or s.subdomain == subdomain)
            and (mechanism is None or s.mechanism == mechanism)
        ]

    # ------------------------------------------------------------------

    def tag(self, dataset_name: str, source_name: str) -> None:
        """Record which source a registered dataset was collected from."""
        self.source(source_name)  # must exist
        self._tags[dataset_name] = source_name

    def source_of(self, dataset_name: str) -> Optional[DataSource]:
        name = self._tags.get(dataset_name)
        return self._sources[name] if name else None

    def datasets_for(
        self,
        category: Optional[str] = None,
        subdomain: Optional[str] = None,
        mechanism: Optional[str] = None,
    ) -> List[str]:
        """Dataset names whose tagged source matches the filters."""
        wanted = {s.name for s in self.sources(category, subdomain,
                                               mechanism)}
        return sorted(
            ds for ds, src in self._tags.items() if src in wanted
        )

    def render(self) -> str:
        """A small text rendition of Figure 1's grid with tags."""
        lines: List[str] = []
        for category, subdomains in CATEGORIES.items():
            lines.append(category.upper())
            for sub in subdomains:
                srcs = self.sources(category=category, subdomain=sub)
                if not srcs:
                    continue
                lines.append(f"  {sub}:")
                for s in srcs:
                    tagged = sorted(
                        ds for ds, name in self._tags.items()
                        if name == s.name
                    )
                    suffix = f"  ← {', '.join(tagged)}" if tagged else ""
                    lines.append(
                        f"    [{s.mechanism}] {s.name}: "
                        f"{s.description}{suffix}"
                    )
        return "\n".join(lines)
