"""repro.obs — structured tracing and metrics for every layer.

The derivation engine hides the *how* of a query; this package makes
the how observable without giving the abstraction up. It provides:

- :class:`Span` / :class:`Tracer` — hierarchical spans
  (query → solve → plan-node → stage → task) with attached counters
  (rows in/out, bytes shuffled, partitions, cache hits/misses,
  retries). A disabled tracer costs one attribute read per
  instrumentation point.
- :class:`MetricsRegistry` — process-safe counters, gauges, and
  histograms absorbing the ad-hoc counters previously scattered over
  ``DerivationCache.stats()``, ``ExecutionReport``, and
  ``ServiceMetrics``.
- exporters — span trees as JSON (:func:`to_json_tree`), as
  ``chrome://tracing`` event JSON (:func:`to_chrome_trace`), and the
  registry as a Prometheus-style text dump (:func:`to_prometheus`).

See DESIGN.md "Observability" for the span model and counter
taxonomy.
"""

from repro.obs.trace import NOOP_SPAN, NoopSpan, Span, Tracer
from repro.obs.metrics import MetricsRegistry
from repro.obs.export import (
    render_analyze,
    to_chrome_trace,
    to_json_tree,
    to_prometheus,
)

__all__ = [
    "Span",
    "Tracer",
    "NoopSpan",
    "NOOP_SPAN",
    "MetricsRegistry",
    "to_json_tree",
    "to_chrome_trace",
    "to_prometheus",
    "render_analyze",
]
