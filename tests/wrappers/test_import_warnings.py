"""Import hygiene for the wrappers package.

Importing ``repro`` (or any wrappers module) must be silent. The
subprocess runs with ``-W error::DeprecationWarning`` so an
import-time warning fails loudly.
"""

import subprocess
import sys

_SCRIPT = (
    "import repro, repro.wrappers, repro.wrappers.base, "
    "repro.wrappers.csv_io, repro.wrappers.sql_io, "
    "repro.wrappers.nosql_io"
)


def test_import_emits_no_deprecation_warning():
    proc = subprocess.run(
        [sys.executable, "-W", "error::DeprecationWarning", "-c",
         _SCRIPT],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr


def test_wrappers_export_only_unwrappers():
    import repro.wrappers as w
    assert set(w.__all__) == {
        "Unwrapper", "CSVUnwrapper", "SQLUnwrapper", "NoSQLUnwrapper",
    }
