"""Behavioural models of the paper's applications.

Each model maps *relative time within a run* to the observable signals
the monitoring substrates record. The parameters encode the paper's
qualitative findings so the derived datasets can recover them:

- **AMG** (§7.2): adaptive mesh refinement with "a fairly regularly
  increasing heat curve" — its heat contribution grows roughly
  linearly over the run and peaks highest of all workloads.
- **mg.C** (§7.3): memory-intensive; "operated at full CPU frequency
  and lower instruction rate" — aperf/mperf ≈ 1, modest
  instructions/s, high memory read/write rates.
- **prime95** (§7.3): compute-intensive; "incurred high instruction
  rates and experienced aggressive CPU throttling" — high
  instructions/s, aperf/mperf sagging well below 1, hot sockets with
  low thermal margin.

Other entries add workload diversity ("rise and fall over time,
presumably as they enter different application phases").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class WorkloadModel:
    """Time-dependent observable signals of one application."""

    name: str
    #: peak per-node heat contribution to the rack hot aisle (ΔC)
    heat_peak: float
    #: heat profile: "rising" | "phased" | "flat"
    heat_profile: str
    #: instructions per second per CPU at full tilt
    instruction_rate: float
    #: memory reads/writes per second per socket
    memory_read_rate: float
    memory_write_rate: float
    #: active/rated frequency ratio when thermally settled (1.0 = no
    #: throttling)
    settled_frequency_ratio: float
    #: seconds to reach the settled throttling level
    throttle_onset: float
    #: socket power draw in watts at steady state
    socket_power: float
    #: thermal margin (°C to the trip point) at steady state
    thermal_margin: float
    #: phase length for "phased" heat profiles (seconds)
    phase_period: float = 600.0

    # ------------------------------------------------------------------
    # signals as functions of relative time (seconds since job start)
    # ------------------------------------------------------------------

    def heat_factor(self, t_rel: float, duration: float) -> float:
        """Relative heat output in [0, 1] at ``t_rel`` into the run."""
        if duration <= 0:
            return 0.0
        x = min(max(t_rel / duration, 0.0), 1.0)
        if self.heat_profile == "rising":
            # regular, near-linear climb with a soft start
            return x ** 1.2
        if self.heat_profile == "phased":
            # rises and falls as the app cycles through phases
            wave = 0.5 + 0.5 * math.sin(
                2.0 * math.pi * t_rel / self.phase_period
            )
            return 0.35 + 0.55 * wave
        return 0.8  # flat

    def heat_at(self, t_rel: float, duration: float) -> float:
        """Per-node hot-aisle heat contribution (ΔC) at ``t_rel``."""
        return self.heat_peak * self.heat_factor(t_rel, duration)

    def frequency_ratio(self, t_rel: float) -> float:
        """Active/rated frequency ratio at ``t_rel`` into the run.

        Starts at 1.0 and decays exponentially toward the settled
        level as the package heats up and the governor throttles.
        """
        if self.throttle_onset <= 0:
            return self.settled_frequency_ratio
        settled = self.settled_frequency_ratio
        return settled + (1.0 - settled) * math.exp(
            -t_rel / self.throttle_onset
        )

    def instructions_at(self, t_rel: float) -> float:
        """Instruction rate per CPU, tracking the throttled frequency."""
        return self.instruction_rate * self.frequency_ratio(t_rel)

    def thermal_margin_at(self, t_rel: float) -> float:
        """Thermal margin narrows as the run settles."""
        settled = self.thermal_margin
        idle_margin = 45.0
        if self.throttle_onset <= 0:
            return settled
        return settled + (idle_margin - settled) * math.exp(
            -t_rel / self.throttle_onset
        )


#: Idle-node baselines used by the sensor/counter simulators.
IDLE = WorkloadModel(
    name="idle",
    heat_peak=0.5,
    heat_profile="flat",
    instruction_rate=5.0e6,
    memory_read_rate=1.0e5,
    memory_write_rate=5.0e4,
    settled_frequency_ratio=1.0,
    throttle_onset=0.0,
    socket_power=35.0,
    thermal_margin=45.0,
)


WORKLOADS: Dict[str, WorkloadModel] = {
    "AMG": WorkloadModel(
        name="AMG",
        heat_peak=9.0,
        heat_profile="rising",
        instruction_rate=1.6e9,
        memory_read_rate=6.0e8,
        memory_write_rate=2.5e8,
        settled_frequency_ratio=0.97,
        throttle_onset=900.0,
        socket_power=105.0,
        thermal_margin=18.0,
    ),
    "mg.C": WorkloadModel(
        name="mg.C",
        heat_peak=4.0,
        heat_profile="phased",
        # memory-bound: the core stalls on memory, so instructions
        # retire slowly even though the clock never throttles
        instruction_rate=0.8e9,
        memory_read_rate=1.2e9,
        memory_write_rate=5.0e8,
        settled_frequency_ratio=1.0,
        throttle_onset=0.0,
        socket_power=85.0,
        thermal_margin=25.0,
    ),
    "prime95": WorkloadModel(
        name="prime95",
        heat_peak=6.5,
        heat_profile="flat",
        # compute-bound: very high instruction throughput, aggressive
        # thermal throttling once the package saturates
        instruction_rate=3.2e9,
        memory_read_rate=1.5e8,
        memory_write_rate=6.0e7,
        settled_frequency_ratio=0.68,
        throttle_onset=120.0,
        socket_power=130.0,
        thermal_margin=4.0,
    ),
    "LULESH": WorkloadModel(
        name="LULESH",
        heat_peak=5.0,
        heat_profile="phased",
        instruction_rate=1.9e9,
        memory_read_rate=7.0e8,
        memory_write_rate=3.0e8,
        settled_frequency_ratio=0.93,
        throttle_onset=600.0,
        socket_power=100.0,
        thermal_margin=15.0,
        phase_period=420.0,
    ),
    "Kripke": WorkloadModel(
        name="Kripke",
        heat_peak=3.5,
        heat_profile="phased",
        instruction_rate=1.4e9,
        memory_read_rate=9.0e8,
        memory_write_rate=4.0e8,
        settled_frequency_ratio=0.98,
        throttle_onset=300.0,
        socket_power=90.0,
        thermal_margin=22.0,
        phase_period=800.0,
    ),
    "Qbox": WorkloadModel(
        name="Qbox",
        heat_peak=4.5,
        heat_profile="phased",
        instruction_rate=2.1e9,
        memory_read_rate=4.0e8,
        memory_write_rate=1.8e8,
        settled_frequency_ratio=0.9,
        throttle_onset=500.0,
        socket_power=110.0,
        thermal_margin=12.0,
        phase_period=500.0,
    ),
}
