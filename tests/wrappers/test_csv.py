"""CSV unwrapper round-trips (reads go through CSVSource)."""

import pytest

from repro.core.dataset import ScrubJayDataset
from repro.core.semantics import Schema, domain, value
from repro.errors import WrapperError
from repro.sources import CSVSource
from repro.units.temporal import Timestamp, TimeSpan
from repro.wrappers import CSVUnwrapper

SCHEMA = Schema({
    "node": domain("compute nodes", "identifier"),
    "span": domain("time", "timespan"),
    "time": domain("time", "datetime"),
    "nodes": domain("compute nodes", "list<identifier>"),
    "temp": value("temperature", "degrees Celsius"),
})

ROWS = [
    {"node": 1, "span": TimeSpan(0, 60), "time": Timestamp(5.0),
     "nodes": [1, 2], "temp": 20.5},
    {"node": 2, "span": TimeSpan(60, 120), "time": Timestamp(65.0),
     "nodes": [3], "temp": 22.0},
]


def read_all(path, dictionary):
    src = CSVSource(path, SCHEMA, dictionary, num_partitions=1)
    out = []
    for i in range(src.num_partitions()):
        out.extend(src.read_partition(i))
    return out


def test_round_trip(ctx, dictionary, tmp_path):
    path = str(tmp_path / "data.csv")
    ds = ScrubJayDataset.from_rows(ctx, ROWS, SCHEMA, "t")
    assert CSVUnwrapper(path, dictionary).save(ds) == path
    assert read_all(path, dictionary) == ROWS


def test_round_trip_through_ingest(session, ctx, dictionary, tmp_path):
    path = str(tmp_path / "data.csv")
    ds = ScrubJayDataset.from_rows(ctx, ROWS, SCHEMA, "t")
    CSVUnwrapper(path, dictionary).save(ds)
    back = session.ingest().csv(path, SCHEMA).register("temps")
    assert back.collect() == ROWS


def test_sparse_cells_round_trip(ctx, dictionary, tmp_path):
    path = str(tmp_path / "sparse.csv")
    rows = [{"node": 1, "temp": 20.0}, {"node": 2}]
    ds = ScrubJayDataset.from_rows(ctx, rows, SCHEMA, "t")
    CSVUnwrapper(path, dictionary).save(ds)
    assert read_all(path, dictionary) == rows


def test_unknown_columns_ignored(dictionary, tmp_path):
    path = tmp_path / "extra.csv"
    path.write_text("node,mystery,temp\n1,xyz,20.0\n")
    assert read_all(str(path), dictionary) == [{"node": 1, "temp": 20.0}]


def test_no_matching_columns_raises(dictionary, tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("a,b\n1,2\n")
    with pytest.raises(WrapperError, match="no CSV column"):
        read_all(str(path), dictionary)


def test_empty_file_raises(dictionary, tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(WrapperError):
        read_all(str(path), dictionary)


def test_missing_file_raises(dictionary, tmp_path):
    with pytest.raises(WrapperError, match="cannot read"):
        read_all(str(tmp_path / "nope.csv"), dictionary)


def test_ingest_sets_scan_provenance(session, ctx, dictionary, tmp_path):
    path = str(tmp_path / "p.csv")
    CSVUnwrapper(path, dictionary).save(
        ScrubJayDataset.from_rows(ctx, ROWS, SCHEMA, "t")
    )
    ds = session.ingest().csv(path, SCHEMA).load("p")
    assert ds.provenance["op"] == "scan"
    assert ds.provenance["source"] == "CSVSource"
