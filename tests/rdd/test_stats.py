"""The statistics substrate: sampled stats, caching, and the report."""

from __future__ import annotations

import pytest

from repro.rdd import AdaptiveConfig, SJContext
from repro.rdd.stats import (
    AdaptivePlanner,
    ExecutionReport,
    collect_stats,
)


@pytest.fixture()
def ctx():
    c = SJContext(executor="serial", default_parallelism=4)
    yield c
    c.stop()


# ----------------------------------------------------------------------
# collect_stats
# ----------------------------------------------------------------------

def test_row_counts_are_exact(ctx):
    parts = ctx.parallelize(list(range(103)), 4)._materialize()
    stats = collect_stats(parts)
    assert stats.total_rows == 103
    assert stats.num_partitions == 4
    assert sum(p.rows for p in stats.partitions) == 103


def test_empty_rdd_stats(ctx):
    parts = ctx.parallelize([])._materialize()
    stats = collect_stats(parts, keyed=True)
    assert stats.total_rows == 0
    assert stats.approx_bytes == 0
    assert stats.distinct_keys is None


def test_size_estimate_grows_with_data(ctx):
    small = collect_stats(
        ctx.parallelize([{"a": i} for i in range(100)], 4)._materialize()
    )
    big = collect_stats(
        ctx.parallelize(
            [{"a": i, "pad": "x" * 100} for i in range(1000)], 4
        )._materialize()
    )
    assert 0 < small.approx_bytes < big.approx_bytes


def test_size_estimate_within_factor_of_exhaustive(ctx):
    # sampled estimate must stay near the unsampled ground truth even
    # with rows of varying width
    rows = [{"k": i, "pad": "x" * (i % 50)} for i in range(2000)]
    parts = ctx.parallelize(rows, 8)._materialize()
    sampled = collect_stats(parts, AdaptiveConfig(stats_sample_rows=32))
    exact = collect_stats(
        parts, AdaptiveConfig(stats_sample_rows=10**9)
    )
    assert exact.approx_bytes * 0.5 < sampled.approx_bytes < \
        exact.approx_bytes * 2.0


def test_distinct_keys_exact_when_fully_sampled(ctx):
    pairs = [(i % 17, i) for i in range(200)]
    parts = ctx.parallelize(pairs, 4)._materialize()
    stats = collect_stats(
        parts, AdaptiveConfig(stats_key_budget=10**6), keyed=True
    )
    assert stats.distinct_keys == 17


def test_distinct_keys_estimate_bounded_by_rows(ctx):
    pairs = [(i, i) for i in range(5000)]  # all distinct
    parts = ctx.parallelize(pairs, 4)._materialize()
    stats = collect_stats(
        parts, AdaptiveConfig(stats_key_budget=64), keyed=True
    )
    assert stats.distinct_keys is not None
    assert 0 < stats.distinct_keys <= 5000


def test_hot_key_detected(ctx):
    pairs = [("hot", i) for i in range(900)] + [
        (f"k{i}", i) for i in range(100)
    ]
    parts = ctx.parallelize(pairs, 4)._materialize()
    stats = collect_stats(parts, keyed=True)
    assert "hot" in stats.hot_keys
    assert stats.hot_keys["hot"] > 0.5


def test_keyed_stats_degrade_on_non_pairs(ctx):
    parts = ctx.parallelize([1, 2, 3], 2)._materialize()
    stats = collect_stats(parts, keyed=True)
    assert stats.distinct_keys is None
    assert stats.total_rows == 3


# ----------------------------------------------------------------------
# caching on the RDD
# ----------------------------------------------------------------------

def test_stats_cached_on_rdd(ctx):
    r = ctx.parallelize(list(range(50)), 4)
    s1 = r.stats()
    assert r.stats() is s1


def test_keyed_stats_upgrade_cached_entry(ctx):
    r = ctx.parallelize([(1, 2), (3, 4)], 2)
    plain = r.stats()
    assert plain.distinct_keys is None
    keyed = r.stats(keyed=True)
    assert keyed.distinct_keys == 2


def test_persist_fills_stats_during_materialization(ctx):
    r = ctx.parallelize(list(range(40)), 4).map(lambda x: x + 1).persist()
    assert r._stats is None
    r.collect()
    assert r._stats is not None
    assert r._stats.total_rows == 40


def test_unpersist_drops_stats(ctx):
    r = ctx.parallelize(list(range(10)), 2).persist()
    r.collect()
    assert r._stats is not None
    r.unpersist()
    assert r._stats is None


# ----------------------------------------------------------------------
# planner decisions & report
# ----------------------------------------------------------------------

def _stats_of(ctx, pairs, n=2):
    return collect_stats(
        ctx.parallelize(pairs, n)._materialize(), keyed=True
    )


def test_small_side_broadcasts(ctx):
    planner = AdaptivePlanner(AdaptiveConfig(), ExecutionReport())
    left = _stats_of(ctx, [(i, "x" * 50) for i in range(1000)], 4)
    right = _stats_of(ctx, [(i, i) for i in range(10)])
    d = planner.decide_join(left, right)
    assert d.strategy == "broadcast"
    assert d.build_side == "right"
    assert d.adaptive
    assert planner.report.joins() == [d]


def test_threshold_zero_forces_shuffle(ctx):
    planner = AdaptivePlanner(
        AdaptiveConfig(broadcast_threshold_bytes=0), ExecutionReport()
    )
    left = _stats_of(ctx, [(i, i) for i in range(100)])
    right = _stats_of(ctx, [(i, i) for i in range(10)])
    d = planner.decide_join(left, right)
    assert d.strategy == "shuffle"
    assert d.build_side is None


def test_disabled_config_records_non_adaptive_decision(ctx):
    planner = AdaptivePlanner(
        AdaptiveConfig(enabled=False), ExecutionReport()
    )
    d = planner.decide_join(
        _stats_of(ctx, [(1, 1)]), _stats_of(ctx, [(2, 2)])
    )
    assert d.strategy == "shuffle"
    assert not d.adaptive
    assert "disabled" in d.reason


def test_forced_hints_bypass_stats(ctx):
    planner = AdaptivePlanner(
        AdaptiveConfig(broadcast_threshold_bytes=0), ExecutionReport()
    )
    big = _stats_of(ctx, [(i, "x" * 100) for i in range(1000)], 4)
    d = planner.decide_join(big, big, hint="broadcast-left")
    assert (d.strategy, d.build_side, d.adaptive) == \
        ("broadcast", "left", False)


def test_choose_reduce_partitions_targets_rows():
    planner = AdaptivePlanner(AdaptiveConfig(target_partition_rows=100))
    assert planner.choose_reduce_partitions(0) == 1
    assert planner.choose_reduce_partitions(100) == 1
    assert planner.choose_reduce_partitions(1000) == 10
    # capped by distinct keys: more partitions than keys is overhead
    assert planner.choose_reduce_partitions(1000, distinct_keys=3) == 3
    # clamped to the configured maximum
    assert planner.choose_reduce_partitions(10**9) == \
        AdaptiveConfig().max_reduce_partitions


def test_detect_skew():
    planner = AdaptivePlanner(
        AdaptiveConfig(skew_factor=2.0, skew_min_pairs=10)
    )
    assert planner.detect_skew([100, 5, 5, 5]) == [0]
    assert planner.detect_skew([5, 5, 5, 5]) == []
    assert planner.detect_skew([]) == []
    # below the absolute floor nothing is skewed, however lopsided
    assert planner.detect_skew([9, 0, 0, 0]) == []


def test_report_summary_and_dict(ctx):
    report = ExecutionReport()
    planner = AdaptivePlanner(AdaptiveConfig(), report)
    planner.decide_join(
        _stats_of(ctx, [(1, 1)] * 5), _stats_of(ctx, [(2, 2)])
    )
    assert len(report) == 1
    assert "broadcast" in report.summary()
    d = report.as_dict()["decisions"][0]
    assert d["kind"] == "join"
    assert d["strategy"] == "broadcast"


def test_planner_keeps_passed_empty_report():
    # regression: an empty ExecutionReport is falsy (it has __len__);
    # the planner must still record into the caller's instance
    report = ExecutionReport()
    planner = AdaptivePlanner(report=report)
    assert planner.report is report


def test_context_report_is_plumbed_to_scheduler(ctx):
    assert ctx.scheduler.planner is ctx.planner
    assert ctx.planner.report is ctx.report
    assert isinstance(ctx.report, ExecutionReport)
