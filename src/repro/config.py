"""The unified, typed configuration layer.

ScrubJay grew performance knobs in four unrelated places: the engine's
:class:`~repro.core.engine.EngineConfig`, the RDD layer's
:class:`~repro.rdd.stats.AdaptiveConfig`, flat keyword arguments on
:class:`~repro.session.ScrubJaySession`, and untyped ``**kwargs``
forwarded into the serve tier. This module consolidates all of them
behind one introspectable surface:

- :class:`Knob` — one declared setting: dotted name, type, default,
  bounds, documentation, and whether the online tuner may adjust it;
- :data:`KNOBS` — the full registry (the generated table in DESIGN.md
  is rendered from it by :func:`knob_table`);
- :class:`TuningProfile` — a validated knob store with per-knob
  provenance (``default`` | ``user-pinned`` | ``tuned``), a version
  counter, change listeners, and JSON persistence. Sessions, the
  serve tier, and the tuner (:mod:`repro.tuning`) all read through
  it; the tuner is the only writer of ``tuned`` values;
- :class:`ServeConfig` — the typed section handed to
  :class:`~repro.serve.QueryService`, replacing opaque ``**kwargs``;
- :func:`diff` — knob-level difference between two profiles, used by
  tests and the sharded ``sync`` agreement check.

Every rejected setting raises :class:`~repro.errors.ConfigError`
naming the offending knob at construction time, not deep inside the
engine or service.
"""

from __future__ import annotations

import dataclasses
import difflib
import json
import os
import threading
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.errors import ConfigError
from repro.core.engine import EngineConfig
from repro.rdd.stats import AdaptiveConfig

__all__ = [
    "KNOBS",
    "Knob",
    "ServeConfig",
    "TuningProfile",
    "diff",
    "knob_table",
]

#: provenance states a knob value can be in
PROVENANCE_DEFAULT = "default"
PROVENANCE_USER = "user-pinned"
PROVENANCE_TUNED = "tuned"

_EXECUTOR_KINDS = ("serial", "threads", "processes", "simulated")


@dataclass(frozen=True)
class Knob:
    """One declared configuration setting.

    ``kind`` is the value type: ``bool``, ``int``, ``float``, ``str``,
    or ``str_tuple`` (a tuple of strings, e.g. the per-operator
    columnar off-list). ``low``/``high`` are inclusive bounds for the
    numeric kinds; ``choices`` constrains ``str`` knobs; ``nullable``
    admits ``None`` (meaning "unset / derive a default downstream").
    ``tunable`` marks knobs the online tuner may adjust — everything
    else only changes by explicit user action.
    """

    name: str
    kind: str
    default: Any
    doc: str
    low: Optional[float] = None
    high: Optional[float] = None
    choices: Optional[Tuple[str, ...]] = None
    nullable: bool = False
    tunable: bool = False

    def bounds_str(self) -> str:
        if self.choices:
            return "{" + ", ".join(self.choices) + "}"
        if self.low is None and self.high is None:
            return "—"
        lo = "-inf" if self.low is None else f"{self.low:g}"
        hi = "+inf" if self.high is None else f"{self.high:g}"
        return f"[{lo}, {hi}]"


_ENGINE = EngineConfig()
_ADAPTIVE = AdaptiveConfig()


def _build_knobs() -> Dict[str, Knob]:
    e, a = _ENGINE, _ADAPTIVE
    knobs = [
        # -- engine ----------------------------------------------------
        Knob("engine.max_transform_depth", "int", e.max_transform_depth,
             "Transformation-closure depth per dataset before a "
             "combination.", low=1, high=8),
        Knob("engine.post_combine_depth", "int", e.post_combine_depth,
             "Transformation-closure depth applied after each "
             "combination.", low=0, high=8),
        Knob("engine.max_candidates", "int", e.max_candidates,
             "Candidates kept per dataset/subset during the solve "
             "(shortest first).", low=1, high=4096),
        Knob("engine.max_datasets", "int", e.max_datasets,
             "Maximum number of datasets combined to answer one "
             "query.", low=2, high=16),
        Knob("engine.interpolation_window", "float",
             e.interpolation_window,
             "Window (seconds) for engine-inserted interpolation "
             "joins.", low=1e-9, high=1e9),
        Knob("engine.explode_period", "float", e.explode_period,
             "Sampling period (seconds) for engine-inserted "
             "continuous explodes.", low=1e-9, high=1e9),
        Knob("engine.pushdown", "bool", e.pushdown,
             "Rewrite solved plans so filters collapse into the leaf "
             "scans."),
        Knob("engine.projection", "bool", e.projection,
             "Let the pushdown rewrite also prune scanned columns."),
        Knob("engine.columnar", "bool", e.columnar,
             "Execute plans over ColumnBatch kernels where operators "
             "support them.", tunable=True),
        Knob("engine.columnar_off_ops", "str_tuple", e.columnar_off_ops,
             "Operators forced to the row path even under columnar "
             "execution; the tuner adds an operator whose kernel "
             "keeps falling back.", tunable=True),
        # -- adaptive execution ---------------------------------------
        Knob("adaptive.enabled", "bool", a.enabled,
             "Master switch for statistics-driven execution; off "
             "forces classic always-shuffle plans."),
        Knob("adaptive.broadcast_threshold_bytes", "int",
             a.broadcast_threshold_bytes,
             "Broadcast a join side whose estimated size is at most "
             "this many bytes.", low=0, high=1 << 31, tunable=True),
        Knob("adaptive.broadcast_threshold_rows", "int",
             a.broadcast_threshold_rows,
             "... and whose row count is at most this (guards bad "
             "size samples).", low=0, high=10_000_000),
        Knob("adaptive.target_partition_rows", "int",
             a.target_partition_rows,
             "Auto-chosen reduce partitions aim for this many rows "
             "each.", low=1, high=1_000_000, tunable=True),
        Knob("adaptive.min_reduce_partitions", "int",
             a.min_reduce_partitions,
             "Lower bound for the auto-chosen reduce partition "
             "count.", low=1, high=1024),
        Knob("adaptive.max_reduce_partitions", "int",
             a.max_reduce_partitions,
             "Upper bound for the auto-chosen reduce partition "
             "count.", low=1, high=4096),
        Knob("adaptive.skew_factor", "float", a.skew_factor,
             "A shuffle bucket is skewed when it exceeds this many "
             "times the mean bucket size.", low=1.5, high=64),
        Knob("adaptive.skew_min_pairs", "int", a.skew_min_pairs,
             "... and holds at least this many pairs.",
             low=1, high=1_000_000),
        Knob("adaptive.skew_max_splits", "int", a.skew_max_splits,
             "Cap on how many sub-buckets one skewed bucket splits "
             "into.", low=2, high=256),
        Knob("adaptive.stats_sample_rows", "int", a.stats_sample_rows,
             "Rows sampled per partition for the size estimate.",
             low=8, high=4096),
        Knob("adaptive.stats_key_budget", "int", a.stats_key_budget,
             "Total keys sampled across partitions for the distinct "
             "estimate.", low=64, high=65536),
        # -- executor / retry -----------------------------------------
        Knob("executor.kind", "str", "serial",
             "Data-cluster executor the session builds when no "
             "ready-made ctx/executor object is injected.",
             choices=_EXECUTOR_KINDS),
        Knob("executor.num_workers", "int", None,
             "Worker count for the data-cluster executor (None = "
             "executor default).", low=1, high=256, nullable=True),
        Knob("retry.max_task_attempts", "int", 3,
             "Total attempts per task (1 disables per-task retry — "
             "the zero-overhead path).", low=1, high=10),
        Knob("retry.max_stage_attempts", "int", 4,
             "Total attempts per stage when the worker pool dies.",
             low=1, high=10),
        # -- session ---------------------------------------------------
        Knob("session.cache_dir", "str", None,
             "On-disk derivation cache directory; also hosts rollup "
             "tables and the persisted tuning profile.",
             nullable=True),
        Knob("session.cache_max_entries", "int", 64,
             "Derivation-cache capacity (entries).",
             low=1, high=100_000),
        # -- serve tier ------------------------------------------------
        Knob("serve.num_workers", "int", 4,
             "Service worker threads (concurrent queries in "
             "execution).", low=1, high=64),
        Knob("serve.max_queue", "int", 64,
             "Admission bound across all tenants; beyond it "
             "submissions shed.", low=1, high=100_000),
        Knob("serve.default_timeout", "float", None,
             "Per-query deadline in seconds (queue wait + execution); "
             "None = no deadline.", low=1e-3, high=86_400,
             nullable=True),
        Knob("serve.plan_cache_entries", "int", 256,
             "Plan-cache capacity (solved plans).", low=1,
             high=100_000),
        Knob("serve.result_cache_entries", "int", 128,
             "Result-cache capacity (materialized answers).",
             low=1, high=100_000),
        Knob("serve.result_ttl", "float", None,
             "Result-cache time-to-live in seconds; None = no TTL. "
             "The tuner shrinks it when churn collapses the hit "
             "rate.", low=0.05, high=86_400, nullable=True,
             tunable=True),
        Knob("serve.use_disk_cache", "bool", True,
             "Write results through to the session's disk cache and "
             "warm-start from it."),
        Knob("serve.max_query_attempts", "int", 2,
             "End-to-end attempts per query on transient executor "
             "errors.", low=1, high=8),
        Knob("serve.metrics_window_s", "float", 30.0,
             "Sliding window (seconds) for recent-QPS and latency "
             "percentiles.", low=1, high=600),
        # -- tuning ----------------------------------------------------
        Knob("tuning.enabled", "bool", False,
             "Run the online self-tuner: observe decisions and "
             "timings, apply bounded knob adjustments."),
        Knob("tuning.hysteresis", "int", 2,
             "Consecutive same-direction regret observations required "
             "before a knob moves (damps oscillation).", low=1,
             high=10),
        Knob("tuning.cooldown", "int", 2,
             "Proposals to ignore per knob after an adjustment, so "
             "its effect is measured before the next move.", low=0,
             high=100),
        Knob("tuning.regret_threshold", "float", 0.2,
             "Minimum relative regret (regret / measured time) for an "
             "observation to count as evidence.", low=0.0, high=10.0),
        Knob("tuning.min_regret_s", "float", 0.005,
             "Minimum absolute regret in seconds for an observation "
             "to count as evidence.", low=0.0, high=10.0),
    ]
    return {k.name: k for k in knobs}


#: the full knob registry, keyed by dotted name
KNOBS: Dict[str, Knob] = _build_knobs()


def _build_aliases() -> Dict[str, str]:
    leaf_owner: Dict[str, Optional[str]] = {}
    for name in KNOBS:
        leaf = name.split(".")[-1]
        leaf_owner[leaf] = None if leaf in leaf_owner else name
    aliases: Dict[str, str] = {}
    for name in KNOBS:
        aliases[name.replace(".", "_")] = name
    for leaf, owner in leaf_owner.items():
        if owner is not None and leaf not in aliases:
            aliases[leaf] = owner
    # historical spellings from the flat-kwargs era
    aliases["executor"] = "executor.kind"
    aliases["broadcast_threshold"] = "adaptive.broadcast_threshold_bytes"
    aliases["num_workers"] = "executor.num_workers"
    return aliases


_ALIASES: Dict[str, str] = _build_aliases()


def resolve(key: str) -> str:
    """Canonical dotted knob name for ``key`` (dotted name, unique
    leaf, underscored form, or historical alias); raises
    :class:`ConfigError` naming the unknown knob otherwise."""
    if key in KNOBS:
        return key
    target = _ALIASES.get(key)
    if target is not None:
        return target
    close = difflib.get_close_matches(
        key, list(KNOBS) + list(_ALIASES), n=3, cutoff=0.6
    )
    hint = f"; did you mean {', '.join(close)}?" if close else ""
    raise ConfigError(f"unknown configuration knob {key!r}{hint}",
                      knob=key)


def _validate(knob: Knob, value: Any) -> Any:
    """Type-check, coerce, and bounds-check ``value`` for ``knob``;
    returns the canonical value or raises :class:`ConfigError`."""
    if value is None:
        if knob.nullable:
            return None
        raise ConfigError(
            f"knob {knob.name!r} does not accept None", knob=knob.name
        )
    if knob.kind == "bool":
        if not isinstance(value, bool):
            raise ConfigError(
                f"knob {knob.name!r} expects a bool, got "
                f"{type(value).__name__} {value!r}", knob=knob.name,
            )
        return value
    if knob.kind == "int":
        if isinstance(value, bool) or not isinstance(value, int):
            raise ConfigError(
                f"knob {knob.name!r} expects an int, got "
                f"{type(value).__name__} {value!r}", knob=knob.name,
            )
    elif knob.kind == "float":
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConfigError(
                f"knob {knob.name!r} expects a float, got "
                f"{type(value).__name__} {value!r}", knob=knob.name,
            )
        value = float(value)
    elif knob.kind == "str":
        if not isinstance(value, str):
            raise ConfigError(
                f"knob {knob.name!r} expects a str, got "
                f"{type(value).__name__} {value!r}", knob=knob.name,
            )
        if knob.choices and value not in knob.choices:
            raise ConfigError(
                f"knob {knob.name!r} must be one of "
                f"{', '.join(knob.choices)}; got {value!r}",
                knob=knob.name,
            )
        return value
    elif knob.kind == "str_tuple":
        if isinstance(value, str) or not all(
            isinstance(v, str) for v in tuple(value)
        ):
            raise ConfigError(
                f"knob {knob.name!r} expects a sequence of strings, "
                f"got {value!r}", knob=knob.name,
            )
        return tuple(value)
    else:  # pragma: no cover — registry invariant
        raise ConfigError(f"knob {knob.name!r} has unknown kind "
                          f"{knob.kind!r}", knob=knob.name)
    if knob.low is not None and value < knob.low:
        raise ConfigError(
            f"knob {knob.name!r} = {value!r} is below its lower bound "
            f"{knob.bounds_str()}", knob=knob.name,
        )
    if knob.high is not None and value > knob.high:
        raise ConfigError(
            f"knob {knob.name!r} = {value!r} is above its upper bound "
            f"{knob.bounds_str()}", knob=knob.name,
        )
    return value


def clamp(name: str, value: Union[int, float]) -> Union[int, float]:
    """``value`` clamped into ``name``'s declared bounds."""
    knob = KNOBS[resolve(name)]
    if knob.low is not None and value < knob.low:
        value = knob.low
    if knob.high is not None and value > knob.high:
        value = knob.high
    return int(value) if knob.kind == "int" else float(value)


# ----------------------------------------------------------------------
# the serve section as a typed object
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ServeConfig:
    """Typed serve-tier settings — the ``serve.*`` section of a
    profile, in the shape :class:`~repro.serve.QueryService` consumes.

    Construct directly, or derive one from a profile with
    :meth:`TuningProfile.serve_config`; ``with_overrides`` applies
    keyword overrides with full knob validation (unknown or
    out-of-bounds names raise :class:`~repro.errors.ConfigError` here,
    at construction time, not deep in the service).
    """

    num_workers: int = 4
    max_queue: int = 64
    default_timeout: Optional[float] = None
    plan_cache_entries: int = 256
    result_cache_entries: int = 128
    result_ttl: Optional[float] = None
    use_disk_cache: bool = True
    max_query_attempts: int = 2
    metrics_window_s: float = 30.0

    def __post_init__(self) -> None:
        for f in dataclasses.fields(self):
            _validate(KNOBS[f"serve.{f.name}"], getattr(self, f.name))

    def with_overrides(self, **overrides: Any) -> "ServeConfig":
        fields = {f.name for f in dataclasses.fields(self)}
        for key, value in overrides.items():
            if key not in fields:
                close = difflib.get_close_matches(
                    key, sorted(fields), n=3, cutoff=0.6
                )
                hint = (f"; did you mean {', '.join(close)}?"
                        if close else "")
                raise ConfigError(
                    f"unknown serve knob {key!r} (valid: "
                    f"{', '.join(sorted(fields))}){hint}", knob=key,
                )
            _validate(KNOBS[f"serve.{key}"], value)
        return dataclasses.replace(self, **overrides)

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


# ----------------------------------------------------------------------
# the profile
# ----------------------------------------------------------------------


class TuningProfile:
    """The unified knob store every layer reads through.

    Values set at construction or via :meth:`set` are *user-pinned*:
    they express intent and the tuner never overrides them. Values
    written by the tuner via :meth:`tune` carry ``tuned`` provenance.
    Every write validates type and bounds, bumps :attr:`version`, and
    notifies registered listeners — the hook the session uses to swap
    the frozen :class:`EngineConfig`/:class:`AdaptiveConfig` objects
    the hot paths read.

    Keyword arguments accept canonical dotted names spelled with
    underscores (``adaptive_broadcast_threshold_bytes``), unique leaf
    names (``columnar``, ``cache_dir``), and the historical flat-kwarg
    spellings (``executor``, ``broadcast_threshold``, ``num_workers``).
    """

    def __init__(self, **overrides: Any) -> None:
        self._lock = threading.RLock()
        self._values: Dict[str, Any] = {
            name: knob.default for name, knob in KNOBS.items()
        }
        self._provenance: Dict[str, str] = {
            name: PROVENANCE_DEFAULT for name in KNOBS
        }
        self._pinned: set = set()
        self._listeners: List[Callable[[str, Any, Any], None]] = []
        self.version = 0
        for key, value in overrides.items():
            self.set(key, value)

    # -- reads ---------------------------------------------------------

    def get(self, key: str) -> Any:
        with self._lock:
            return self._values[resolve(key)]

    def __getitem__(self, key: str) -> Any:
        return self.get(key)

    def provenance(self, key: str) -> str:
        with self._lock:
            return self._provenance[resolve(key)]

    def is_pinned(self, key: str) -> bool:
        with self._lock:
            return resolve(key) in self._pinned

    def tunable(self, key: str) -> bool:
        """May the tuner adjust this knob right now?"""
        name = resolve(key)
        with self._lock:
            return KNOBS[name].tunable and name not in self._pinned

    def values(self) -> Dict[str, Any]:
        with self._lock:
            return dict(self._values)

    # -- writes --------------------------------------------------------

    def set(self, key: str, value: Any) -> None:
        """User write: validate, pin, record ``user-pinned``."""
        self._write(key, value, PROVENANCE_USER, pin=True)

    def pin(self, key: str) -> None:
        """Pin a knob at its current value without changing it — the
        tuner will leave it alone."""
        name = resolve(key)
        with self._lock:
            self._pinned.add(name)
            if self._provenance[name] == PROVENANCE_TUNED:
                self._provenance[name] = PROVENANCE_USER

    def tune(self, key: str, value: Any) -> Tuple[Any, Any]:
        """Tuner write: refuse pinned/untunable knobs, record
        ``tuned`` provenance; returns ``(old, new)``."""
        name = resolve(key)
        knob = KNOBS[name]
        if not knob.tunable:
            raise ConfigError(
                f"knob {name!r} is not tunable", knob=name
            )
        if self.is_pinned(name):
            raise ConfigError(
                f"knob {name!r} is user-pinned; the tuner must not "
                f"override it", knob=name,
            )
        old = self.get(name)
        self._write(name, value, PROVENANCE_TUNED, pin=False)
        return old, self.get(name)

    def _write(
        self, key: str, value: Any, provenance: str, pin: bool
    ) -> None:
        name = resolve(key)
        value = _validate(KNOBS[name], value)
        with self._lock:
            old = self._values[name]
            self._values[name] = value
            self._provenance[name] = provenance
            if pin:
                self._pinned.add(name)
            self.version += 1
            listeners = list(self._listeners)
        if old != value:
            for fn in listeners:
                fn(name, old, value)

    # -- listeners -----------------------------------------------------

    def on_change(
        self, fn: Callable[[str, Any, Any], None]
    ) -> Callable[[str, Any, Any], None]:
        """Register ``fn(name, old, new)``, called after every
        effective value change; returns ``fn`` for deregistration."""
        with self._lock:
            self._listeners.append(fn)
        return fn

    def remove_listener(
        self, fn: Callable[[str, Any, Any], None]
    ) -> None:
        with self._lock:
            try:
                self._listeners.remove(fn)
            except ValueError:
                pass

    # -- derived typed sections ---------------------------------------

    def engine_config(self) -> EngineConfig:
        v = self.values()
        return EngineConfig(**{
            f.name: v[f"engine.{f.name}"]
            for f in dataclasses.fields(EngineConfig)
        })

    def adaptive_config(self) -> AdaptiveConfig:
        v = self.values()
        return AdaptiveConfig(**{
            f.name: v[f"adaptive.{f.name}"]
            for f in dataclasses.fields(AdaptiveConfig)
        })

    def serve_config(self) -> ServeConfig:
        v = self.values()
        return ServeConfig(**{
            f.name: v[f"serve.{f.name}"]
            for f in dataclasses.fields(ServeConfig)
        })

    def retry_policy(self):
        """A :class:`~repro.rdd.RetryPolicy` built from the retry
        knobs, or None when both are still at their defaults (letting
        downstream layers keep their own defaults)."""
        with self._lock:
            if (
                self._provenance["retry.max_task_attempts"]
                == PROVENANCE_DEFAULT
                and self._provenance["retry.max_stage_attempts"]
                == PROVENANCE_DEFAULT
            ):
                return None
        from repro.rdd.fault import RetryPolicy

        return RetryPolicy(
            max_task_attempts=self.get("retry.max_task_attempts"),
            max_stage_attempts=self.get("retry.max_stage_attempts"),
        )

    # -- introspection -------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Effective values plus provenance — the
        ``session.profile`` / ``svc.snapshot().profile`` shape."""
        with self._lock:
            return {
                "version": self.version,
                "knobs": {
                    name: {
                        "value": _jsonable(self._values[name]),
                        "provenance": self._provenance[name],
                    }
                    for name in KNOBS
                },
            }

    def describe(self, all_knobs: bool = False) -> str:
        """Human-readable listing; by default only knobs that moved
        off their defaults."""
        lines = []
        with self._lock:
            for name in KNOBS:
                prov = self._provenance[name]
                if not all_knobs and prov == PROVENANCE_DEFAULT:
                    continue
                lines.append(
                    f"{name} = {self._values[name]!r}  [{prov}]"
                )
        return "\n".join(lines) or "(all knobs at defaults)"

    # -- persistence & wire form --------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        """Full state: values, provenance, pinned set, version."""
        with self._lock:
            return {
                "version": self.version,
                "values": {
                    n: _jsonable(v) for n, v in self._values.items()
                    if self._provenance[n] != PROVENANCE_DEFAULT
                },
                "provenance": {
                    n: p for n, p in self._provenance.items()
                    if p != PROVENANCE_DEFAULT
                },
                "pinned": sorted(self._pinned),
            }

    @classmethod
    def from_json_dict(cls, state: Mapping[str, Any]) -> "TuningProfile":
        profile = cls()
        provenance = dict(state.get("provenance") or {})
        pinned = set(state.get("pinned") or ())
        for name, value in (state.get("values") or {}).items():
            if name not in KNOBS:
                continue  # forward compatibility: ignore unknown knobs
            prov = provenance.get(name, PROVENANCE_USER)
            profile._write(
                name, _from_jsonable(KNOBS[name], value), prov,
                pin=name in pinned,
            )
        profile.version = int(state.get("version", profile.version))
        return profile

    def tuned_state(self) -> Dict[str, Any]:
        """Only the tuner-written values plus the version — the wire
        form the sharded ``sync`` op propagates and the on-disk form
        persisted under ``cache_dir``."""
        with self._lock:
            return {
                "version": self.version,
                "tuned": {
                    n: _jsonable(self._values[n])
                    for n, p in self._provenance.items()
                    if p == PROVENANCE_TUNED
                },
            }

    def apply_tuned(self, state: Mapping[str, Any]) -> List[str]:
        """Adopt another profile's tuned values (the receiving side of
        ``sync`` propagation). Pinned knobs win locally; unknown knobs
        are ignored. Returns the names that changed."""
        changed: List[str] = []
        for name, value in (state.get("tuned") or {}).items():
            if name not in KNOBS or not self.tunable(name):
                continue
            value = _from_jsonable(KNOBS[name], value)
            if self.get(name) != value:
                self._write(name, value, PROVENANCE_TUNED, pin=False)
                changed.append(name)
        with self._lock:
            self.version = max(
                self.version, int(state.get("version", 0))
            )
        return changed

    def save_tuned(self, path: str) -> None:
        """Atomically persist :meth:`tuned_state` to ``path``."""
        tmp = f"{path}.tmp.{os.getpid()}"
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(self.tuned_state(), f, indent=2, sort_keys=True)
        os.replace(tmp, path)

    def load_tuned(self, path: str) -> List[str]:
        """Re-load a persisted tuned state; missing or corrupt files
        are treated as empty (tuning state is advisory, never
        load-bearing). Returns the knob names adopted."""
        try:
            with open(path, "r", encoding="utf-8") as f:
                state = json.load(f)
        except (OSError, ValueError):
            return []
        if not isinstance(state, dict):
            return []
        return self.apply_tuned(state)

    def __repr__(self) -> str:
        with self._lock:
            moved = sum(
                1 for p in self._provenance.values()
                if p != PROVENANCE_DEFAULT
            )
        return (
            f"TuningProfile(version={self.version}, "
            f"{moved}/{len(KNOBS)} knobs off defaults)"
        )


def _jsonable(value: Any) -> Any:
    return list(value) if isinstance(value, tuple) else value


def _from_jsonable(knob: Knob, value: Any) -> Any:
    if knob.kind == "str_tuple" and isinstance(value, list):
        return tuple(value)
    return value


# ----------------------------------------------------------------------
# diffing & documentation
# ----------------------------------------------------------------------


def diff(
    a: Union[TuningProfile, Mapping[str, Any]],
    b: Union[TuningProfile, Mapping[str, Any]],
) -> Dict[str, Tuple[Any, Any]]:
    """Knob-level difference: ``{name: (a_value, b_value)}`` for every
    knob whose effective value differs. Accepts profiles or plain
    ``{name: value}`` mappings (e.g. a wire-propagated tuned state);
    a knob missing from a mapping is treated as at its default."""

    def as_values(p) -> Dict[str, Any]:
        if isinstance(p, TuningProfile):
            return p.values()
        out = {name: knob.default for name, knob in KNOBS.items()}
        for key, value in dict(p).items():
            name = resolve(key)
            out[name] = _from_jsonable(KNOBS[name], value)
        return out

    va, vb = as_values(a), as_values(b)
    return {
        name: (va[name], vb[name])
        for name in KNOBS
        if va[name] != vb[name]
    }


def knob_table() -> str:
    """The generated markdown table documenting every knob — embedded
    in DESIGN.md and kept in sync by a test."""
    rows = [
        "| Knob | Type | Default | Bounds | Tunable | Meaning |",
        "|---|---|---|---|---|---|",
    ]
    for name, k in KNOBS.items():
        default = "None" if k.default is None else repr(k.default)
        rows.append(
            f"| `{name}` | {k.kind} | `{default}` | {k.bounds_str()} "
            f"| {'yes' if k.tunable else 'no'} | {k.doc} |"
        )
    return "\n".join(rows)
