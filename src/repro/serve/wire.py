"""Thin wire layer: line-delimited JSON over TCP, stdlib only.

One request per line, one JSON response per line — the simplest
protocol that lets ``examples/`` run a real client/server demo and
that a load generator can hammer from many sockets. The same request
dispatcher backs an :class:`InProcessClient`, so tests and embedded
callers speak the exact protocol without a socket.

Requests (``op`` selects the action)::

    {"op": "ping"}
    {"op": "query",  "domains": [...], "values": [...],
     "tenant": "...", "timeout": 1.5}
    {"op": "explain","domains": [...], "values": [...]}
    {"op": "metrics"}

Responses are ``{"ok": true, ...}`` or
``{"ok": false, "error": "<type name>", "message": "..."}`` — the
error type name round-trips the server-side exception class so
clients can tell a shed (``ServiceOverloadError``) from a timeout
from a planning failure and react accordingly (back off, give up,
fix the query).

Row values are text-encoded with the semantic codec
(:mod:`repro.wrappers.codec`) — the schema rides along, so a client
holding a compatible dictionary can decode typed values back.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.query import FilterTerm, Query
from repro.core.semantics import Schema
from repro.errors import ScrubJayError, ServiceError, WrapperError
from repro.serve.service import QueryService
from repro.wrappers.codec import decode_value, encode_value


# ----------------------------------------------------------------------
# shared dispatch (socket handler + in-process handle)
# ----------------------------------------------------------------------


def _values_from_wire(values: Sequence[Any]) -> List[Any]:
    """JSON arrays arrive as lists; Query.of wants str | (dim, units)."""
    out: List[Any] = []
    for v in values:
        if isinstance(v, str):
            out.append(v)
        else:
            dim, units = v
            out.append((dim, units))
    return out


def encode_rows(
    rows: List[Dict[str, Any]], schema: Schema, dictionary
) -> List[Dict[str, str]]:
    """Text-encode typed row values for JSON transport."""
    out = []
    for row in rows:
        enc: Dict[str, str] = {}
        for field, value in row.items():
            sem = schema[field] if field in schema else None
            if sem is None:
                enc[field] = str(value)
            else:
                enc[field] = encode_value(value, sem, dictionary)
        out.append(enc)
    return out


def decode_rows(
    rows: List[Dict[str, str]], schema: Schema, dictionary
) -> List[Dict[str, Any]]:
    """Invert :func:`encode_rows` given a compatible dictionary."""
    out = []
    for row in rows:
        dec: Dict[str, Any] = {}
        for field, text in row.items():
            if field in schema:
                dec[field] = decode_value(text, schema[field], dictionary)
            else:
                dec[field] = text
        out.append(dec)
    return out


def dispatch(service: QueryService, request: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one wire request against a service; never raises — all
    failures become typed error responses."""
    try:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "metrics":
            return {
                "ok": True,
                "metrics": service.snapshot().as_dict(),
            }
        if op in ("query", "explain"):
            domains = request.get("domains") or []
            values = _values_from_wire(request.get("values") or [])
            filters = tuple(
                FilterTerm.from_json_dict(f)
                for f in request.get("filters") or ()
            )
            if op == "explain":
                plan = service.session.plan(
                    Query.of(domains, values, filters)
                )
                return {
                    "ok": True,
                    "plan": plan.describe(),
                    "operations": plan.operations(),
                    "steps": plan.num_steps(),
                }
            dataset = service.query(
                domains,
                values,
                tenant=str(request.get("tenant", "default")),
                timeout=request.get("timeout"),
                filters=filters,
            )
            rows = dataset.collect()
            return {
                "ok": True,
                "name": dataset.name,
                "schema": dataset.schema.to_json_dict(),
                "rows": encode_rows(
                    rows, dataset.schema, service.session.dictionary
                ),
                "row_count": len(rows),
            }
        return {
            "ok": False,
            "error": "ProtocolError",
            "message": f"unknown op {op!r}",
        }
    except (ScrubJayError, WrapperError) as exc:
        return {
            "ok": False,
            "error": type(exc).__name__,
            "message": str(exc),
        }
    except Exception as exc:  # malformed requests must not kill a conn
        return {
            "ok": False,
            "error": "InternalError",
            "message": f"{type(exc).__name__}: {exc}",
        }


class WireError(ServiceError):
    """Client-side surfacing of an ``ok: false`` response."""

    def __init__(self, error: str, message: str) -> None:
        super().__init__(f"{error}: {message}")
        self.error = error
        self.remote_message = message


def _raise_on_error(response: Dict[str, Any]) -> Dict[str, Any]:
    if not response.get("ok"):
        raise WireError(
            str(response.get("error", "UnknownError")),
            str(response.get("message", "")),
        )
    return response


# ----------------------------------------------------------------------
# in-process handle
# ----------------------------------------------------------------------


class InProcessClient:
    """The wire protocol without the wire: same requests/responses,
    dispatched directly against a local service. Useful for embedding
    and for protocol tests that should not depend on sockets."""

    def __init__(self, service: QueryService) -> None:
        self.service = service

    def request(self, req: Dict[str, Any]) -> Dict[str, Any]:
        return dispatch(self.service, req)

    def ping(self) -> bool:
        return bool(_raise_on_error(self.request({"op": "ping"})).get("pong"))

    def metrics(self) -> Dict[str, Any]:
        return _raise_on_error(self.request({"op": "metrics"}))["metrics"]

    def explain(
        self,
        domains: Sequence[str],
        values: Sequence[Any],
        filters: Sequence = (),
    ) -> Dict[str, Any]:
        return _raise_on_error(self.request({
            "op": "explain",
            "domains": list(domains),
            "values": list(values),
            "filters": [f.to_json_dict() for f in filters],
        }))

    def query(
        self,
        domains: Sequence[str],
        values: Sequence[Any],
        tenant: str = "default",
        timeout: Optional[float] = None,
        dictionary=None,
        filters: Sequence = (),
    ) -> Tuple[List[Dict[str, Any]], Schema]:
        resp = _raise_on_error(self.request({
            "op": "query",
            "domains": list(domains),
            "values": list(values),
            "tenant": tenant,
            "timeout": timeout,
            "filters": [f.to_json_dict() for f in filters],
        }))
        schema = Schema.from_json_dict(resp["schema"])
        rows = resp["rows"]
        if dictionary is not None:
            rows = decode_rows(rows, schema, dictionary)
        return rows, schema

    def close(self) -> None:  # symmetry with QueryClient
        pass

    def __enter__(self) -> "InProcessClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# socket server
# ----------------------------------------------------------------------


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # one connection, many requests
        service = self.server.service  # type: ignore[attr-defined]
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            try:
                request = json.loads(line.decode("utf-8"))
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
            except (ValueError, UnicodeDecodeError) as exc:
                response = {
                    "ok": False,
                    "error": "ProtocolError",
                    "message": f"malformed request line: {exc}",
                }
            else:
                response = dispatch(service, request)
            try:
                self.wfile.write(
                    (json.dumps(response) + "\n").encode("utf-8")
                )
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                return


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class QueryServer:
    """Line-delimited-JSON TCP front-end for a :class:`QueryService`.

    Binds immediately (``port=0`` picks a free port — read
    :attr:`address`); ``start()`` serves on a background thread.
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self._server = _TCPServer((host, port), _Handler)
        self._server.service = service  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address  # type: ignore[return-value]

    def start(self) -> "QueryServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="sj-serve-wire",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()


class QueryClient(InProcessClient):
    """Socket client speaking the NDJSON protocol.

    Inherits the convenience surface (``query``/``explain``/
    ``metrics``/``ping``) from :class:`InProcessClient`; only
    :meth:`request` differs — it crosses the wire.
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._lock = threading.Lock()  # one request/response at a time

    def request(self, req: Dict[str, Any]) -> Dict[str, Any]:
        payload = (json.dumps(req) + "\n").encode("utf-8")
        with self._lock:
            self._sock.sendall(payload)
            line = self._rfile.readline()
        if not line:
            raise WireError("ConnectionClosed", "server closed the stream")
        return json.loads(line.decode("utf-8"))

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()
