"""Data wrappers and unwrappers (paper §4.1, §5.4).

A *data wrapper* parses data stored in some format into a ScrubJay
dataset (rows + schema); an *unwrapper* converts a dataset back into a
storage format for sharing or analysis with other tools. ScrubJay
ships wrappers for common formats — CSV files, SQL tables, and the
wide-column NoSQL store — and tool experts add custom ones by
subclassing :class:`~repro.wrappers.base.DataWrapper`.
"""

from repro.wrappers.base import DataWrapper, Unwrapper, RowsWrapper
from repro.wrappers.csv_io import CSVWrapper, CSVUnwrapper
from repro.wrappers.sql_io import SQLWrapper, SQLUnwrapper
from repro.wrappers.nosql_io import NoSQLWrapper, NoSQLUnwrapper

__all__ = [
    "DataWrapper",
    "Unwrapper",
    "RowsWrapper",
    "CSVWrapper",
    "CSVUnwrapper",
    "SQLWrapper",
    "SQLUnwrapper",
    "NoSQLWrapper",
    "NoSQLUnwrapper",
]
