"""Partition: the unit of parallelism.

An RDD's data is split into partitions; a stage runs one task per
partition. Partitions hold plain Python lists — rows in ScrubJay are
small dicts, and generality over raw throughput is the point of the
common representation (paper §4.1 explicitly trades memory for
generality).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, List


@dataclass
class Partition:
    """An indexed slice of an RDD's data."""

    index: int
    data: List[Any] = field(default_factory=list)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.data)

    def __len__(self) -> int:
        return len(self.data)


def split_into_partitions(data: List[Any], num_partitions: int) -> List[Partition]:
    """Split ``data`` into ``num_partitions`` contiguous, near-equal slices.

    Uses the balanced formula so sizes differ by at most one element,
    matching how Spark's ``parallelize`` slices local collections.
    """
    if num_partitions <= 0:
        raise ValueError(f"num_partitions must be positive, got {num_partitions}")
    n = len(data)
    partitions: List[Partition] = []
    for i in range(num_partitions):
        start = (i * n) // num_partitions
        stop = ((i + 1) * n) // num_partitions
        partitions.append(Partition(index=i, data=list(data[start:stop])))
    return partitions
