#!/usr/bin/env python3
"""A live metrics dashboard: measures, grains, and rollup routing.

The question every facility dashboard asks — "mean and p95 rack
power, per rack, per hour" — phrased *in the query language* instead
of as a hand-written aggregation loop:

1. tail a push feed of 30-second rack power samples;
2. ask the metric query raw: `.measure("power", "mean")
   .measure("power", "p95").per("racks").grain("1h")` — the planner
   records a `RollupDecision` explaining that no rollup could answer;
3. materialize a 15-minute rollup with `session.rollup(...)` and ask
   again: the mean now routes through the rollup's pre-aggregated
   partials (re-aggregated 15m → 1h), while p95 keeps the exact
   percentile by staying on the raw route — decomposability decides,
   not a flag;
4. push another hour of samples: the feed advance refreshes the
   rollup incrementally (delta path, counted), and the routed answer
   matches a from-scratch recomputation group for group.

Run: python examples/dashboard_metrics.py
"""

import math

from repro import Schema, ScrubJaySession
from repro.core.semantics import domain, value
from repro.units.temporal import Timestamp

RACK_POWER_SCHEMA = Schema({
    "rack": domain("racks", "identifier"),
    "time": domain("time", "datetime"),
    "power": value("power", "watts"),
})

N_RACKS = 4
STEP_S = 30.0


def power_rows(start_s: float, hours: float):
    n = int(hours * 3600 / STEP_S)
    base = int(start_s / STEP_S)
    return [
        {"rack": r, "time": Timestamp(start_s + i * STEP_S),
         "power": 1000.0 + 150.0 * r + 40.0 * math.sin(
             (base + i) / 20.0) + (base + i) % 13}
        for r in range(N_RACKS)
        for i in range(n)
    ]


def hourly_query(sj):
    return (sj.query()
            .measure("power", "mean")
            .per("racks")
            .grain("1h")
            .build())


def show(title, answer, limit=4):
    print(f"\n{title}")
    print(f"  {answer.decision}")
    for key, vals in sorted(answer.groups.items())[:limit]:
        rack, bucket = key
        cells = "  ".join(f"{m}={v:8.1f}" for m, v in sorted(vals.items()))
        print(f"  rack {rack}  {bucket}  {cells}")
    if len(answer.groups) > limit:
        print(f"  ... {len(answer.groups) - limit} more groups")


def main() -> None:
    sj = ScrubJaySession()
    feed = (sj.ingest()
            .feed(RACK_POWER_SCHEMA, rows=power_rows(0.0, 3.0))
            .tail("rack_power"))
    print(f"tailing rack_power: {N_RACKS} racks, one sample / "
          f"{STEP_S:.0f}s, 3h backfill")

    # ------------------------------------------------------------------
    # raw route: no rollup registered yet
    # ------------------------------------------------------------------
    mean_and_p95 = (sj.query()
                    .measure("power", "mean")
                    .measure("power", "p95")
                    .per("racks")
                    .grain("1h")
                    .ask())
    show("hourly mean + p95 power per rack (raw route):", mean_and_p95)

    # ------------------------------------------------------------------
    # materialize a 15m rollup; the hourly mean re-aggregates from it
    # ------------------------------------------------------------------
    rollup = sj.rollup(
        "power_15m",
        sj.query().measure("power", "mean").per("racks").grain("15m"),
    )
    print(f"\nmaterialized {rollup.name}: "
          f"{len(rollup.state['power_mean'])} stored 15m partials")

    routed = sj.ask(hourly_query(sj))
    show("hourly mean power per rack (routed):", routed)
    assert routed.decision.route == "rollup", routed.decision

    # p95 is not decomposable: re-aggregating 15m percentile state to
    # 1h would be wrong, so the planner keeps it exact on raw
    p95 = sj.ask(sj.query()
                 .measure("power", "p95").per("racks").grain("1h")
                 .build())
    print(f"\np95 at 1h grain stays exact: {p95.decision}")
    assert p95.decision.route == "raw"

    # ------------------------------------------------------------------
    # the feed advances; the rollup refreshes incrementally
    # ------------------------------------------------------------------
    feed.push(power_rows(3 * 3600.0, 1.0))
    print(f"\npushed one more hour: rollup refreshed "
          f"{rollup.refreshes}x ({rollup.delta_refreshes} on the "
          f"delta path), watermark {feed.watermark} rows")

    fresh = sj.ask(hourly_query(sj))
    truth = ScrubJaySession()
    try:
        truth.register_rows(
            power_rows(0.0, 3.0) + power_rows(3 * 3600.0, 1.0),
            RACK_POWER_SCHEMA, "rack_power",
        )
        want = truth.ask(hourly_query(truth)).groups
    finally:
        truth.close()
    assert set(fresh.groups) == set(want)
    for k in want:
        assert math.isclose(fresh.groups[k]["power_mean"],
                            want[k]["power_mean"], rel_tol=1e-9)
    show("after the advance (routed, matches recomputation):", fresh)

    sj.close()


if __name__ == "__main__":
    main()
