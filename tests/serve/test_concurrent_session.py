"""Thread-safety of the shared mutable session state: catalog
register/drop during in-flight queries, and concurrent dictionary /
registry mutation."""

from __future__ import annotations

import threading

from repro.core.derivation import Derivation, DerivationRegistry
from repro.core.dictionary import default_dictionary
from repro.core.semantics import DOMAIN, VALUE, Schema, SemanticType
from repro.datagen.synthetic import KEYED_RIGHT_SCHEMA, keyed_tables
from repro.errors import ScrubJayError
from repro.serve import QueryService

from tests.serve.conftest import (
    HOT_DOMAINS,
    HOT_VALUES,
    JOIN_DOMAINS,
    JOIN_VALUES,
    make_session,
    row_multiset,
)


def test_register_while_queries_in_flight():
    """A churn thread registers and drops datasets continuously while
    clients query; every query must see a consistent snapshot — either
    a correct answer or (never) a crash/corrupted row set."""
    session = make_session(executor="threads")
    expected_join = row_multiset(
        session.ask(JOIN_DOMAINS, JOIN_VALUES).collect()
    )
    expected_hot = row_multiset(
        session.ask(HOT_DOMAINS, HOT_VALUES).collect()
    )
    stop = threading.Event()
    churn_errors = []

    # The churn datasets live on an unrelated dimension ("racks") so
    # the planner can never substitute them into the test queries —
    # answers must stay identical to the churn-free baseline even
    # though every register/drop invalidates the plan cache.
    churn_schema = Schema({
        "rack": SemanticType(DOMAIN, "racks", "identifier"),
        "hum": SemanticType(
            VALUE, "humidity", "relative humidity percent"
        ),
    })

    def churn():
        extra = [{"rack": r, "hum": 40.0 + r} for r in range(20)]
        i = 0
        try:
            while not stop.is_set():
                name = f"churn-{i % 3}"
                session.register_rows(extra, churn_schema, name=name)
                session.drop(name)
                i += 1
        except Exception as exc:  # pragma: no cover
            churn_errors.append(exc)

    churner = threading.Thread(target=churn)
    churner.start()
    try:
        with QueryService(session, num_workers=4, max_queue=256) as svc:
            query_errors = []
            mismatches = []

            def client(i):
                try:
                    for _ in range(10):
                        got = row_multiset(
                            svc.query(
                                HOT_DOMAINS,
                                HOT_VALUES,
                                tenant=f"t{i}",
                            ).collect()
                        )
                        if got != expected_hot:
                            mismatches.append(got)
                        got = row_multiset(
                            svc.query(
                                JOIN_DOMAINS,
                                JOIN_VALUES,
                                tenant=f"t{i}",
                            ).collect()
                        )
                        if got != expected_join:
                            mismatches.append(got)
                except Exception as exc:
                    query_errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert query_errors == []
            assert mismatches == []
    finally:
        stop.set()
        churner.join(10.0)
        session.close()
    assert churn_errors == []


def test_concurrent_register_same_name_exactly_one_wins():
    session = make_session()
    _, rows = keyed_tables(10, num_keys=4)
    outcomes = []
    barrier = threading.Barrier(8)

    def racer():
        barrier.wait()
        try:
            session.register_rows(rows, KEYED_RIGHT_SCHEMA, name="dup")
            outcomes.append("ok")
        except ScrubJayError:
            outcomes.append("dup")

    threads = [threading.Thread(target=racer) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    session.close()
    assert outcomes.count("ok") == 1
    assert outcomes.count("dup") == 7


def test_concurrent_dictionary_definition_bumps_version_once_per_name():
    d = default_dictionary()
    v0 = d.version
    barrier = threading.Barrier(8)
    errors = []

    def definer(i):
        barrier.wait()
        try:
            # all 8 threads racing over the same 4 new names
            d.define_dimension(
                f"dim-{i % 4}", continuous=True, ordered=True
            )
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [
        threading.Thread(target=definer, args=(i,)) for i in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    # 4 distinct new dimensions → exactly 4 version bumps, no lost or
    # double-counted updates
    assert d.version == v0 + 4


def test_concurrent_registry_registration():
    registry = DerivationRegistry()
    barrier = threading.Barrier(8)
    errors = []

    def make_cls(i):
        return type(
            f"Deriv{i}",
            (Derivation,),
            {"op_name": f"deriv-{i}", "__module__": __name__},
        )

    classes = [make_cls(i) for i in range(8)]

    def registrar(i):
        barrier.wait()
        try:
            registry.register(classes[i])
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [
        threading.Thread(target=registrar, args=(i,)) for i in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert len(registry.op_names()) == 8
    for i in range(8):
        assert registry.get(f"deriv-{i}") is classes[i]
