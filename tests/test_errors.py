"""One error import surface: repro.errors owns the taxonomy; the old
per-subsystem paths stay importable as deprecated aliases."""

import repro
import repro.errors as errors
import repro.rdd as rdd
import repro.serve as serve


def test_rdd_errors_are_reexports():
    assert rdd.TaskError is errors.TaskError
    assert rdd.TransientTaskError is errors.TransientTaskError
    assert rdd.FatalTaskError is errors.FatalTaskError
    assert rdd.ExecutorError is errors.ExecutorError
    assert rdd.WorkerPoolError is errors.WorkerPoolError
    assert rdd.ShuffleKeyError is errors.ShuffleKeyError


def test_serve_errors_are_reexports():
    assert serve.ServiceError is errors.ServiceError
    assert serve.ServiceOverloadError is errors.ServiceOverloadError
    assert serve.QueryTimeoutError is errors.QueryTimeoutError
    assert serve.QueryCancelledError is errors.QueryCancelledError
    assert serve.ServiceClosedError is errors.ServiceClosedError


def test_top_level_exports():
    assert repro.TaskError is errors.TaskError
    assert repro.QueryTimeoutError is errors.QueryTimeoutError
    assert repro.ServiceOverloadError is errors.ServiceOverloadError
    assert repro.SourceError is errors.SourceError
    assert repro.WrapperError is errors.WrapperError


def test_hierarchy():
    assert issubclass(errors.SourceError, errors.WrapperError)
    assert issubclass(errors.WrapperError, errors.ScrubJayError)
    assert issubclass(errors.TransientTaskError, errors.TaskError)
    assert issubclass(errors.ServiceOverloadError, errors.ServiceError)


def test_errors_all_covers_everything_public():
    public = {
        name
        for name, obj in vars(errors).items()
        if isinstance(obj, type) and issubclass(obj, Exception)
    }
    assert public == set(errors.__all__)
