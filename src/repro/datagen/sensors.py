"""Facility sensor feeds: rack temperature, humidity, and power.

Models the OSIsoft PI infrastructure of §7.1–7.2: every rack carries
six temperature sensors (top/middle/bottom × hot/cold aisle) sampled
instantaneously every two minutes. The hot-aisle reading reflects the
cumulative heat of the workloads running on that rack's nodes at that
instant (queried from the scheduler timeline), so the planted
behavioural signatures — AMG's steadily climbing heat, the phased
rise-and-fall of other applications — appear in the data exactly the
way ScrubJay must recover them.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, List, Optional, Sequence

from repro.datagen.facility import Facility
from repro.datagen.scheduler import JobScheduler
from repro.units.temporal import Timestamp

#: vertical heat distribution: hot air rises, so the top sensor sees
#: more of the rack's heat than the bottom one
LOCATION_WEIGHTS = {"top": 1.25, "middle": 1.0, "bottom": 0.75}

COLD_AISLE_BASE = 18.0  # °C, the machine-room supply air
HOT_AISLE_IDLE_DELTA = 2.5  # °C above cold aisle with idle nodes


class RackSensorSimulator:
    """Generates the facility-monitoring datasets of DAT 1."""

    def __init__(
        self,
        facility: Facility,
        scheduler: JobScheduler,
        seed: int = 23,
    ) -> None:
        self.facility = facility
        self.scheduler = scheduler
        self.seed = seed

    # ------------------------------------------------------------------

    def _rack_heat(self, rack: int, t: float) -> float:
        """Total workload heat (ΔC) produced by the rack at instant t."""
        total = 0.0
        for node in self.facility.nodes_in_rack(rack):
            job = self.scheduler.job_at(node, t)
            if job is not None:
                total += job.workload.heat_at(t - job.start, job.duration)
        return total

    def temperature_rows(
        self,
        start: float,
        duration: float,
        period: float = 120.0,
        racks: Optional[Sequence[int]] = None,
    ) -> List[Dict[str, Any]]:
        """Instantaneous readings from all six sensors of each rack."""
        rng = random.Random(self.seed)
        racks = list(racks) if racks is not None else self.facility.racks()
        rows: List[Dict[str, Any]] = []
        t = start
        while t < start + duration:
            # slow machine-room supply drift shared by every rack
            drift = 0.6 * math.sin(2.0 * math.pi * t / 7200.0)
            for rack in racks:
                heat = self._rack_heat(rack, t)
                for location in Facility.RACK_LOCATIONS:
                    w = LOCATION_WEIGHTS[location]
                    cold = COLD_AISLE_BASE + drift + rng.gauss(0.0, 0.15)
                    hot = (
                        cold
                        + HOT_AISLE_IDLE_DELTA
                        + w * heat
                        + rng.gauss(0.0, 0.25)
                    )
                    stamp = Timestamp(t)
                    rows.append(
                        {
                            "rack": rack,
                            "location": location,
                            "aisle": "cold",
                            "time": stamp,
                            "temp": round(cold, 3),
                        }
                    )
                    rows.append(
                        {
                            "rack": rack,
                            "location": location,
                            "aisle": "hot",
                            "time": stamp,
                            "temp": round(hot, 3),
                        }
                    )
            t += period
        return rows

    def humidity_rows(
        self,
        start: float,
        duration: float,
        period: float = 120.0,
    ) -> List[Dict[str, Any]]:
        """Relative humidity per rack (the PI feed also records it)."""
        rng = random.Random(self.seed + 1)
        rows: List[Dict[str, Any]] = []
        t = start
        while t < start + duration:
            for rack in self.facility.racks():
                base = 38.0 + 4.0 * math.sin(2.0 * math.pi * t / 86400.0)
                rows.append(
                    {
                        "rack": rack,
                        "time": Timestamp(t),
                        "humidity": round(base + rng.gauss(0.0, 1.0), 2),
                    }
                )
            t += period
        return rows

    def power_rows(
        self,
        start: float,
        duration: float,
        period: float = 120.0,
    ) -> List[Dict[str, Any]]:
        """Rack power draw: idle floor plus per-job socket power."""
        rng = random.Random(self.seed + 2)
        sockets = self.facility.config.sockets_per_node
        rows: List[Dict[str, Any]] = []
        t = start
        while t < start + duration:
            for rack in self.facility.racks():
                watts = 0.0
                for node in self.facility.nodes_in_rack(rack):
                    job = self.scheduler.job_at(node, t)
                    per_socket = (
                        job.workload.socket_power if job is not None else 35.0
                    )
                    watts += per_socket * sockets
                rows.append(
                    {
                        "rack": rack,
                        "time": Timestamp(t),
                        "power": round(watts + rng.gauss(0.0, 20.0), 1),
                    }
                )
            t += period
        return rows
