"""A SLURM-like scheduler producing job-queue logs.

Simulates FCFS allocation over the facility's nodes: jobs arrive as a
Poisson process, request power-of-two node counts, run for a
workload-dependent duration, and land on the earliest-available nodes.
Specific runs can be *pinned* (exact nodes, exact start) — that is how
the case studies plant AMG on rack 17 (DAT 1) and the alternating
mg.C/prime95 runs (DAT 2).

Outputs:

- the **job-queue log** rows, shaped like ``sacct`` output: job id,
  application name, user, node list, elapsed seconds, and the
  time span — the paper's first data source;
- a **timeline** the sensor and counter simulators query to know which
  workload a node was running at a given instant (the behavioural
  ground truth ScrubJay's derivations must recover).
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.datagen.facility import Facility
from repro.datagen.workloads import WORKLOADS, WorkloadModel
from repro.units.temporal import TimeSpan


@dataclass(frozen=True)
class Job:
    """One scheduled run."""

    job_id: int
    workload: WorkloadModel
    user: str
    nodes: Tuple[int, ...]
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def active_at(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclass(frozen=True)
class ScheduleConfig:
    """Knobs for the random workload mix."""

    start: float = 0.0
    duration: float = 4 * 3600.0
    mean_interarrival: float = 240.0
    mean_job_duration: float = 1800.0
    min_job_duration: float = 300.0
    workload_names: Tuple[str, ...] = (
        "mg.C", "prime95", "LULESH", "Kripke", "Qbox",
    )
    node_counts: Tuple[int, ...] = (1, 2, 4, 8)
    users: Tuple[str, ...] = ("alice", "bob", "carol", "dave")
    seed: int = 11


class JobScheduler:
    """Generates a job mix over a facility and answers point queries."""

    def __init__(
        self, facility: Facility, config: ScheduleConfig = ScheduleConfig()
    ) -> None:
        self.facility = facility
        self.config = config
        self.jobs: List[Job] = []
        self._node_index: Dict[int, List[Tuple[float, float, Job]]] = {}

    # ------------------------------------------------------------------
    # schedule construction
    # ------------------------------------------------------------------

    def pin(
        self,
        workload: str,
        nodes: Sequence[int],
        start: float,
        duration: float,
        user: str = "dat",
    ) -> Job:
        """Force a specific run (used to plant case-study signals)."""
        job = Job(
            job_id=1000 + len(self.jobs),
            workload=WORKLOADS[workload],
            user=user,
            nodes=tuple(nodes),
            start=start,
            end=start + duration,
        )
        self.jobs.append(job)
        return job

    def schedule_random(self, exclude_nodes: Sequence[int] = ()) -> List[Job]:
        """Fill the facility with a random FCFS workload mix.

        ``exclude_nodes`` are never allocated (reserved for pinned
        runs). Returns the newly scheduled jobs.
        """
        cfg = self.config
        rng = random.Random(cfg.seed)
        pool = [
            n for n in self.facility.nodes() if n not in set(exclude_nodes)
        ]
        free_at: Dict[int, float] = {n: cfg.start for n in pool}
        new_jobs: List[Job] = []
        t = cfg.start
        job_id = 1 + len(self.jobs)
        while True:
            t += rng.expovariate(1.0 / cfg.mean_interarrival)
            if t >= cfg.start + cfg.duration:
                break
            want = min(rng.choice(cfg.node_counts), len(pool))
            if want == 0:
                break
            # earliest-available nodes, FCFS without backfill
            chosen = sorted(pool, key=lambda n: (free_at[n], n))[:want]
            start = max(t, max(free_at[n] for n in chosen))
            duration = max(
                cfg.min_job_duration,
                rng.expovariate(1.0 / cfg.mean_job_duration),
            )
            end = min(start + duration, cfg.start + cfg.duration)
            if end <= start:
                continue
            job = Job(
                job_id=job_id,
                workload=WORKLOADS[rng.choice(list(cfg.workload_names))],
                user=rng.choice(cfg.users),
                nodes=tuple(chosen),
                start=start,
                end=end,
            )
            job_id += 1
            for n in chosen:
                free_at[n] = end
            new_jobs.append(job)
        self.jobs.extend(new_jobs)
        return new_jobs

    # ------------------------------------------------------------------
    # timeline queries
    # ------------------------------------------------------------------

    def _build_index(self) -> None:
        self._node_index = {}
        for job in self.jobs:
            for n in job.nodes:
                self._node_index.setdefault(n, []).append(
                    (job.start, job.end, job)
                )
        for entries in self._node_index.values():
            entries.sort(key=lambda e: e[0])

    def job_at(self, node: int, t: float) -> Optional[Job]:
        """The job running on ``node`` at instant ``t`` (None = idle)."""
        if not self._node_index:
            self._build_index()
        entries = self._node_index.get(node)
        if not entries:
            return None
        starts = [e[0] for e in entries]
        i = bisect.bisect_right(starts, t) - 1
        if i >= 0 and entries[i][0] <= t < entries[i][1]:
            return entries[i][2]
        return None

    # ------------------------------------------------------------------
    # the job-queue log dataset
    # ------------------------------------------------------------------

    def job_log_rows(self) -> List[Dict[str, Any]]:
        """sacct-like rows for every scheduled job."""
        return [
            {
                "job_id": job.job_id,
                "job_name": job.workload.name,
                "user": job.user,
                "nodelist": list(job.nodes),
                "num_nodes": len(job.nodes),
                "elapsed": job.duration,
                "timespan": TimeSpan(job.start, job.end),
            }
            for job in sorted(self.jobs, key=lambda j: j.start)
        ]
