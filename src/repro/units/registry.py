"""Dimensions, units, and the conversion registry.

ScrubJay constrains every data operation by the *dimension* and *units*
of the fields involved (paper §4.2): 10 °C is less than 20 °C, but node
10 is not "less than" node 20, and neither compares to a temperature.
This module encodes those rules:

- a :class:`Dimension` is flagged ``continuous``/``discrete`` and
  ``ordered``/``unordered``; interpolation is only valid on continuous
  ordered dimensions, exact matching on unordered ones;
- a :class:`Unit` carries a representational ``kind`` and, for
  quantity units, a linear map to its dimension's base unit so
  Celsius ↔ Fahrenheit or seconds ↔ minutes conversions are checked
  and automatic;
- composed units — rates (``X per Y``) and lists (``list<X>``) — are
  parsed on demand from their names, so derived units like
  "instructions per second" need no pre-registration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import UnitError

#: Representational kinds a unit may have.
KINDS = (
    "quantity",  # convertible numeric measurement (Celsius, seconds, watts)
    "count",  # discrete event count (instructions, packets)
    "identifier",  # opaque discrete identity (node id, cpu id)
    "label",  # categorical text (application name, aisle)
    "datetime",  # a Timestamp
    "timespan",  # a TimeSpan
    "list",  # list of an element unit
    "rate",  # numerator unit per denominator unit
)


@dataclass(frozen=True)
class Dimension:
    """An aspect of the data: physical (time, temperature) or
    conceptual (the identity of a compute node)."""

    name: str
    continuous: bool
    ordered: bool
    description: str = ""

    @property
    def interpolatable(self) -> bool:
        """May values along this dimension be interpolated?"""
        return self.continuous and self.ordered

    def to_json_dict(self) -> dict:
        return {
            "name": self.name,
            "continuous": self.continuous,
            "ordered": self.ordered,
        }


@dataclass(frozen=True)
class Unit:
    """A named unit, optionally anchored to a dimension.

    ``dimension=None`` marks a *generic* unit (identifier, label,
    list<identifier>) that may annotate a field of any dimension; the
    (dimension, unit) pair in the field's semantics supplies the
    missing anchor. Quantity units convert to their dimension's base
    via ``base = value * scale + offset``.
    """

    name: str
    kind: str
    dimension: Optional[str] = None
    scale: float = 1.0
    offset: float = 0.0
    element: Optional[str] = None  # list units: element unit name
    numerator: Optional[str] = None  # rate units
    denominator: Optional[str] = None  # rate units

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise UnitError(f"unknown unit kind {self.kind!r} for {self.name!r}")

    def to_json_dict(self) -> dict:
        return {"name": self.name, "kind": self.kind, "dimension": self.dimension}


class UnitRegistry:
    """Registry of dimensions and units with conversion support."""

    def __init__(self) -> None:
        self._dimensions: Dict[str, Dimension] = {}
        self._units: Dict[str, Unit] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def register_dimension(self, dim: Dimension) -> Dimension:
        existing = self._dimensions.get(dim.name)
        if existing is not None:
            if existing != dim:
                raise UnitError(
                    f"dimension {dim.name!r} already registered with "
                    f"different properties"
                )
            return existing
        self._dimensions[dim.name] = dim
        return dim

    def register_unit(self, unit: Unit) -> Unit:
        existing = self._units.get(unit.name)
        if existing is not None:
            if existing != unit:
                raise UnitError(
                    f"unit {unit.name!r} already registered with a "
                    f"different definition"
                )
            return existing
        if unit.dimension is not None and unit.dimension not in self._dimensions:
            raise UnitError(
                f"unit {unit.name!r} references unknown dimension "
                f"{unit.dimension!r}"
            )
        self._units[unit.name] = unit
        return unit

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def has_dimension(self, name: str) -> bool:
        return name in self._dimensions or self._is_rate_dimension(name)

    def dimension(self, name: str) -> Dimension:
        if name in self._dimensions:
            return self._dimensions[name]
        if self._is_rate_dimension(name):
            # Rate dimensions ("events per time") are continuous and
            # ordered by construction: they are ratios of magnitudes.
            return Dimension(name, continuous=True, ordered=True)
        raise UnitError(f"unknown dimension {name!r}")

    def has_unit(self, name: str) -> bool:
        try:
            self.unit(name)
            return True
        except UnitError:
            return False

    def unit(self, name: str) -> Unit:
        """Resolve a unit by name, parsing composite names on demand.

        Composite syntax:

        - ``list<X>`` — list of element unit X;
        - ``X per Y`` — rate of X over Y (e.g. ``count per second``).
        """
        if name in self._units:
            return self._units[name]
        if name.startswith("list<") and name.endswith(">"):
            inner = self.unit(name[5:-1])
            return Unit(
                name=name,
                kind="list",
                dimension=inner.dimension,
                element=inner.name,
            )
        if " per " in name:
            num_name, _, den_name = name.partition(" per ")
            num = self.unit(num_name.strip())
            den = self.unit(den_name.strip())
            if den.kind != "quantity":
                raise UnitError(
                    f"rate denominator {den.name!r} must be a quantity"
                )
            return Unit(
                name=name,
                kind="rate",
                dimension=self.rate_dimension_name(num, den),
                numerator=num.name,
                denominator=den.name,
            )
        # Accept natural singular forms inside composites, so
        # "instructions per second" resolves via the "seconds" unit.
        if name + "s" in self._units:
            return self._units[name + "s"]
        raise UnitError(f"unknown unit {name!r}")

    def rate_dimension_name(self, num: Unit, den: Unit) -> Optional[str]:
        """Dimension of a composed rate unit.

        Generic numerators (dimension=None, e.g. bare counts) yield a
        generic rate unit so "count per second" may annotate a field on
        any "<events> per time" dimension.
        """
        if num.dimension is None:
            return None
        den_dim = den.dimension or "time"
        return f"{num.dimension} per {den_dim}"

    def _is_rate_dimension(self, name: str) -> bool:
        return " per " in name

    def units(self) -> Dict[str, Unit]:
        return dict(self._units)

    def dimensions(self) -> Dict[str, Dimension]:
        return dict(self._dimensions)

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------

    def convert(self, value: float, from_unit: str, to_unit: str) -> float:
        """Convert ``value`` between two units of the same dimension."""
        if from_unit == to_unit:
            return value
        u1 = self.unit(from_unit)
        u2 = self.unit(to_unit)
        if u1.kind == "rate" and u2.kind == "rate":
            return self._convert_rate(value, u1, u2)
        if u1.kind != "quantity" or u2.kind != "quantity":
            raise UnitError(
                f"cannot convert between non-quantity units "
                f"{from_unit!r} and {to_unit!r}"
            )
        if u1.dimension != u2.dimension or u1.dimension is None:
            raise UnitError(
                f"cannot convert across dimensions: {from_unit!r} is "
                f"{u1.dimension!r}, {to_unit!r} is {u2.dimension!r}"
            )
        base = value * u1.scale + u1.offset
        return (base - u2.offset) / u2.scale

    def _convert_rate(self, value: float, u1: Unit, u2: Unit) -> float:
        n1, d1 = self.unit(u1.numerator), self.unit(u1.denominator)
        n2, d2 = self.unit(u2.numerator), self.unit(u2.denominator)
        if (n1.dimension, d1.dimension) != (n2.dimension, d2.dimension):
            raise UnitError(
                f"cannot convert rate {u1.name!r} to {u2.name!r}: "
                f"component dimensions differ"
            )
        for u in (n1, d1, n2, d2):
            if u.offset != 0.0:
                raise UnitError(
                    f"rate conversion undefined for offset unit {u.name!r}"
                )
        num_scale = (n1.scale if n1.kind == "quantity" else 1.0) / (
            n2.scale if n2.kind == "quantity" else 1.0
        )
        den_scale = d1.scale / d2.scale
        return value * num_scale / den_scale


def default_registry() -> UnitRegistry:
    """The registry shipped with ScrubJay's default semantic dictionary.

    Covers the dimensions and units appearing in the paper's two case
    studies: facility sensors (temperature, humidity, power), timing,
    counters, frequencies, and the identity dimensions of the HPC
    ecosystem (nodes, racks, CPUs, jobs, …).
    """
    reg = UnitRegistry()
    dims = [
        Dimension("time", continuous=True, ordered=True),
        Dimension("temperature", continuous=True, ordered=True),
        Dimension("humidity", continuous=True, ordered=True),
        Dimension("power", continuous=True, ordered=True),
        Dimension("energy", continuous=True, ordered=True),
        Dimension("frequency", continuous=True, ordered=True),
        Dimension("heat", continuous=True, ordered=True),
        # CPU frequency split into rated (spec sheet) vs active
        # (derived from APERF/MPERF) so queries can name either
        # unambiguously (paper §7.3).
        Dimension("rated frequency", continuous=True, ordered=True),
        Dimension("active frequency", continuous=True, ordered=True),
        Dimension("fraction", continuous=True, ordered=True),
        Dimension("information", continuous=False, ordered=True),
        Dimension("event count", continuous=False, ordered=True),
        Dimension("compute nodes", continuous=False, ordered=False),
        Dimension("racks", continuous=False, ordered=False),
        Dimension("cpus", continuous=False, ordered=False),
        Dimension("sockets", continuous=False, ordered=False),
        Dimension("memory banks", continuous=False, ordered=False),
        Dimension("jobs", continuous=False, ordered=False),
        Dimension("applications", continuous=False, ordered=False),
        Dimension("users", continuous=False, ordered=False),
        Dimension("rack locations", continuous=False, ordered=False),
        Dimension("aisles", continuous=False, ordered=False),
        Dimension("filesystems", continuous=False, ordered=False),
        Dimension("network links", continuous=False, ordered=False),
    ]
    for d in dims:
        reg.register_dimension(d)

    units = [
        # time
        Unit("seconds", "quantity", "time", scale=1.0),
        Unit("milliseconds", "quantity", "time", scale=1e-3),
        Unit("microseconds", "quantity", "time", scale=1e-6),
        Unit("minutes", "quantity", "time", scale=60.0),
        Unit("hours", "quantity", "time", scale=3600.0),
        Unit("datetime", "datetime", "time"),
        Unit("timespan", "timespan", "time"),
        # temperature (base: Celsius)
        Unit("degrees Celsius", "quantity", "temperature", scale=1.0),
        Unit(
            "degrees Fahrenheit",
            "quantity",
            "temperature",
            scale=5.0 / 9.0,
            offset=-160.0 / 9.0,
        ),
        Unit("kelvin", "quantity", "temperature", scale=1.0, offset=-273.15),
        # heat proxy (aisle temperature differential, paper §7.2)
        Unit("delta degrees Celsius", "quantity", "heat", scale=1.0),
        # humidity / fraction
        Unit("percent", "quantity", "fraction", scale=0.01),
        Unit("ratio", "quantity", "fraction", scale=1.0),
        Unit("relative humidity percent", "quantity", "humidity", scale=1.0),
        # power / energy
        Unit("watts", "quantity", "power", scale=1.0),
        Unit("kilowatts", "quantity", "power", scale=1e3),
        Unit("joules", "quantity", "energy", scale=1.0),
        # frequency
        Unit("hertz", "quantity", "frequency", scale=1.0),
        Unit("megahertz", "quantity", "frequency", scale=1e6),
        Unit("gigahertz", "quantity", "frequency", scale=1e9),
        Unit("rated gigahertz", "quantity", "rated frequency", scale=1.0),
        Unit("active gigahertz", "quantity", "active frequency", scale=1.0),
        # information
        Unit("bytes", "quantity", "information", scale=1.0),
        Unit("kilobytes", "quantity", "information", scale=1e3),
        Unit("megabytes", "quantity", "information", scale=1e6),
        # counts: generic (dimension=None) so a counter field may lie on
        # any event dimension (instructions, APERF events, packets, …).
        # "count" marks a *cumulative* counter (resets arbitrarily; only
        # its rate of change is meaningful — paper §7.3); "cardinal" is
        # a plain magnitude (a job's node count) with no such caveats.
        Unit("count", "count", None),
        Unit("cardinal", "quantity", None),
        # generic representational units
        Unit("identifier", "identifier", None),
        Unit("label", "label", None),
    ]
    for u in units:
        reg.register_unit(u)
    return reg
