"""Deprecation hygiene for the legacy wrapper layer.

Importing ``repro`` (or any wrappers module) must be silent — the
DeprecationWarning belongs at *call* time, on the analyst who actually
constructs a shim, not on every process that merely imports the
package. The subprocess runs with ``-W error::DeprecationWarning`` so
an import-time warning fails loudly.
"""

import subprocess
import sys

import pytest

from repro.core.semantics import Schema, domain, value
from repro.wrappers import RowsWrapper

SCHEMA = Schema({
    "node": domain("compute nodes", "identifier"),
    "temp": value("temperature", "degrees Celsius"),
})

_IMPORTS = (
    "import repro, repro.wrappers, repro.wrappers.base, "
    "repro.wrappers.csv_io, repro.wrappers.sql_io, "
    "repro.wrappers.nosql_io"
)


def test_import_emits_no_deprecation_warning():
    proc = subprocess.run(
        [sys.executable, "-W", "error::DeprecationWarning", "-c",
         _IMPORTS],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr


def test_shim_warns_at_construction_time(dictionary):
    with pytest.warns(DeprecationWarning, match="RowsWrapper"):
        RowsWrapper([{"node": 1, "temp": 20.0}], SCHEMA, dictionary, "t")
