"""Columnar execution benchmark: the fig3-style natural join, twice.

Registers the synthetic keyed tables (samples × per-node lookup, join
output size == left rows), solves the join query once, then executes
the same plan under ``TuningProfile(columnar=True)`` and
``columnar=False``. The columnar run decodes the catalog rows into
:class:`~repro.columnar.ColumnBatch` leaves (persisted, so the decode
is paid once, like a columnar file format pays it at write time) and
probes the vectorized hash join; the row run is the classic
dict-per-row path. Both answers are compared as row multisets — the
speedup only counts if the bytes agree.

Writes ``benchmarks/results/BENCH_columnar.json`` with timings, the
kernel decisions the columnar run recorded, and the equality verdict.

Usage::

    PYTHONPATH=src python benchmarks/bench_columnar.py          # full
    PYTHONPATH=src python benchmarks/bench_columnar.py --smoke  # CI

The full run enforces the >= 5x acceptance bar; ``--smoke`` shrinks
the tables and gates at >= 2x. Either exits non-zero on a miss or on
answers that differ.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results"
)
JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_columnar.json")

# allow `python benchmarks/bench_columnar.py` without PYTHONPATH
_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro import ScrubJaySession, TuningProfile  # noqa: E402
from repro.datagen.synthetic import (  # noqa: E402
    KEYED_LEFT_SCHEMA,
    KEYED_RIGHT_SCHEMA,
    keyed_tables,
)

FULL_ROWS = 200_000
SMOKE_ROWS = 30_000
NUM_KEYS = 1024
REPEATS = 5


def row_multiset(rows: Sequence[Dict[str, Any]]) -> List[Any]:
    return sorted(
        tuple(sorted((k, repr(v)) for k, v in row.items())) for row in rows
    )


def run_mode(
    columnar: bool,
    left: List[Dict[str, Any]],
    right: List[Dict[str, Any]],
) -> Dict[str, Any]:
    """Time REPEATS executions of the solved join plan in one mode."""
    sj = ScrubJaySession(TuningProfile(columnar=columnar))
    try:
        sj.register_rows(left, KEYED_LEFT_SCHEMA, "samples")
        sj.register_rows(right, KEYED_RIGHT_SCHEMA, "lookup")
        plan = sj.plan(
            sj.query()
            .across("compute nodes", "jobs")
            .value("power")
            .value("temperature")
            .build()
        )
        # warmup: pays one-time costs (columnar leaf decode) outside
        # the timed region, exactly once per mode
        count = sj.execute(plan).count()
        t0 = time.perf_counter()
        for _ in range(REPEATS):
            count = sj.execute(plan).count()
        elapsed = (time.perf_counter() - t0) / REPEATS
        # identity check material, untimed
        rows = sj.execute(plan).collect()
        return {
            "mode": "columnar" if columnar else "row",
            "seconds": round(elapsed, 5),
            "result_rows": count,
            "kernels": [
                {"op": k.op, "choice": k.choice, "reason": k.reason}
                for k in sj.ctx.report.kernels()
            ],
            "rows": rows,
        }
    finally:
        sj.close()


def run_all(smoke: bool) -> Dict[str, Any]:
    num_rows = SMOKE_ROWS if smoke else FULL_ROWS
    left, right = keyed_tables(num_rows, num_keys=NUM_KEYS)
    columnar = run_mode(True, left, right)
    row = run_mode(False, left, right)
    identical = row_multiset(columnar.pop("rows")) == row_multiset(
        row.pop("rows")
    )
    speedup = (
        row["seconds"] / columnar["seconds"]
        if columnar["seconds"]
        else float("inf")
    )
    return {
        "benchmark": "columnar-natural-join",
        "smoke": smoke,
        "left_rows": num_rows,
        "right_rows": NUM_KEYS,
        "repeats": REPEATS,
        "columnar": columnar,
        "row": row,
        "speedup": round(speedup, 2),
        "results_identical": identical,
    }


def check(payload: Dict[str, Any]) -> List[str]:
    bar = 2.0 if payload["smoke"] else 5.0
    failures: List[str] = []
    if not payload["results_identical"]:
        failures.append("columnar and row answers differ")
    if payload["columnar"]["result_rows"] != payload["left_rows"]:
        failures.append(
            f"join produced {payload['columnar']['result_rows']} rows, "
            f"expected {payload['left_rows']}"
        )
    batch_ops = {
        k["op"]
        for k in payload["columnar"]["kernels"]
        if k["choice"] == "batch"
    }
    if "natural_join" not in batch_ops:
        failures.append("columnar run never chose the batch join kernel")
    if payload["row"]["kernels"]:
        failures.append("row run recorded kernel decisions")
    if payload["speedup"] < bar:
        failures.append(
            f"speedup {payload['speedup']}x below the {bar}x bar"
        )
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Columnar vs row execution benchmark"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small tables + relaxed 2x gate (CI mode)",
    )
    args = parser.parse_args(argv)

    payload = run_all(args.smoke)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(JSON_PATH, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2)
    print(json.dumps(payload, indent=2))
    print(f"wrote {JSON_PATH}")

    failures = check(payload)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
