"""Stable hashing and timers."""

import time

from hypothesis import given, strategies as st

from repro.util import Timer, content_hash, stable_json


def test_stable_json_sorts_keys():
    assert stable_json({"b": 1, "a": 2}) == stable_json({"a": 2, "b": 1})


def test_stable_json_nested_structures():
    s = stable_json({"x": [1, {"y": (2, 3)}], "z": {1, 2}})
    assert "x" in s and "y" in s


def test_stable_json_uses_to_json_dict():
    class Thing:
        def to_json_dict(self):
            return {"kind": "thing"}

    assert '"kind":"thing"' in stable_json(Thing())


def test_content_hash_stable_and_sensitive():
    a = content_hash({"op": "join", "window": 120.0})
    b = content_hash({"window": 120.0, "op": "join"})
    c = content_hash({"op": "join", "window": 60.0})
    assert a == b
    assert a != c
    assert len(a) == 64  # sha256 hex


@given(st.dictionaries(st.text(max_size=8),
                       st.integers() | st.text(max_size=8) | st.none(),
                       max_size=8))
def test_content_hash_deterministic(d):
    assert content_hash(d) == content_hash(d)


def test_timestamp_objects_hash_by_content():
    from repro.units.temporal import TimeSpan, Timestamp

    assert content_hash(Timestamp(5.0)) == content_hash(Timestamp(5.0))
    assert content_hash(TimeSpan(0, 5)) != content_hash(TimeSpan(0, 6))


def test_timer_measures_elapsed():
    with Timer() as t:
        time.sleep(0.02)
    assert 0.015 < t.elapsed < 0.5
