"""Exporter tests: JSON tree, chrome://tracing events, Prometheus text,
and the EXPLAIN ANALYZE renderer."""

from __future__ import annotations

import json

from repro.obs import (
    MetricsRegistry,
    Span,
    Tracer,
    to_chrome_trace,
    to_json_tree,
    to_prometheus,
)
from repro.obs.export import chrome_trace_json, render_analyze


def _sample_tree() -> Span:
    tr = Tracer()
    with tr.span("query", kind="query", tenant="default") as root:
        with tr.span("solve", kind="solve") as solve:
            solve.add("candidates_explored", 12)
        with tr.span("stage:map", kind="stage") as stage:
            stage.add("tasks", 2)
            t = stage.child("task:map[0]", kind="task",
                            attrs={"worker": 4321, "index": 0})
            t.start, t.end = stage.start, stage.start + 0.001
            t.add("rows_out", 10)
    return root


def test_json_tree_is_dumpable():
    root = _sample_tree()
    blob = json.dumps(to_json_tree(root))
    back = json.loads(blob)
    assert back["name"] == "query"
    assert back["children"][0]["name"] == "solve"


def test_chrome_trace_structure():
    root = _sample_tree()
    trace = json.loads(chrome_trace_json(root))
    events = trace["traceEvents"]
    assert trace["displayTimeUnit"] == "ms"
    assert {e["name"] for e in events} == {
        "query", "solve", "stage:map", "task:map[0]"
    }
    for e in events:
        assert e["ph"] == "X"
        assert isinstance(e["ts"], int)
        assert isinstance(e["dur"], int) and e["dur"] >= 0
        assert isinstance(e["pid"], int)
        assert isinstance(e["tid"], int)
    by_name = {e["name"]: e for e in events}
    # worker attr maps the task onto its own thread lane
    assert by_name["task:map[0]"]["tid"] == 4321 + 2
    assert by_name["query"]["tid"] == 1
    assert by_name["query"]["args"]["attrs"]["tenant"] == "default"
    assert by_name["solve"]["args"]["counters"] == {
        "candidates_explored": 12
    }


def test_chrome_trace_accepts_many_roots():
    roots = [_sample_tree(), _sample_tree()]
    trace = to_chrome_trace(roots)
    assert len(trace["traceEvents"]) == 8


def test_chrome_trace_filters_non_primitive_attrs():
    s = Span("x", kind="query")
    s.set("ok", "yes")
    s.set("bad", object())
    s.end = s.start
    args = to_chrome_trace(s)["traceEvents"][0]["args"]
    assert args["attrs"] == {"ok": "yes"}


def test_prometheus_text_format():
    m = MetricsRegistry()
    m.inc("rdd.stages", 3, labels={"origin": "map"})
    m.set_gauge("core.cache.entries", 2)
    m.observe("serve.latency_s", 0.25)
    text = to_prometheus(m)
    lines = text.strip().splitlines()
    assert 'rdd_stages{origin="map"} 3' in lines
    assert "core_cache_entries 2" in lines
    assert "serve_latency_s_count 1" in lines
    assert "serve_latency_s_sum 0.25" in lines
    assert text.endswith("\n")


def test_prometheus_empty_registry():
    assert to_prometheus(MetricsRegistry()) == ""


def test_render_analyze_tree():
    root = Span("explain-analyze", kind="query")
    top = root.child("interpolation_join", kind="plan-node",
                     attrs={"label": "interpolation_join(a, b)"})
    top.start, top.end = 0.0, 0.01
    top.add("rows_out", 42)
    top.add("approx_bytes", 2048)
    top.set("cache", "miss")
    leaf = top.child("load", kind="plan-node",
                     attrs={"label": "load(rack_temperatures)"})
    leaf.start, leaf.end = 0.0, 0.002
    leaf.add("rows_out", 7)
    # non-plan-node children (stages) are not part of the rendering
    top.child("stage:map", kind="stage")

    text = render_analyze(root)
    lines = text.splitlines()
    assert lines[0].startswith("interpolation_join(a, b)  [rows=42")
    assert "~bytes=2.0KB" in lines[0]
    assert "cache=miss" in lines[0]
    assert lines[1] == "  load(rack_temperatures)  [rows=7; time=2.0ms]"
    assert "stage:map" not in text
