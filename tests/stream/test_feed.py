"""Feed handles: push feeds, monotonic watermarks, table tailing,
and the feed gauges."""

from __future__ import annotations

import pytest

from repro import ScrubJaySession
from repro.errors import FeedError
from repro.sources import FeedSource
from repro.store import WideColumnStore
from repro.stream import Feed, FeedAdvance

from tests.stream.conftest import FEED_SCHEMA, feed_rows, row_multiset


@pytest.fixture()
def session():
    sj = ScrubJaySession()
    yield sj
    sj.close()


# ----------------------------------------------------------------------
# FeedSource: the in-process push endpoint
# ----------------------------------------------------------------------


def test_feed_source_offsets_are_row_counts():
    src = FeedSource(FEED_SCHEMA, name="live")
    assert src.current_offset() == 0
    assert src.push(feed_rows(0, 3)) == 3
    assert src.push(feed_rows(3, 2)) == 5
    rows, offset = src.append_scan(3, None)
    assert offset == 5
    assert [r["tick"] for r in rows] == [3.0, 4.0]
    # explicit bounds slice exactly
    rows, offset = src.append_scan(1, 4)
    assert offset == 4 and len(rows) == 3


def test_feed_source_bounded_is_frozen():
    src = FeedSource(FEED_SCHEMA, name="live", rows=feed_rows(0, 4))
    snap = src.bounded(4)
    src.push(feed_rows(4, 6))
    frozen = [
        r for i in range(len(snap.partitions()))
        for r in snap.read_partition(i)
    ]
    assert len(frozen) == 4  # later pushes are invisible to the snapshot
    assert src.current_offset() == 10


# ----------------------------------------------------------------------
# Feed: the session-side tailing handle
# ----------------------------------------------------------------------


def test_ingest_feed_tail_returns_live_handle(session):
    feed = (
        session.ingest()
        .feed(FEED_SCHEMA, rows=feed_rows(0, 5))
        .tail("live")
    )
    assert isinstance(feed, Feed)
    assert feed.name == "live"
    # rows present at tail() time are already past the watermark
    assert feed.watermark == 5
    assert session.feed("live") is feed
    assert len(session.dataset("live").collect()) == 5


def test_push_advances_watermark_and_data_version(session):
    feed = session.ingest().feed(FEED_SCHEMA).tail("live")
    assert session.data_version("live") == 0
    adv = feed.push(feed_rows(0, 4))
    assert isinstance(adv, FeedAdvance)
    assert adv.advanced and adv.since == 0 and adv.watermark == 4
    assert adv.rows_added == 4
    assert feed.watermark == 4
    assert session.data_version("live") == 1
    # plain queries see the appended rows
    got = session.ask(["compute nodes", "time"], ["temperature"]).collect()
    assert row_multiset(got) == row_multiset(feed_rows(0, 4))


def test_empty_advance_is_a_noop(session):
    feed = session.ingest().feed(FEED_SCHEMA, rows=feed_rows(0, 3)) \
        .tail("live")
    before = session.data_version("live")
    adv = feed.advance()
    assert not adv.advanced
    assert adv.rows_added == 0
    assert feed.watermark == 3
    assert session.data_version("live") == before


def test_watermark_is_monotonic_across_advances(session):
    feed = session.ingest().feed(FEED_SCHEMA).tail("live")
    marks = [feed.watermark]
    for batch in range(3):
        feed.source.push(feed_rows(batch * 5, 5))
        marks.append(feed.advance().watermark)
    assert marks == sorted(marks) == [0, 5, 10, 15]
    assert feed.rows_ingested == 15
    assert session.data_version("live") == 3


def test_each_row_delivered_by_exactly_one_advance(session):
    feed = session.ingest().feed(FEED_SCHEMA).tail("live")
    seen = []
    for batch in range(4):
        feed.source.push(feed_rows(batch * 3, 3))
        seen.extend(feed.advance().rows)
    assert row_multiset(seen) == row_multiset(feed_rows(0, 12))


def test_push_on_non_push_source_raises(session, tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("node,tick,temp\n1,1.0,20.0\n")
    feed = session.ingest().csv(str(path), FEED_SCHEMA).tail("live")
    with pytest.raises(FeedError) as exc_info:
        feed.push(feed_rows(0, 1))
    assert "push" in str(exc_info.value)


def test_static_source_cannot_be_tailed(session):
    with pytest.raises(FeedError):
        session.ingest().rows(feed_rows(0, 2), FEED_SCHEMA).tail("live")


def test_bounded_source_pins_a_watermark(session):
    feed = session.ingest().feed(FEED_SCHEMA, rows=feed_rows(0, 6)) \
        .tail("live")
    snap = feed.bounded_source()
    feed.push(feed_rows(6, 6))
    frozen = [
        r for i in range(len(snap.partitions()))
        for r in snap.read_partition(i)
    ]
    assert row_multiset(frozen) == row_multiset(feed_rows(0, 6))


# ----------------------------------------------------------------------
# TableSource tailing: sealed segments are the offsets
# ----------------------------------------------------------------------


def test_table_source_tail_sees_sealed_appends(session, tmp_path):
    store = WideColumnStore(str(tmp_path / "store"))
    table = store.create_table("perf", "temps", ["node"], ["tick"])
    table.insert_many(feed_rows(0, 4))
    table.flush()
    feed = (
        session.ingest()
        .table(store, "perf", "temps", FEED_SCHEMA)
        .tail("live")
    )
    assert feed.watermark == 1  # one sealed segment
    # memtable rows are not feed-visible until sealed
    table.insert_many(feed_rows(4, 2))
    assert not feed.advance().advanced
    out = table.append_rows(feed_rows(6, 3))
    assert out["segment_count"] == 2
    adv = feed.advance()
    assert adv.advanced and adv.watermark == 2
    # the memtable rows sealed along with the append ride the same batch
    assert row_multiset(adv.rows) == row_multiset(feed_rows(4, 5))
    assert len(session.dataset("live").collect()) == 9


# ----------------------------------------------------------------------
# gauges
# ----------------------------------------------------------------------


def test_feed_gauges_track_watermark_and_lag(session):
    feed = session.ingest().feed(FEED_SCHEMA).tail("live")
    reg = session.ctx.metrics
    labels = {"feed": "live"}
    assert reg.gauge("feed.watermark", labels) == 0
    feed.source.push(feed_rows(0, 7))
    assert feed.lag_rows() == 7
    assert reg.gauge("feed.lag_rows", labels) == 7
    feed.advance()
    assert reg.gauge("feed.watermark", labels) == 7
    assert reg.gauge("feed.lag_rows", labels) == 0
