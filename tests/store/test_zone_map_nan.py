"""Zone-map NaN regression: a NaN must never poison min/max bounds.

Pre-fix, ``build_zone_map`` folded NaN into the running min/max — every
comparison with NaN is False, so the bounds froze at whatever came
before it (or stayed None), and segment pruning could skip a segment
whose NaN rows the row-level filter keeps (NaN passes both bound checks
of a RangeTerm). These tests fail on that code.
"""

import math

import pytest

from repro.sources.predicate import ColumnPredicate
from repro.store import WideColumnStore
from repro.store.wide_column import build_zone_map

NAN = float("nan")


@pytest.fixture()
def store(tmp_path):
    return WideColumnStore(str(tmp_path / "store"))


def test_nan_excluded_from_bounds_and_counted():
    zone = build_zone_map(
        [
            {"node": 1, "v": 1.0},
            {"node": 1, "v": NAN},
            {"node": 1, "v": 3.0},
        ],
        [(1,)],
    )
    stats = zone["columns"]["v"]
    assert stats["min"] == 1.0
    assert stats["max"] == 3.0
    assert stats["nans"] == 1
    assert stats["nulls"] == 0


def test_leading_nan_does_not_freeze_bounds():
    # pre-fix, NaN-first left min/max stuck at None forever
    zone = build_zone_map([{"v": NAN}, {"v": 5.0}], [(1,)])
    stats = zone["columns"]["v"]
    assert stats["min"] == 5.0
    assert stats["max"] == 5.0
    assert stats["nans"] == 1


def test_infinities_counted_not_folded():
    zone = build_zone_map(
        [{"v": float("inf")}, {"v": 2.0}, {"v": float("-inf")}], [(1,)]
    )
    stats = zone["columns"]["v"]
    assert stats["min"] == 2.0
    assert stats["max"] == 2.0
    assert stats["nans"] == 2


def test_pushed_scan_keeps_nan_rows(store):
    """The end-to-end soundness property: a pushed range scan must
    return exactly the rows scan-then-filter returns, NaN included."""
    t = store.create_table("perf", "flops", ["node"])
    t.insert_many(
        [
            {"node": 1, "v": 1.0},
            {"node": 1, "v": NAN},
            {"node": 1, "v": 2.0},
        ]
    )
    t.flush()
    # bounds say v <= 2.0, but the NaN row passes the row-level range
    predicate = ColumnPredicate.range("v", low=100.0)
    pushed, stats = t.scan_stats(predicate=predicate)
    reference = [r for r in t.scan() if predicate.matches(r)]
    assert len(pushed) == 1 and math.isnan(pushed[0]["v"])
    # NaN != NaN, so compare by repr
    assert [repr(r) for r in pushed] == [repr(r) for r in reference]
    assert stats["segments_skipped"] == 0


def test_nan_free_segments_still_prune(store):
    """The fix must not cost pruning where there is no NaN."""
    t = store.create_table("perf", "flops", ["node"])
    t.insert_many([{"node": 1, "v": float(i)} for i in range(10)])
    t.flush()
    rows, stats = t.scan_stats(
        predicate=ColumnPredicate.range("v", low=100.0)
    )
    assert rows == []
    assert stats["segments_skipped"] == 1
