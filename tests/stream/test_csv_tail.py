"""Tailing a CSV file under a concurrent writer: torn lines, quoted
records straddling the tail offset, truncation, and a live
writer/reader loop. The committed-record contract is what keeps the
exactly-once-per-watermark guarantee honest for files."""

from __future__ import annotations

import threading
import time

import pytest

from repro import ScrubJaySession, default_dictionary
from repro.core.semantics import Schema, domain, value
from repro.errors import FeedRewoundError
from repro.sources import CSVSource

from tests.stream.conftest import FEED_SCHEMA, feed_rows, row_multiset

QUOTED_SCHEMA = Schema({
    "node": domain("compute nodes", "identifier"),
    "name": value("applications", "label"),
    "temp": value("temperature", "degrees Celsius"),
})


def _source(path, schema=FEED_SCHEMA):
    return CSVSource(str(path), schema, default_dictionary())


def _append(path, text):
    with open(path, "a", newline="") as f:
        f.write(text)


# ----------------------------------------------------------------------
# torn final lines
# ----------------------------------------------------------------------


def test_torn_final_line_is_left_for_the_next_scan(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("node,tick,temp\n1,1.0,20.0\n2,2.0,21.0\n")
    src = _source(path)
    rows, offset = src.append_scan()
    assert len(rows) == 2

    # a writer mid-append: no trailing newline yet
    _append(path, "3,3.")
    rows, torn_offset = src.append_scan(offset)
    assert rows == []
    assert torn_offset == offset  # the offset stops before the torn tail

    # the write completes; the record is delivered exactly once
    _append(path, "0,22.0\n")
    rows, done = src.append_scan(torn_offset)
    assert len(rows) == 1
    assert rows[0]["tick"] == 3.0 and rows[0]["temp"] == 22.0
    assert done > torn_offset
    # and never again
    assert src.append_scan(done)[0] == []


def test_missing_final_newline_never_splits_a_record(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("node,tick,temp\n")
    src = _source(path)
    offset = src.current_offset()
    # the whole first record arrives in two writes
    _append(path, "7,1.0,")
    assert src.append_scan(offset) == ([], offset)
    _append(path, "25.0\n")
    rows, offset = src.append_scan(offset)
    assert rows == [{"node": 7, "tick": 1.0, "temp": 25.0}]


# ----------------------------------------------------------------------
# quoted records straddling the tail offset
# ----------------------------------------------------------------------


def test_open_quote_holds_the_watermark(tmp_path):
    path = tmp_path / "q.csv"
    path.write_text('node,name,temp\n1,app0,20.0\n')
    src = _source(path, QUOTED_SCHEMA)
    rows, offset = src.append_scan()
    assert len(rows) == 1

    # first physical line of a quoted record lands, newline included,
    # but the closing quote has not: not committed
    _append(path, '2,"multi\n')
    rows, held = src.append_scan(offset)
    assert rows == [] and held == offset

    # the rest lands: one row, embedded newline intact, delivered once
    _append(path, 'line",21.0\n3,app3,22.0\n')
    rows, done = src.append_scan(held)
    assert [r["node"] for r in rows] == [2, 3]
    assert rows[0]["name"] == "multi\nline"
    assert src.append_scan(done)[0] == []


def test_bounded_snapshot_respects_committed_boundary(tmp_path):
    path = tmp_path / "q.csv"
    path.write_text('node,name,temp\n1,app0,20.0\n2,app1,21.0\n')
    src = _source(path, QUOTED_SCHEMA)
    _rows, offset = src.append_scan()
    _append(path, '3,"open\n')  # torn quoted tail past the boundary
    snap = src.bounded(offset)
    got = [
        r for i in range(snap.num_partitions())
        for r in snap.read_partition(i)
    ]
    assert [r["node"] for r in got] == [1, 2]


# ----------------------------------------------------------------------
# truncation
# ----------------------------------------------------------------------


def test_truncated_file_raises_feed_rewound(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text(
        "node,tick,temp\n1,1.0,20.0\n2,2.0,21.0\n3,3.0,22.0\n"
    )
    src = _source(path)
    _rows, offset = src.append_scan()
    # a log rotation / rewrite shrinks the file under the tailer
    with open(path, "w") as f:
        f.write("node,tick,temp\n1,1.0,20.0\n")
    with pytest.raises(FeedRewoundError):
        src.append_scan(offset)


def test_feed_advance_surfaces_rewound_error(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("node,tick,temp\n1,1.0,20.0\n2,2.0,21.0\n")
    sj = ScrubJaySession()
    try:
        feed = sj.ingest().csv(str(path), FEED_SCHEMA).tail("live")
        assert feed.watermark > 0
        with open(path, "w") as f:
            f.write("node,tick,temp\n")
        with pytest.raises(FeedRewoundError):
            feed.advance()
    finally:
        sj.close()


# ----------------------------------------------------------------------
# concurrent writer vs tailing reader
# ----------------------------------------------------------------------


def test_concurrent_writer_loses_and_duplicates_nothing(tmp_path):
    path = tmp_path / "live.csv"
    path.write_text("node,tick,temp\n")
    total, batch = 60, 5
    sj = ScrubJaySession()
    try:
        feed = sj.ingest().csv(str(path), FEED_SCHEMA).tail("live")

        def writer():
            for start in range(0, total, batch):
                lines = "".join(
                    f"{r['node']},{r['tick']},{r['temp']}\n"
                    for r in feed_rows(start, batch)
                )
                # tear every batch in two physical writes
                mid = len(lines) // 2
                _append(path, lines[:mid])
                time.sleep(0.001)
                _append(path, lines[mid:])

        t = threading.Thread(target=writer)
        t.start()
        seen = []
        deadline = time.monotonic() + 30.0
        while len(seen) < total and time.monotonic() < deadline:
            seen.extend(feed.advance().rows)
        t.join()
        seen.extend(feed.advance().rows)
        assert row_multiset(seen) == row_multiset(feed_rows(0, total))
        assert feed.rows_ingested == total
    finally:
        sj.close()
