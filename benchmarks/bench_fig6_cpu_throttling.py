"""Figure 6: CPU frequency throttling vs node power (case study 2).

Runs the full DAT-2 pipeline — PAPI + IPMI counter streams and static
CPU specs, the engine-derived Figure 7 sequence, distributed execution
— and reproduces the paper's observations across the six runs (3×mg.C
then 3×prime95):

- mg.C operates at **full CPU frequency** with a **lower instruction
  rate** and heavy memory traffic;
- prime95 incurs **high instruction rates** and **aggressive CPU
  throttling**, with tight thermal margins.

The recorded series is the per-run window mean of each derived metric
— the quantities the paper plots per run.
"""

from __future__ import annotations

import pytest

from repro import ScrubJaySession, TuningProfile
from repro.datagen import generate_dat2


@pytest.fixture(scope="module")
def dat2():
    return generate_dat2(run_duration=400.0, gap=100.0, papi_period=3.0,
                         ipmi_period=4.0)


@pytest.fixture(scope="module")
def recorder(recorder_factory):
    return recorder_factory("fig6_per_run_metrics", "run", "value")


def _window_mean(rows, field, start, end):
    vals = [r[field] for r in rows
            if field in r and start <= r["time"].epoch < end]
    assert vals, f"no samples for {field} in [{start}, {end})"
    return sum(vals) / len(vals)


def test_fig6_derived_metrics(benchmark, dat2, recorder):
    def run():
        with ScrubJaySession(
            TuningProfile(interpolation_window=8.0)
        ) as sj:
            dat2.register(sj)
            plan = (
                sj.query()
                .across("cpus")
                .values("active frequency", "instructions per time",
                        "memory reads per time", "memory writes per time",
                        "power", "temperature")
                .plan()
            )
            return plan, sj.execute(plan).collect()

    plan, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    runs = sorted(dat2.scheduler.jobs, key=lambda j: j.start)
    rated = dat2.facility.base_frequency(0)

    print(f"\nrated frequency: {rated:.2f} GHz")
    per_run = []
    for i, job in enumerate(runs, 1):
        s, e = job.start + 120.0, job.end  # settled window
        metrics = {
            "freq_ghz": _window_mean(rows, "active_frequency", s, e),
            "instr_per_s": _window_mean(rows, "instructions_rate", s, e),
            "mem_reads_per_s": _window_mean(rows, "mem_reads_rate", s, e),
            "power_w": _window_mean(rows, "power", s, e),
            "thermal_margin": _window_mean(rows, "thermal_margin", s, e),
        }
        per_run.append((job.workload.name, metrics))
        for k, v in metrics.items():
            recorder.add(f"run{i}", v, f"{job.workload.name}.{k}")
        print(f"  run {i} {job.workload.name:>8}: "
              f"freq={metrics['freq_ghz']:.2f}GHz "
              f"instr={metrics['instr_per_s'] / 1e9:.2f}G/s "
              f"memR={metrics['mem_reads_per_s'] / 1e6:.0f}M/s "
              f"power={metrics['power_w']:.0f}W "
              f"margin={metrics['thermal_margin']:.1f}C")

    mgc = [m for n, m in per_run if n == "mg.C"]
    p95 = [m for n, m in per_run if n == "prime95"]
    assert len(mgc) == 3 and len(p95) == 3

    for m in mgc:  # full frequency, low instruction rate
        assert m["freq_ghz"] == pytest.approx(rated, rel=0.05)
    for m in p95:  # aggressive throttling, high instruction rate
        assert m["freq_ghz"] < 0.8 * rated
    assert min(m["instr_per_s"] for m in p95) > \
        2 * max(m["instr_per_s"] for m in mgc)
    assert min(m["mem_reads_per_s"] for m in mgc) > \
        3 * max(m["mem_reads_per_s"] for m in p95)
    assert max(m["thermal_margin"] for m in p95) < \
        min(m["thermal_margin"] for m in mgc)
    assert min(m["power_w"] for m in p95) > max(m["power_w"] for m in mgc)

    print("\nderivation sequence:\n" + plan.describe())


def test_fig6_runs_repeatable(benchmark, dat2):
    """The three runs of each workload behave alike (the paper plots
    three near-identical repetitions per workload)."""
    def collect_freqs():
        with ScrubJaySession(
            TuningProfile(interpolation_window=8.0)
        ) as sj:
            dat2.register(sj)
            rows = sj.ask(domains=["cpus"],
                          values=["active frequency"]).collect()
        return rows

    rows = benchmark.pedantic(collect_freqs, rounds=1, iterations=1)
    runs = sorted(dat2.scheduler.jobs, key=lambda j: j.start)
    for name in ("mg.C", "prime95"):
        means = []
        for job in runs:
            if job.workload.name != name:
                continue
            means.append(_window_mean(
                rows, "active_frequency", job.start + 120.0, job.end
            ))
        spread = max(means) - min(means)
        assert spread < 0.1, f"{name} runs diverge: {means}"
