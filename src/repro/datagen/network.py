"""Network and parallel-filesystem substrates (paper intro + conclusion).

The paper's introduction motivates exactly this data: "high network
counter values may indicate a congested network due to a sudden
increase in nodes contacting a parallel filesystem server. This
increase may be due to multiple applications entering their checkpoint
phases simultaneously." Its conclusion names relating application
behaviour to network utilization as the next use of ScrubJay. This
module provides the substrate for that third analysis:

- a **fat-tree-ish topology**: every node has an uplink to its rack's
  leaf switch; every leaf switch has an uplink into the core. The
  static *uplink table* (node ↔ link) plays the same role the
  node/rack layout plays in case study 1;
- **link counters**: cumulative bytes/packets per link on an LDMS-like
  cadence, driven by the workloads running on the attached nodes —
  including periodic checkpoint bursts;
- **filesystem servers**: a static node→server assignment table and
  per-server cumulative read/write operation counters plus an
  instantaneous pending-operation gauge that spikes when several
  checkpointing applications gang up on one server.

``generate_dat3`` bundles it all with schemas, mirroring the DAT-1/2
builders.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.semantics import DOMAIN, VALUE, Schema, SemanticType
from repro.datagen.facility import Facility, FacilityConfig
from repro.datagen.scheduler import JobScheduler, ScheduleConfig
from repro.datagen.workloads import IDLE
from repro.units.temporal import Timestamp

# ----------------------------------------------------------------------
# behavioural parameters per workload (network / filesystem intensity)
# ----------------------------------------------------------------------

#: steady-state network bytes/s a node of each workload pushes, plus
#: checkpoint behaviour (period, burst duration, burst bytes/s and
#: filesystem write ops/s). IDLE-like defaults for unknown names.
NETWORK_PROFILES: Dict[str, Dict[str, float]] = {
    "AMG": {"bytes_rate": 4.0e8, "ckpt_period": 600.0,
            "ckpt_duration": 45.0, "ckpt_bytes_rate": 1.8e9,
            "fs_write_rate": 4000.0, "fs_read_rate": 300.0},
    "mg.C": {"bytes_rate": 6.0e8, "ckpt_period": 0.0,
             "ckpt_duration": 0.0, "ckpt_bytes_rate": 0.0,
             "fs_write_rate": 150.0, "fs_read_rate": 80.0},
    "prime95": {"bytes_rate": 2.0e6, "ckpt_period": 0.0,
                "ckpt_duration": 0.0, "ckpt_bytes_rate": 0.0,
                "fs_write_rate": 5.0, "fs_read_rate": 5.0},
    "LULESH": {"bytes_rate": 5.5e8, "ckpt_period": 900.0,
               "ckpt_duration": 30.0, "ckpt_bytes_rate": 1.2e9,
               "fs_write_rate": 2500.0, "fs_read_rate": 200.0},
    "Kripke": {"bytes_rate": 7.0e8, "ckpt_period": 1200.0,
               "ckpt_duration": 40.0, "ckpt_bytes_rate": 1.0e9,
               "fs_write_rate": 1800.0, "fs_read_rate": 400.0},
    "Qbox": {"bytes_rate": 3.0e8, "ckpt_period": 800.0,
             "ckpt_duration": 25.0, "ckpt_bytes_rate": 9.0e8,
             "fs_write_rate": 1500.0, "fs_read_rate": 600.0},
}

_IDLE_PROFILE = {"bytes_rate": 1.0e5, "ckpt_period": 0.0,
                 "ckpt_duration": 0.0, "ckpt_bytes_rate": 0.0,
                 "fs_write_rate": 1.0, "fs_read_rate": 1.0}


def _profile(name: str) -> Dict[str, float]:
    return NETWORK_PROFILES.get(name, _IDLE_PROFILE)


def _node_rates(scheduler: JobScheduler, node: int, t: float
                ) -> Tuple[float, float, float]:
    """(network bytes/s, fs reads/s, fs writes/s) for ``node`` at ``t``."""
    job = scheduler.job_at(node, t)
    if job is None:
        p = _IDLE_PROFILE
        return p["bytes_rate"], p["fs_read_rate"], p["fs_write_rate"]
    p = _profile(job.workload.name)
    t_rel = t - job.start
    in_ckpt = (
        p["ckpt_period"] > 0
        and (t_rel % p["ckpt_period"]) < p["ckpt_duration"]
    )
    bytes_rate = p["ckpt_bytes_rate"] if in_ckpt else p["bytes_rate"]
    write_rate = p["fs_write_rate"] * (10.0 if in_ckpt else 1.0)
    return bytes_rate, p["fs_read_rate"], write_rate


class NetworkTopology:
    """Static wiring: node uplinks, leaf switches, core uplinks, and
    filesystem server assignment."""

    def __init__(self, facility: Facility, num_fs_servers: int = 2) -> None:
        if num_fs_servers <= 0:
            raise ValueError("need at least one filesystem server")
        self.facility = facility
        self.num_fs_servers = num_fs_servers

    # link ids: node uplinks are "link-n<id>", leaf-to-core "link-r<rack>"
    def node_uplink(self, node: int) -> str:
        return f"link-n{node}"

    def rack_uplink(self, rack: int) -> str:
        return f"link-r{rack}"

    def links(self) -> List[str]:
        return [self.node_uplink(n) for n in self.facility.nodes()] + [
            self.rack_uplink(r) for r in self.facility.racks()
        ]

    def fs_server_of(self, node: int) -> int:
        """Nodes are striped across filesystem servers."""
        return node % self.num_fs_servers

    # ------------------------------------------------------------------
    # static datasets
    # ------------------------------------------------------------------

    def uplink_rows(self) -> List[Dict[str, Any]]:
        """node ↔ uplink table (plus the rack uplink each node feeds)."""
        out = []
        for n in self.facility.nodes():
            out.append({
                "node": n,
                "link": self.node_uplink(n),
                "rack_link": self.rack_uplink(self.facility.rack_of(n)),
            })
        return out

    def fs_assignment_rows(self) -> List[Dict[str, Any]]:
        return [
            {"node": n, "fs_server": self.fs_server_of(n)}
            for n in self.facility.nodes()
        ]


class NetworkCounterSimulator:
    """Cumulative per-link and per-filesystem-server counter streams."""

    RESET_PROBABILITY = 0.002

    def __init__(
        self,
        topology: NetworkTopology,
        scheduler: JobScheduler,
        seed: int = 41,
    ) -> None:
        self.topology = topology
        self.scheduler = scheduler
        self.seed = seed

    def _link_rate(self, link: str, t: float) -> float:
        """Instantaneous bytes/s crossing ``link`` at ``t``."""
        topo, fac = self.topology, self.topology.facility
        if link.startswith("link-n"):
            node = int(link[len("link-n"):])
            bytes_rate, _r, _w = _node_rates(self.scheduler, node, t)
            return bytes_rate
        rack = int(link[len("link-r"):])
        # a rack uplink carries the share of its nodes' traffic that
        # leaves the rack (roughly half for nearest-neighbour codes)
        total = 0.0
        for node in fac.nodes_in_rack(rack):
            bytes_rate, _r, _w = _node_rates(self.scheduler, node, t)
            total += 0.5 * bytes_rate
        return total

    def link_counter_rows(
        self,
        start: float,
        duration: float,
        period: float = 5.0,
        links: Optional[Sequence[str]] = None,
    ) -> List[Dict[str, Any]]:
        """Cumulative bytes/packets per link (packets ≈ bytes/4 KiB)."""
        rng = random.Random(self.seed)
        links = list(links) if links is not None else self.topology.links()
        rows: List[Dict[str, Any]] = []
        for link in links:
            byte_count = rng.randrange(10**7)
            prev_t: Optional[float] = None
            t = start
            while t < start + duration:
                sample_t = t + rng.uniform(-0.05 * period, 0.05 * period)
                if prev_t is not None:
                    dt = sample_t - prev_t
                    rate = self._link_rate(link, sample_t)
                    byte_count += int(rate * dt * (1 + rng.gauss(0, 0.05)))
                    if rng.random() < self.RESET_PROBABILITY:
                        byte_count = 0
                prev_t = sample_t
                rows.append({
                    "link": link,
                    "time": Timestamp(round(sample_t, 3)),
                    "bytes": byte_count,
                    "packets": byte_count // 4096,
                })
                t += period
        return rows

    def fs_counter_rows(
        self,
        start: float,
        duration: float,
        period: float = 5.0,
    ) -> List[Dict[str, Any]]:
        """Per-server cumulative read/write ops + pending-ops gauge."""
        rng = random.Random(self.seed + 1)
        topo, fac = self.topology, self.topology.facility
        rows: List[Dict[str, Any]] = []
        for server in range(topo.num_fs_servers):
            nodes = [n for n in fac.nodes()
                     if topo.fs_server_of(n) == server]
            reads = rng.randrange(10**6)
            writes = rng.randrange(10**6)
            prev_t: Optional[float] = None
            t = start
            while t < start + duration:
                sample_t = t + rng.uniform(-0.05 * period, 0.05 * period)
                read_rate = write_rate = 0.0
                for node in nodes:
                    _b, r, w = _node_rates(self.scheduler, node, sample_t)
                    read_rate += r
                    write_rate += w
                if prev_t is not None:
                    dt = sample_t - prev_t
                    reads += int(read_rate * dt * (1 + rng.gauss(0, 0.05)))
                    writes += int(write_rate * dt * (1 + rng.gauss(0, 0.05)))
                    if rng.random() < self.RESET_PROBABILITY:
                        reads = writes = 0
                prev_t = sample_t
                # pending ops: queueing delay grows superlinearly with
                # offered write load (the congestion signal)
                pending = (write_rate / 2000.0) ** 1.5 + rng.gauss(0, 0.3)
                rows.append({
                    "fs_server": server,
                    "time": Timestamp(round(sample_t, 3)),
                    "fs_reads": reads,
                    "fs_writes": writes,
                    "pending_ops": round(max(0.0, pending), 3),
                })
                t += period
        return rows


# ----------------------------------------------------------------------
# schemas
# ----------------------------------------------------------------------

NODE_UPLINK_SCHEMA = Schema({
    "node": SemanticType(DOMAIN, "compute nodes", "identifier"),
    "link": SemanticType(DOMAIN, "network links", "identifier"),
    "rack_link": SemanticType(VALUE, "network links", "identifier"),
})

FS_ASSIGNMENT_SCHEMA = Schema({
    "node": SemanticType(DOMAIN, "compute nodes", "identifier"),
    "fs_server": SemanticType(DOMAIN, "filesystems", "identifier"),
})

LINK_COUNTER_SCHEMA = Schema({
    "link": SemanticType(DOMAIN, "network links", "identifier"),
    "time": SemanticType(DOMAIN, "time", "datetime"),
    "bytes": SemanticType(VALUE, "link bytes", "count"),
    "packets": SemanticType(VALUE, "link packets", "count"),
})

FS_COUNTER_SCHEMA = Schema({
    "fs_server": SemanticType(DOMAIN, "filesystems", "identifier"),
    "time": SemanticType(DOMAIN, "time", "datetime"),
    "fs_reads": SemanticType(VALUE, "filesystem reads", "count"),
    "fs_writes": SemanticType(VALUE, "filesystem writes", "count"),
    "pending_ops": SemanticType(VALUE, "pending operations",
                                "operation count"),
})

EXTRA_DIMENSIONS: Tuple[Tuple[str, bool, bool], ...] = (
    ("link bytes", False, True),
    ("link packets", False, True),
    ("filesystem reads", False, True),
    ("filesystem writes", False, True),
    ("pending operations", True, True),
)

EXTRA_UNITS: Tuple[Tuple[str, str, Optional[str]], ...] = (
    ("operation count", "quantity", "pending operations"),
)


def ensure_network_semantics(dictionary) -> None:
    """Define the network/filesystem dictionary entries (idempotent)."""
    for name, continuous, ordered in EXTRA_DIMENSIONS:
        dictionary.define_dimension(name, continuous, ordered)
    for name, kind, dimension in EXTRA_UNITS:
        dictionary.define_unit(name, kind, dimension)


# ----------------------------------------------------------------------
# bundle
# ----------------------------------------------------------------------

def generate_dat3(
    facility_config: Optional[FacilityConfig] = None,
    duration: float = 3600.0,
    counter_period: float = 10.0,
    num_fs_servers: int = 2,
    seed: int = 17,
):
    """Build the network/filesystem extension DAT: job log, uplink and
    fs-assignment tables, link and fs-server counter streams.

    The job mix comes from the random scheduler, so checkpointing
    workloads (AMG, LULESH, Kripke, Qbox) overlap organically — the
    congestion scenario the paper's introduction describes.
    """
    from repro.datagen.dat import DATBundle, JOB_LOG_SCHEMA

    fc = facility_config or FacilityConfig(num_racks=4, nodes_per_rack=4)
    facility = Facility(fc)
    sched = JobScheduler(
        facility, ScheduleConfig(duration=duration, seed=seed)
    )
    sched.schedule_random()
    topo = NetworkTopology(facility, num_fs_servers)
    sim = NetworkCounterSimulator(topo, sched, seed=seed + 100)

    bundle = DATBundle(facility, sched, {
        "job_queue_log": (sched.job_log_rows(), JOB_LOG_SCHEMA),
        "node_uplinks": (topo.uplink_rows(), NODE_UPLINK_SCHEMA),
        "fs_assignment": (topo.fs_assignment_rows(), FS_ASSIGNMENT_SCHEMA),
        "link_counters": (
            sim.link_counter_rows(0.0, duration, counter_period),
            LINK_COUNTER_SCHEMA,
        ),
        "fs_counters": (
            sim.fs_counter_rows(0.0, duration, counter_period),
            FS_COUNTER_SCHEMA,
        ),
    })
    # the bundle's register() must also define these entries
    original_register = bundle.register

    def register(session):
        ensure_network_semantics(session.dictionary)
        original_register(session)

    bundle.register = register  # type: ignore[method-assign]
    return bundle
