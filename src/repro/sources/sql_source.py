"""sqlite3 tables/queries as rowid-range-partitioned data sources.

Table mode splits the table's rowid span into contiguous key ranges —
one scan partition each, fetched worker-side with
``WHERE rowid >= ? AND rowid <= ?`` so no worker touches another's
rows and the driver never materializes the table. Query mode (an
arbitrary SELECT) cannot be key-partitioned and degrades to a single
partition.

Numeric predicate terms (on quantity/rate columns, where SQLite's
``CAST(col AS NUMERIC)`` agrees exactly with the codec's ``float``)
are additionally translated into a WHERE clause so filtering happens
inside the database; the Python predicate is always re-applied after
decoding, so the SQL clause is a pure superset optimization and can
never change results.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.dictionary import SemanticDictionary
from repro.core.semantics import Schema
from repro.errors import SourceError
from repro.sources.base import DataSource
from repro.sources.predicate import ColumnPredicate, EqTerm, RangeTerm
from repro.wrappers.codec import decode_value


class SQLSource(DataSource):
    """Read a sqlite3 table (or SELECT) lazily by rowid key ranges."""

    def __init__(
        self,
        db_path: str,
        schema: Schema,
        dictionary: SemanticDictionary,
        table: Optional[str] = None,
        query: Optional[str] = None,
        name: Optional[str] = None,
        num_partitions: int = 4,
    ) -> None:
        if (table is None) == (query is None):
            raise SourceError("provide exactly one of table= or query=")
        self.db_path = db_path
        self._schema = schema
        self.dictionary = dictionary
        self.table = table
        self.query = query
        self.name = name or table or "sql"
        self.num_partitions_hint = max(1, num_partitions)
        self._columns: Optional[List[str]] = None
        self._ranges: Optional[List[Optional[Tuple[int, int]]]] = None

    def schema(self) -> Schema:
        return self._schema

    # -- driver side ---------------------------------------------------

    def _sql(self) -> str:
        return self.query or f'SELECT * FROM "{self.table}"'

    def _read_columns(self, conn: sqlite3.Connection) -> List[str]:
        if self._columns is None:
            cursor = conn.execute(self._sql())
            columns = [d[0] for d in cursor.description]
            cursor.close()
            known = [c for c in columns if c in self._schema]
            if not known:
                raise SourceError(
                    f"{self.db_path}: no column of {columns} matches "
                    f"the schema fields {self._schema.fields()}"
                )
            self._columns = columns
        return self._columns

    def partitions(self) -> Sequence[Optional[Tuple[int, int]]]:
        """Inclusive rowid ranges (or ``[None]`` when unsplittable)."""
        if self._ranges is not None:
            return self._ranges
        try:
            with sqlite3.connect(self.db_path) as conn:
                self._read_columns(conn)
                if self.table is None:
                    self._ranges = [None]
                    return self._ranges
                try:
                    lo, hi = conn.execute(
                        f'SELECT MIN(rowid), MAX(rowid) FROM "{self.table}"'
                    ).fetchone()
                except sqlite3.OperationalError:
                    self._ranges = [None]  # WITHOUT ROWID / virtual table
                    return self._ranges
        except sqlite3.Error as exc:
            raise SourceError(
                f"sqlite error reading {self.db_path}: {exc}"
            ) from exc
        if lo is None or hi is None:  # empty table
            self._ranges = [(0, -1)]
            return self._ranges
        span = hi - lo + 1
        n = min(self.num_partitions_hint, span)
        step = -(-span // n)
        self._ranges = [
            (s, min(s + step - 1, hi)) for s in range(lo, hi + 1, step)
        ]
        return self._ranges

    # -- predicate → SQL (superset only; Python re-filters) ------------

    def _where_clause(
        self, predicate: Optional[ColumnPredicate], known: Sequence[str]
    ) -> Tuple[str, List[Any]]:
        if predicate is None:
            return "", []
        clauses: List[str] = []
        params: List[Any] = []
        for term in predicate.terms:
            col = term.column
            if col not in known:
                continue
            kind = self.dictionary.unit(self._schema[col].units).kind
            if kind not in ("quantity", "rate"):
                continue  # only where CAST agrees exactly with float()
            ref = f'CAST("{col}" AS NUMERIC)'
            if isinstance(term, EqTerm):
                if isinstance(term.value, bool) or not isinstance(
                    term.value, (int, float)
                ):
                    continue
                clauses.append(f"{ref} = ?")
                params.append(float(term.value))
            elif isinstance(term, RangeTerm):
                if term.low is not None:
                    clauses.append(f"{ref} >= ?")
                    params.append(float(term.low))
                if term.high is not None:
                    clauses.append(f"{ref} < ?")
                    params.append(float(term.high))
        return (" AND ".join(clauses), params)

    # -- worker side ---------------------------------------------------

    def read_partition(
        self,
        index: int,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[ColumnPredicate] = None,
    ) -> List[Dict[str, Any]]:
        rows, _ = self.read_partition_stats(index, columns, predicate)
        return rows

    def read_partition_stats(
        self,
        index: int,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[ColumnPredicate] = None,
    ):
        rng = self.partitions()[index]
        out: List[Dict[str, Any]] = []
        rows_read = 0
        try:
            with sqlite3.connect(self.db_path) as conn:
                cols = self._read_columns(conn)
                known = [c for c in cols if c in self._schema]
                if columns is None:
                    decoded_cols = known
                else:
                    need = set(columns)
                    if predicate is not None:
                        need.update(predicate.columns())
                    decoded_cols = [c for c in known if c in need]
                wanted = None if columns is None else set(columns)

                sql = self._sql()
                params: List[Any] = []
                if self.table is not None:  # arbitrary SELECTs can't
                    conditions: List[str] = []  # take extra WHEREs
                    if rng is not None:
                        conditions.append("rowid >= ? AND rowid <= ?")
                        params.extend(rng)
                    where, wparams = self._where_clause(predicate, known)
                    if where:
                        conditions.append(where)
                        params.extend(wparams)
                    if conditions:
                        sql = f"{sql} WHERE {' AND '.join(conditions)}"
                for record in conn.execute(sql, params):
                    named = dict(zip(cols, record))
                    rows_read += 1
                    row: Dict[str, Any] = {}
                    for col in decoded_cols:
                        raw = named[col]
                        value = decode_value(
                            None if raw is None else str(raw),
                            self._schema[col],
                            self.dictionary,
                        )
                        if value is not None:
                            row[col] = value
                    if not row:
                        continue
                    if predicate is not None and not predicate.matches(row):
                        continue
                    if wanted is not None:
                        row = {k: v for k, v in row.items() if k in wanted}
                        if not row:
                            continue
                    out.append(row)
        except sqlite3.Error as exc:
            raise SourceError(
                f"sqlite error reading {self.db_path}: {exc}"
            ) from exc
        return out, {"rows_read": rows_read, "bytes_scanned": 0}
