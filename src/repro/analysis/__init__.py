"""Distributed modeling/analysis helpers over derived datasets.

One of the three destinations for a derivation result in Figure 2 is
"distributed modeling and analysis". This package provides the
analyses the case studies perform: grouped aggregation, correlation
between derived value fields, outlier ranking (how §7.2 finds AMG on
rack 17), and per-entity time-series extraction for plotting-style
output.
"""

from repro.analysis.aggregate import (
    finalize_group_partials,
    group_aggregate,
    group_aggregate_partials,
    merge_group_partials,
    time_series,
)
from repro.analysis.correlate import correlate, correlation_matrix
from repro.analysis.outliers import rank_groups, zscore_outliers

__all__ = [
    "group_aggregate",
    "group_aggregate_partials",
    "merge_group_partials",
    "finalize_group_partials",
    "time_series",
    "correlate",
    "correlation_matrix",
    "rank_groups",
    "zscore_outliers",
]
