"""CSV data wrapper and unwrapper.

The most common interchange format in the paper's workflows: IPMI and
PAPI "recorded performance data directly into tabular files", and
derivation results are unwrapped "into a tabular file for analysis".
Cells are decoded/encoded according to the field semantics (see
:mod:`repro.wrappers.codec`); unknown columns are ignored, missing or
empty cells yield sparse rows.
"""

from __future__ import annotations

import csv
import warnings
from typing import Any, Dict, List, Optional

from repro.errors import WrapperError
from repro.core.dataset import ScrubJayDataset
from repro.core.dictionary import SemanticDictionary
from repro.core.semantics import Schema
from repro.wrappers.base import DataWrapper, Unwrapper
from repro.wrappers.codec import encode_value


class CSVWrapper(DataWrapper):
    """Deprecated shim over :class:`~repro.sources.csv_source.CSVSource`.

    Materializes every partition on the driver, exactly like the
    original wrapper did — use ``session.ingest().csv(...)`` for lazy,
    partitioned, pushdown-capable reads.
    """

    def __init__(
        self,
        path: str,
        schema: Schema,
        dictionary: SemanticDictionary,
        name: Optional[str] = None,
        num_partitions: Optional[int] = None,
    ) -> None:
        warnings.warn(
            "CSVWrapper is deprecated; use "
            "session.ingest().csv(path, schema) for a lazy, "
            "partitioned scan",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(
            schema, dictionary, name or path, num_partitions
        )
        self.path = path
        # deferred: repro.sources imports this package's codec module
        from repro.sources.csv_source import CSVSource

        self._source = CSVSource(
            path, schema, dictionary, name=self.name, num_partitions=1
        )

    def rows(self) -> List[Dict[str, Any]]:
        out: List[Dict[str, Any]] = []
        for i in range(self._source.num_partitions()):
            out.extend(self._source.read_partition(i))
        return out


class CSVUnwrapper(Unwrapper):
    """Write a dataset to a CSV file (header = schema fields)."""

    def __init__(self, path: str, dictionary: SemanticDictionary) -> None:
        self.path = path
        self.dictionary = dictionary

    def save(self, dataset: ScrubJayDataset) -> str:
        fields = dataset.schema.fields()
        try:
            with open(self.path, "w", newline="", encoding="utf-8") as f:
                writer = csv.writer(f)
                writer.writerow(fields)
                for row in dataset.collect():
                    writer.writerow(
                        [
                            encode_value(
                                row.get(field),
                                dataset.schema[field],
                                self.dictionary,
                            )
                            for field in fields
                        ]
                    )
        except OSError as exc:
            raise WrapperError(f"cannot write {self.path}: {exc}") from exc
        return self.path
