"""Derivation base classes and the derivation registry (paper §4.3).

Derivations are functions over *semantically annotated* datasets:

- a :class:`Transformation` takes one dataset and produces a modified
  dataset (deriving new elements or changing representation);
- a :class:`Combination` takes two datasets and infers a relation
  between their elements — a generalized JOIN driven by semantics
  rather than user-specified keys.

Each derivation exists at two levels:

- **schema level** — ``applies``/``derive_schema`` operate on schemas
  only, in (near-)constant time. The derivation engine plans entire
  sequences this way without touching data (paper §5.2);
- **data level** — ``apply`` runs the actual data-parallel operation
  on the RDD.

The registry maps operation names to classes so derivation sequences
can be serialized to JSON and re-instantiated (paper §5.4,
"Reproducible Derivation Sequences"); required constructor parameters
are gathered by code reflection, as in the paper.
"""

from __future__ import annotations

import inspect
import threading
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Type

from repro.errors import DerivationError, PipelineError
from repro.core.dataset import ScrubJayDataset
from repro.core.dictionary import SemanticDictionary
from repro.core.semantics import Schema


class Derivation(ABC):
    """Common base: named, parameterized, JSON-serializable."""

    #: unique operation name, set by subclasses
    op_name: str = ""
    #: "transformation" or "combination"
    kind: str = ""

    def params(self) -> dict:
        """The constructor parameters of this instance, via reflection.

        Subclasses whose constructor arguments are all stored as
        same-named attributes (the convention throughout this package)
        need not override anything to be serializable.
        """
        sig = inspect.signature(type(self).__init__)
        out = {}
        for name, p in sig.parameters.items():
            if name == "self" or p.kind in (
                p.VAR_POSITIONAL,
                p.VAR_KEYWORD,
            ):
                continue
            if not hasattr(self, name):
                raise DerivationError(
                    f"{type(self).__name__} stores no attribute for "
                    f"constructor parameter {name!r}; override params()"
                )
            out[name] = getattr(self, name)
        return out

    def to_json_dict(self) -> dict:
        return {"op": self.op_name, **self.params()}

    def describe(self) -> str:
        ps = ", ".join(f"{k}={v!r}" for k, v in self.params().items())
        return f"{self.op_name}({ps})"

    def __repr__(self) -> str:
        return self.describe()

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is type(self)
            and other.params() == self.params()  # type: ignore[union-attr]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(
            (k, repr(v)) for k, v in self.params().items()
        ))))


class Transformation(Derivation):
    """One-dataset derivation: infer new elements or re-represent."""

    kind = "transformation"

    @abstractmethod
    def applies(self, schema: Schema, dictionary: SemanticDictionary) -> bool:
        """Does ``schema`` contain the semantics this derivation requires?"""

    @abstractmethod
    def derive_schema(
        self, schema: Schema, dictionary: SemanticDictionary
    ) -> Schema:
        """The output schema (schema-level execution; near-constant time)."""

    @abstractmethod
    def apply(
        self, dataset: ScrubJayDataset, dictionary: SemanticDictionary
    ) -> ScrubJayDataset:
        """Run the derivation on actual data."""

    @classmethod
    def instantiations(
        cls, schema: Schema, dictionary: SemanticDictionary
    ) -> List["Transformation"]:
        """Enumerate applicable parameterizations for ``schema``.

        The engine calls this to discover candidate transformation
        steps. The default is empty: transformations with unbounded
        parameter spaces (e.g. unit conversion targets) are only
        instantiated purposefully by the engine.
        """
        return []

    def _check(self, dataset: ScrubJayDataset,
               dictionary: SemanticDictionary) -> None:
        if not self.applies(dataset.schema, dictionary):
            raise DerivationError(
                f"{self.describe()} does not apply to dataset "
                f"{dataset.name!r} with schema {dataset.schema!r}"
            )


class Combination(Derivation):
    """Two-dataset derivation: a semantics-driven generalized join."""

    kind = "combination"

    @abstractmethod
    def applies(
        self,
        left: Schema,
        right: Schema,
        dictionary: SemanticDictionary,
    ) -> bool:
        """May these two schemas be combined by this method?"""

    @abstractmethod
    def derive_schema(
        self,
        left: Schema,
        right: Schema,
        dictionary: SemanticDictionary,
    ) -> Schema:
        """The merged output schema."""

    @abstractmethod
    def apply(
        self,
        left: ScrubJayDataset,
        right: ScrubJayDataset,
        dictionary: SemanticDictionary,
    ) -> ScrubJayDataset:
        """Run the join on actual data."""

    def _check(
        self,
        left: ScrubJayDataset,
        right: ScrubJayDataset,
        dictionary: SemanticDictionary,
    ) -> None:
        if not self.applies(left.schema, right.schema, dictionary):
            raise DerivationError(
                f"{self.describe()} cannot combine {left.name!r} and "
                f"{right.name!r}"
            )


class DerivationRegistry:
    """Name → class mapping for (de)serializing derivation sequences.

    ScrubJay ships defaults; system experts register domain-specific
    derivations (like the heat derivation of §7.2) the same way.
    """

    def __init__(self) -> None:
        self._classes: Dict[str, Type[Derivation]] = {}
        # Registration may now race with lookups: the query service
        # plans on a shared session while experts register derivations,
        # and GLOBAL_REGISTRY itself is process-wide shared state. The
        # lock makes the check-then-set in register() atomic and lets
        # readers take consistent snapshots.
        self._lock = threading.RLock()

    def register(self, cls: Type[Derivation]) -> Type[Derivation]:
        """Register a derivation class (usable as a decorator).
        Thread-safe: the duplicate check and the insert are atomic."""
        if not cls.op_name:
            raise DerivationError(
                f"{cls.__name__} must define a non-empty op_name"
            )
        with self._lock:
            existing = self._classes.get(cls.op_name)
            if existing is not None and existing is not cls:
                raise DerivationError(
                    f"derivation name {cls.op_name!r} already registered "
                    f"by {existing.__name__}"
                )
            self._classes[cls.op_name] = cls
        return cls

    def get(self, op_name: str) -> Type[Derivation]:
        with self._lock:
            try:
                return self._classes[op_name]
            except KeyError:
                raise PipelineError(
                    f"unknown derivation operation {op_name!r}"
                ) from None

    def instantiate(self, spec: dict) -> Derivation:
        """Re-create a derivation from its JSON dict (``{"op": ..., **params}``)."""
        spec = dict(spec)
        try:
            op = spec.pop("op")
        except KeyError:
            raise PipelineError(f"derivation spec missing 'op': {spec}") from None
        cls = self.get(op)
        try:
            return cls(**spec)  # type: ignore[call-arg]
        except TypeError as exc:
            raise PipelineError(
                f"bad parameters for {op!r}: {exc}"
            ) from exc

    def transformations(self) -> List[Type[Transformation]]:
        with self._lock:
            classes = list(self._classes.values())
        return [c for c in classes if issubclass(c, Transformation)]

    def combinations(self) -> List[Type[Combination]]:
        with self._lock:
            classes = list(self._classes.values())
        return [c for c in classes if issubclass(c, Combination)]

    def op_names(self) -> List[str]:
        """Sorted registered operation names — part of the semantic
        fingerprint the serve-layer plan cache keys on (an expert
        registration can change what plans are reachable)."""
        with self._lock:
            return sorted(self._classes)

    def copy(self) -> "DerivationRegistry":
        out = DerivationRegistry()
        with self._lock:
            out._classes = dict(self._classes)
        return out


#: The registry holding ScrubJay's built-in derivations; sessions copy
#: it so user registrations stay session-local.
GLOBAL_REGISTRY = DerivationRegistry()


def register_derivation(cls: Type[Derivation]) -> Type[Derivation]:
    """Class decorator adding a derivation to the global registry."""
    return GLOBAL_REGISTRY.register(cls)
