"""Semantic keying: logically equal requests must share cache keys;
any state change must split them."""

from __future__ import annotations

from repro.core.query import Query
from repro.serve import normalize_query, plan_key, result_key

from tests.serve.conftest import make_session


def test_normalize_sorts_domains_and_values():
    a = Query.of(["jobs", "racks"], ["heat", ("power", "watts")])
    b = Query.of(["racks", "jobs"], [("power", "watts"), "heat"])
    assert normalize_query(a) == normalize_query(b)


def test_plan_key_invariant_under_permutation():
    a = Query.of(["jobs", "racks"], ["heat", "power"])
    b = Query.of(["racks", "jobs"], ["power", "heat"])
    assert plan_key("state", a) == plan_key("state", b)


def test_plan_key_differs_across_queries_and_states():
    q = Query.of(["jobs"], ["heat"])
    q2 = Query.of(["jobs"], ["power"])
    assert plan_key("s", q) != plan_key("s", q2)
    assert plan_key("s", q) != plan_key("t", q)


def test_units_distinguish_value_terms():
    q1 = Query.of(["jobs"], [("power", "watts")])
    q2 = Query.of(["jobs"], ["power"])
    assert plan_key("s", q1) != plan_key("s", q2)


def test_result_key_tracks_catalog_version():
    assert result_key("plan", "state", 1) != result_key("plan", "state", 2)
    assert result_key("plan", "state", 1) == result_key("plan", "state", 1)


def test_state_fingerprint_changes_on_register_drop_and_dictionary():
    sj = make_session()
    try:
        fp0 = sj.state_fingerprint()
        v0 = sj.catalog_version

        sj.register_rows(
            [{"node": 1, "metric_b": 1.0}],
            sj.dataset("lookup").schema,
            name="lookup2",
        )
        fp1 = sj.state_fingerprint()
        assert fp1 != fp0
        assert sj.catalog_version == v0 + 1

        sj.drop("lookup2")
        assert sj.state_fingerprint() == fp0  # same schema set again
        assert sj.catalog_version == v0 + 2  # but the data version moved

        sj.define_dimension("weirdness", continuous=True, ordered=True)
        assert sj.state_fingerprint() != fp0
    finally:
        sj.close()


def test_dictionary_version_idempotent_redefinition():
    sj = make_session()
    try:
        v = sj.dictionary.version
        # identical re-definition of an existing keyword: no bump
        sj.define_dimension("time", continuous=True, ordered=True)
        assert sj.dictionary.version == v
        sj.define_dimension("brand-new", continuous=False, ordered=False)
        assert sj.dictionary.version == v + 1
    finally:
        sj.close()
