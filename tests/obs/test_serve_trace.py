"""A served query's trace: queue-wait → plan-cache/solve →
result-cache → execution, exportable as valid chrome://tracing JSON,
with service metrics mirrored into the shared registry."""

from __future__ import annotations

import json

import pytest

from repro import ScrubJaySession, Tracer, to_chrome_trace, to_prometheus
from tests.conftest import (
    JOBS_SCHEMA,
    LAYOUT_SCHEMA,
    TEMPS_SCHEMA,
    jobs_rows,
    layout_rows,
    temps_rows,
)


@pytest.fixture()
def traced_service():
    sj = ScrubJaySession(tracer=Tracer())
    sj.register_rows(jobs_rows(), JOBS_SCHEMA, "job_queue_log")
    sj.register_rows(layout_rows(), LAYOUT_SCHEMA, "node_layout")
    sj.register_rows(temps_rows(), TEMPS_SCHEMA, "rack_temperatures")
    svc = sj.serve(num_workers=1)
    yield sj, svc
    svc.close()
    sj.close()


def test_served_query_trace_tree(traced_service):
    sj, svc = traced_service
    ticket = svc.submit(["racks"], ["heat"], tenant="acme")
    ticket.result(timeout=30.0)

    root = ticket.trace
    assert root is not None
    assert root.name == "query"
    assert root.attrs["tenant"] == "acme"
    names = [s.name for s in root.walk()]
    assert "queue-wait" in names
    assert "plan-cache" in names
    assert "solve" in names           # cold plan-cache miss solved live
    assert "result-cache" in names
    assert root.find("plan-cache").attrs["outcome"] == "miss"
    assert root.find("result-cache").attrs["outcome"] == "miss"
    assert any(s.kind == "stage" for s in root.walk())
    assert any(s.kind == "task" for s in root.walk())

    # queue-wait precedes everything else that has a measured start
    qw = root.find("queue-wait")
    solve = root.find("solve")
    assert qw.end <= solve.start


def test_repeat_query_hits_both_caches(traced_service):
    sj, svc = traced_service
    svc.query(["racks"], ["heat"])
    svc.query(["racks"], ["heat"])
    root = sj.ctx.tracer.last_root()
    assert root.find("plan-cache").attrs["outcome"] == "hit"
    assert root.find("result-cache").attrs["outcome"] == "hit"
    assert root.find("solve") is None  # no live solve on a hit


def test_served_trace_exports_valid_chrome_json(traced_service):
    sj, svc = traced_service
    ticket = svc.submit(["racks"], ["heat"])
    ticket.result(timeout=30.0)

    blob = json.dumps(to_chrome_trace(ticket.trace))
    trace = json.loads(blob)
    events = trace["traceEvents"]
    assert events
    names = {e["name"] for e in events}
    assert "query" in names
    assert "queue-wait" in names
    assert "solve" in names
    assert any(n.startswith("stage:") for n in names)
    assert any(n.startswith("task:") for n in names)
    for e in events:
        assert set(e) == {
            "name", "cat", "ph", "ts", "dur", "pid", "tid", "args"
        }
        assert e["ph"] == "X"
        assert isinstance(e["ts"], int)
        assert isinstance(e["dur"], int) and e["dur"] >= 0


def test_service_metrics_mirror_into_registry(traced_service):
    sj, svc = traced_service
    svc.query(["racks"], ["heat"])
    m = sj.ctx.metrics
    assert m.counter("serve.submitted") == 1
    assert m.counter("serve.completed") == 1
    assert m.histogram_summary("serve.latency_s")["count"] == 1

    text = to_prometheus(m)
    assert "serve_completed 1" in text
    assert "serve_latency_s_count 1" in text
    # the engine and rdd layers land in the same dump
    assert "engine_solves" in text
    assert "rdd_stages" in text


def test_untraced_service_leaves_no_trace():
    sj = ScrubJaySession()
    sj.register_rows(jobs_rows(), JOBS_SCHEMA, "job_queue_log")
    sj.register_rows(layout_rows(), LAYOUT_SCHEMA, "node_layout")
    sj.register_rows(temps_rows(), TEMPS_SCHEMA, "rack_temperatures")
    with sj.serve(num_workers=1) as svc:
        ticket = svc.submit(["racks"], ["heat"])
        ticket.result(timeout=30.0)
        assert ticket.trace is None
        assert sj.ctx.tracer.roots() == []
    sj.close()
