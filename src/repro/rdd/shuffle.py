"""Shuffle machinery: portable hashing and bucket exchange.

A shuffle repartitions data by key between two stages. The map-side
task assigns every record to an output bucket; the driver regroups
buckets (standing in for the network exchange between cluster nodes);
the reduce-side task merges each bucket's records.

Bucket assignment must be *consistent across worker processes*.
Python's builtin ``hash`` is salted per interpreter, so we provide
:func:`portable_hash`, a deterministic recursive hash over the key
types that appear in ScrubJay join keys: strings, numbers, bools,
None, bytes, tuples/frozensets thereof, dataclass instances (hashed
structurally, which covers ``Timestamp``/``TimeSpan`` join keys), and
any object providing a ``__portable_hash__() -> int`` method.

For any other type there is no process-stable hash to compute. Under a
single-process executor the builtin (salted) ``hash`` is still
consistent within the interpreter, so it is used as a fallback; under
multi-process executors the same fallback would silently scatter equal
keys across different buckets — joins and groupByKey would quietly
drop matches — so ``strict=True`` (set by the scheduler whenever the
executor crosses process boundaries) raises a typed
:class:`~repro.errors.ShuffleKeyError` instead.
"""

from __future__ import annotations

import dataclasses
import zlib
from typing import Any

from repro.errors import ShuffleKeyError

_MASK = 0xFFFFFFFFFFFF


def portable_hash(key: Any, strict: bool = False) -> int:
    """Deterministic, process-independent hash for shuffle keys.

    With ``strict=True``, keys whose type has no process-stable hash
    raise :class:`ShuffleKeyError` instead of falling back to the
    salted builtin ``hash`` (which is only consistent in-process).
    """
    if key is None:
        return 0x3070
    if isinstance(key, bool):
        return 0x9E37 + int(key)
    if isinstance(key, int):
        return key
    if isinstance(key, float):
        # floats equal to ints must hash equal to them (dict semantics)
        if key.is_integer():
            return int(key)
        return zlib.crc32(repr(key).encode("utf-8"))
    if isinstance(key, str):
        return zlib.crc32(key.encode("utf-8"))
    if isinstance(key, bytes):
        return zlib.crc32(key)
    if isinstance(key, tuple):
        h = 0x345678
        for item in key:
            h = (h * 1000003) ^ portable_hash(item, strict)
            h &= _MASK
        return h
    if isinstance(key, frozenset):
        h = 0x1111
        for item in sorted(portable_hash(i, strict) for i in key):
            h = (h * 31 + item) & _MASK
        return h
    custom = getattr(key, "__portable_hash__", None)
    if callable(custom):
        return int(custom())
    if dataclasses.is_dataclass(key) and not isinstance(key, type):
        # structural hash: type identity + field values, recursively.
        # Covers Timestamp/TimeSpan and other frozen dataclass keys.
        h = zlib.crc32(type(key).__qualname__.encode("utf-8"))
        for f in dataclasses.fields(key):
            h = (h * 1000003) ^ portable_hash(getattr(key, f.name), strict)
            h &= _MASK
        return h
    if strict:
        raise ShuffleKeyError(
            f"shuffle key {key!r} of type {type(key).__qualname__} has no "
            f"process-stable hash; equal keys would land in different "
            f"buckets on different worker processes. Use primitive, "
            f"tuple, or dataclass keys, or define __portable_hash__."
        )
    # Fall back to the object's own (possibly salted) hash; only safe
    # for single-process executors, so prefer primitive keys.
    return hash(key)


def hash_bucket(key: Any, num_buckets: int, strict: bool = False) -> int:
    """Map ``key`` to one of ``num_buckets`` output partitions."""
    return portable_hash(key, strict) % num_buckets
