"""The shared knowledge base (paper §3, §7.1).

"These annotations comprise the knowledge base of ScrubJay, and once
specified, they may be shared and reused": the paper stores data
semantics in the facility's distributed database so that semantics
defined during the first DAT were "reused seamlessly in the second,
and this information continues to be readily available."

:class:`KnowledgeBase` provides exactly that on the wide-column store:
dictionary entries (dimensions and units), dataset schemas, and saved
derivation plans persist in a keyspace and can be replayed into any
new :class:`~repro.session.ScrubJaySession`.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.errors import ScrubJayError, StoreError
from repro.core.pipeline import DerivationPlan
from repro.core.semantics import Schema
from repro.store.wide_column import Table, WideColumnStore

_KEYSPACE = "scrubjay_kb"


class KnowledgeBase:
    """Persistent, shareable store of semantics, schemas, and plans."""

    def __init__(
        self, store: WideColumnStore, keyspace: str = _KEYSPACE
    ) -> None:
        self.store = store
        self.keyspace = keyspace

    # ------------------------------------------------------------------

    def _table(self, name: str, partition_key: List[str]) -> Table:
        try:
            return self.store.table(self.keyspace, name)
        except StoreError:
            return self.store.create_table(
                self.keyspace, name, partition_key
            )

    def _upsert(self, table: Table, key_col: str, row: dict) -> None:
        # last-writer-wins: scan keeps all versions, readers take the
        # newest (rows are appended in order within a partition)
        table.insert(row)
        table.flush()

    def _latest(self, table: Table) -> Dict[str, dict]:
        out: Dict[str, dict] = {}
        for row in table.scan():
            out[row["name"]] = row  # later rows overwrite earlier ones
        return out

    # ------------------------------------------------------------------
    # dictionary entries
    # ------------------------------------------------------------------

    def save_dimension(self, name: str, continuous: bool,
                       ordered: bool, description: str = "") -> None:
        self._upsert(
            self._table("dimensions", ["name"]), "name",
            {"name": name, "continuous": continuous, "ordered": ordered,
             "description": description},
        )

    def save_unit(self, name: str, kind: str,
                  dimension: Optional[str] = None,
                  scale: float = 1.0, offset: float = 0.0) -> None:
        self._upsert(
            self._table("units", ["name"]), "name",
            {"name": name, "kind": kind, "dimension": dimension,
             "scale": scale, "offset": offset},
        )

    def save_session_semantics(self, session) -> None:
        """Persist every non-default dictionary entry of a session.

        Stores all dimensions and units currently registered, so a
        later session reconstructs the same vocabulary (defaults are
        idempotent to re-define).
        """
        reg = session.dictionary.registry
        for dim in reg.dimensions().values():
            self.save_dimension(dim.name, dim.continuous, dim.ordered,
                                dim.description)
        for unit in reg.units().values():
            self.save_unit(unit.name, unit.kind, unit.dimension,
                           unit.scale, unit.offset)

    # ------------------------------------------------------------------
    # dataset schemas
    # ------------------------------------------------------------------

    def save_schema(self, name: str, schema: Schema) -> None:
        self._upsert(
            self._table("schemas", ["name"]), "name",
            {"name": name, "schema": json.dumps(schema.to_json_dict())},
        )

    def save_session_schemas(self, session) -> None:
        for name, schema in session.schemas().items():
            self.save_schema(name, schema)

    def load_schemas(self) -> Dict[str, Schema]:
        try:
            table = self.store.table(self.keyspace, "schemas")
        except StoreError:
            return {}
        return {
            name: Schema.from_json_dict(json.loads(row["schema"]))
            for name, row in self._latest(table).items()
        }

    def load_schema(self, name: str) -> Schema:
        schemas = self.load_schemas()
        try:
            return schemas[name]
        except KeyError:
            raise ScrubJayError(
                f"knowledge base has no schema named {name!r}"
            ) from None

    # ------------------------------------------------------------------
    # derivation plans
    # ------------------------------------------------------------------

    def save_plan(self, name: str, plan: DerivationPlan) -> None:
        self._upsert(
            self._table("plans", ["name"]), "name",
            {"name": name, "plan": plan.to_json(indent=None)},
        )

    def load_plan(self, name: str, registry) -> DerivationPlan:
        try:
            table = self.store.table(self.keyspace, "plans")
        except StoreError:
            raise ScrubJayError("knowledge base holds no plans") from None
        rows = self._latest(table)
        if name not in rows:
            raise ScrubJayError(
                f"knowledge base has no plan named {name!r}"
            )
        return DerivationPlan.from_json(rows[name]["plan"], registry)

    def plan_names(self) -> List[str]:
        try:
            table = self.store.table(self.keyspace, "plans")
        except StoreError:
            return []
        return sorted(self._latest(table))

    # ------------------------------------------------------------------
    # session replay
    # ------------------------------------------------------------------

    def apply_to(self, session) -> None:
        """Replay persisted dictionary entries into a session.

        Re-definition of identical entries is idempotent; genuinely
        conflicting entries raise the dictionary's homonym error, which
        is the correct outcome — the knowledge base is the authority.
        """
        try:
            dims = self._latest(self.store.table(self.keyspace,
                                                 "dimensions"))
        except StoreError:
            dims = {}
        for row in dims.values():
            session.define_dimension(
                row["name"], row["continuous"], row["ordered"],
                row.get("description", ""),
            )
        try:
            units = self._latest(self.store.table(self.keyspace, "units"))
        except StoreError:
            units = {}
        for row in units.values():
            # skip units whose keyword already resolves identically
            if session.dictionary.has_unit(row["name"]):
                continue
            session.define_unit(
                row["name"], row["kind"], row.get("dimension"),
                row.get("scale", 1.0), row.get("offset", 0.0),
            )
