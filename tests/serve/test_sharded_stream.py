"""Sharded streaming: feed fan-out, routed appends, and scatter-gather
subscription refreshes must be indistinguishable from the
single-process answer — 1 shard or 4, sharded or replicated feeds,
with appends landing mid-stream."""

from __future__ import annotations

import math
import threading

import pytest

from repro import ScrubJaySession
from repro.core.query import FilterTerm
from repro.datagen.synthetic import (
    KEYED_LEFT_SCHEMA,
    KEYED_RIGHT_SCHEMA,
    keyed_tables,
)
from repro.serve import AggregateSpec, QueryService, ShardRouter

from tests.serve.conftest import (
    JOIN_DOMAINS,
    JOIN_VALUES,
    row_multiset,
)

ROWS, KEYS = 80, 8


def delta_rows(start, n):
    return [
        {
            "node": (start + i) % KEYS,
            "sample": 10_000 + start + i,
            "metric_a": float(start + i),
        }
        for i in range(n)
    ]


def make_feed_session():
    sj = ScrubJaySession()
    left, right = keyed_tables(ROWS, num_keys=KEYS)
    sj.ingest().feed(KEYED_LEFT_SCHEMA, rows=left).tail("samples")
    sj.register_rows(right, KEYED_RIGHT_SCHEMA, name="lookup")
    return sj


def make_stream_router(shards, sharded=True):
    sj = make_feed_session()
    router = ShardRouter(
        sj,
        shards=shards,
        shard_on={"samples": ["node"]} if sharded else {},
        num_workers=1,
    )
    return sj, router


@pytest.fixture()
def reference():
    sj = make_feed_session()
    svc = QueryService(sj, num_workers=1)
    yield svc, sj
    svc.close()
    sj.close()


def _settled_reference(reference, batches):
    svc, sj = reference
    for start, n in batches:
        svc.advance("samples", rows=delta_rows(start, n))
    return row_multiset(sj.ask(JOIN_DOMAINS, JOIN_VALUES).collect())


# ----------------------------------------------------------------------
# shard-count equivalence, including feed advance
# ----------------------------------------------------------------------


@pytest.mark.parametrize("shards", [1, 4])
def test_subscription_matches_single_process(reference, shards):
    batches = [(0, 7), (7, 9)]
    want = _settled_reference(reference, batches)
    sj, router = make_stream_router(shards)
    try:
        sub = router.subscribe(JOIN_DOMAINS, JOIN_VALUES)
        for start, n in batches:
            out = router.advance("samples", rows=delta_rows(start, n))
            assert out["rows_added"] == n
            assert out["subscriptions_refreshed"] == 1
        upd = sub.current()
        assert row_multiset(upd.rows) == want
        assert upd.watermarks == {"samples": ROWS + 16}
        # shard-local refreshes ran the delta path end to end
        assert upd.refresh_mode == "delta"
        assert sub.delta_refreshes == len(batches)
    finally:
        router.close()
        sj.close()


@pytest.mark.parametrize("sharded", [True, False])
def test_plain_queries_see_routed_appends(reference, sharded):
    batches = [(0, 11)]
    want = _settled_reference(reference, batches)
    sj, router = make_stream_router(2, sharded=sharded)
    try:
        router.advance("samples", rows=delta_rows(0, 11))
        got = router.query(JOIN_DOMAINS, JOIN_VALUES).collect()
        assert row_multiset(got) == want
    finally:
        router.close()
        sj.close()


def test_prune_stays_correct_after_appends(reference):
    ref_svc, ref_sj = reference
    sj, router = make_stream_router(4)
    try:
        router.advance("samples", rows=delta_rows(0, 13))
        ref_svc.advance("samples", rows=delta_rows(0, 13))
        for key in range(KEYS):
            filters = (FilterTerm("compute nodes", "eq", value=key),)
            want = row_multiset(
                ref_svc.query(
                    JOIN_DOMAINS, JOIN_VALUES, filters=filters
                ).collect()
            )
            got = row_multiset(
                router.query(
                    JOIN_DOMAINS, JOIN_VALUES, filters=filters
                ).collect()
            )
            assert got == want
    finally:
        router.close()
        sj.close()


# ----------------------------------------------------------------------
# aggregates over the fleet
# ----------------------------------------------------------------------


def test_aggregate_subscription_finalizes_router_side(reference):
    ref_svc, ref_sj = reference
    spec = AggregateSpec(
        group_by=("node",), value_field="metric_b", how="mean"
    )
    ref_sub = ref_svc.subscribe(
        JOIN_DOMAINS, JOIN_VALUES, aggregate=spec
    )
    sj, router = make_stream_router(4)
    try:
        sub = router.subscribe(JOIN_DOMAINS, JOIN_VALUES, aggregate=spec)
        ref_svc.advance("samples", rows=delta_rows(0, 10))
        router.advance("samples", rows=delta_rows(0, 10))
        want = ref_sub.current().groups
        got = sub.current().groups
        assert got.keys() == want.keys()
        for k in want:
            assert math.isclose(got[k], want[k], rel_tol=1e-9)
    finally:
        router.close()
        sj.close()


# ----------------------------------------------------------------------
# concurrency and lifecycle
# ----------------------------------------------------------------------


def test_concurrent_advances_serialize_cleanly(reference):
    total, batch = 24, 4
    want = _settled_reference(
        reference,
        [(s, batch) for s in range(0, total, batch)],
    )
    sj, router = make_stream_router(2)
    try:
        sub = router.subscribe(JOIN_DOMAINS, JOIN_VALUES)
        errors = []

        def writer(offset):
            try:
                for start in range(offset, total, batch * 2):
                    router.advance(
                        "samples", rows=delta_rows(start, batch)
                    )
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(o,))
            for o in (0, batch)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        upd = sub.current()
        assert upd.watermarks == {"samples": ROWS + total}
        assert row_multiset(upd.rows) == want
    finally:
        router.close()
        sj.close()


def test_unsubscribe_tears_down_shard_subscriptions(reference):
    sj, router = make_stream_router(2)
    try:
        sub = router.subscribe(JOIN_DOMAINS, JOIN_VALUES)
        assert router._router_subs  # shard-side bookkeeping exists
        assert router.unsubscribe(sub.sub_id) is True
        assert not router._router_subs
        # advancing afterwards refreshes nothing and loses nothing
        out = router.advance("samples", rows=delta_rows(0, 3))
        assert out["subscriptions_refreshed"] == 0
        got = router.query(JOIN_DOMAINS, JOIN_VALUES).collect()
        assert len(got) == ROWS + 3
    finally:
        router.close()
        sj.close()
