"""Opt-in, on-disk memoization of derivation results (paper §5.4).

Expensive derivation steps are cached in non-volatile storage keyed by
the *content fingerprint* of the plan subtree that produced them, so
two derivation sequences sharing an expensive prefix compute it only
once — even across sessions and analysts. Because the cache can grow
to deplete storage, it is opt-in, bounded, and evicts entries with a
least-recently-used (LRU) policy.

Entries store the collected rows plus the dataset's schema and name;
on a hit the rows are re-parallelized into the live context.
"""

from __future__ import annotations

import logging
import os
import pickle
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

logger = logging.getLogger("repro.core.cache")

from repro.core.dataset import ScrubJayDataset
from repro.core.semantics import Schema
from repro.rdd.context import SJContext


@dataclass
class CachedResult:
    """A materialized derivation result ready to re-enter a context.

    ``created_at_wall`` is an optional wall-clock creation stamp
    (``time.time()``); the serve layer's ResultCache uses it to
    enforce its TTL on entries promoted back from disk. Entries
    pickled before the field existed load without it — read it with
    ``getattr(..., "created_at_wall", None)``.
    """

    rows: List[Dict[str, Any]]
    schema_json: dict
    name: str
    created_at_wall: Optional[float] = None

    def to_dataset(self, ctx: SJContext) -> ScrubJayDataset:
        return ScrubJayDataset.from_rows(
            ctx, self.rows, Schema.from_json_dict(self.schema_json), self.name
        )


class DerivationCache:
    """Bounded on-disk LRU cache of derivation results, with an
    optional compressed long-term tier.

    The paper's conclusion sketches "a storage cache hierarchy ...
    where old entries may be compressed and stored in separate
    long-term storage devices"; passing ``cold_directory`` enables
    exactly that: entries evicted from the hot tier are gzip-compressed
    into the cold tier instead of deleted, a cold hit transparently
    decompresses and *promotes* the entry back to hot, and the cold
    tier itself is LRU-bounded by ``max_cold_entries``.

    Parameters
    ----------
    directory:
        Hot tier: uncompressed entry files (created if missing).
    max_entries:
        Hot-tier bound; least recently *used* entries evict first.
        Recency survives process restarts because access bumps the
        file's mtime.
    cold_directory:
        Optional cold tier for compressed demoted entries; omit it for
        the flat single-tier cache.
    max_cold_entries:
        Cold-tier bound; beyond it, the oldest compressed entries are
        deleted for good.
    """

    def __init__(
        self,
        directory: str,
        max_entries: int = 64,
        cold_directory: Optional[str] = None,
        max_cold_entries: int = 256,
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if max_cold_entries <= 0:
            raise ValueError("max_cold_entries must be positive")
        self.directory = directory
        self.max_entries = max_entries
        self.cold_directory = cold_directory
        self.max_cold_entries = max_cold_entries
        os.makedirs(directory, exist_ok=True)
        if cold_directory is not None:
            os.makedirs(cold_directory, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.cold_hits = 0
        self.evictions = 0
        self.demotions = 0
        self.cold_evictions = 0
        # All public operations run under one re-entrant lock, so a
        # read's load + recency bump is atomic with respect to a
        # concurrent put's eviction pass: an entry can never be evicted
        # mid-read, and a freshly-read entry's mtime is already bumped
        # before any eviction sorts by recency.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------

    def _path(self, fingerprint: str) -> str:
        return os.path.join(self.directory, f"{fingerprint}.pkl")

    def _cold_path(self, fingerprint: str) -> str:
        assert self.cold_directory is not None
        return os.path.join(self.cold_directory, f"{fingerprint}.pkl.gz")

    def get(self, fingerprint: str) -> Optional[CachedResult]:
        """Fetch an entry, bumping its recency. None on miss.

        Checks the hot tier first, then the compressed cold tier;
        a cold hit re-promotes the entry to hot. The recency bump and
        the read happen atomically under the cache lock, so a
        concurrent ``put``'s eviction pass can neither remove the
        entry mid-read nor sort it by a stale timestamp.
        """
        with self._lock:
            path = self._path(fingerprint)
            if os.path.exists(path):
                # Touch *before* loading: once recency is refreshed,
                # even an eviction racing from another process sorts
                # this entry as newest.
                try:
                    os.utime(path, None)
                except OSError:
                    pass
                try:
                    with open(path, "rb") as f:
                        entry = pickle.load(f)
                except Exception as exc:
                    # A truncated or corrupt entry (e.g. half-written
                    # by a killed process) must not poison the cache
                    # permanently: evict the bad file, treat as miss.
                    self._evict_corrupt(path, exc)
                    self.misses += 1
                    return None
                self.hits += 1
                return entry
            entry = self._get_cold(fingerprint)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            self.cold_hits += 1
            self._write_hot(fingerprint, entry)  # promote
            self._evict()
            return entry

    def _get_cold(self, fingerprint: str) -> Optional[CachedResult]:
        if self.cold_directory is None:
            return None
        import gzip

        cold = self._cold_path(fingerprint)
        if not os.path.exists(cold):
            return None
        try:
            with gzip.open(cold, "rb") as f:
                entry = pickle.load(f)
        except Exception as exc:
            self._evict_corrupt(cold, exc)
            return None
        try:
            os.remove(cold)  # it lives in the hot tier now
        except OSError:
            pass
        return entry

    @staticmethod
    def _evict_corrupt(path: str, exc: BaseException) -> None:
        logger.warning(
            "derivation cache: evicting unreadable entry %s (%s: %s)",
            path, type(exc).__name__, exc,
        )
        try:
            os.remove(path)
        except OSError:
            pass

    def _write_hot(self, fingerprint: str, entry: CachedResult) -> None:
        # Atomic publish: a process killed mid-write leaves only a tmp
        # file behind, never a truncated entry under the final name.
        path = self._path(fingerprint)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as f:
                pickle.dump(entry, f)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):  # pickling failed before replace
                try:
                    os.remove(tmp)
                except OSError:
                    pass

    def put(self, fingerprint: str, dataset: ScrubJayDataset) -> None:
        """Store a dataset's rows under the plan fingerprint."""
        entry = CachedResult(
            rows=dataset.collect(),
            schema_json=dataset.schema.to_json_dict(),
            name=dataset.name,
        )
        with self._lock:
            self._write_hot(fingerprint, entry)
            self._evict()

    def put_entry(self, fingerprint: str, entry: CachedResult) -> None:
        """Store an already-materialized :class:`CachedResult` — the
        write-through path used by the serve layer's in-memory
        ResultCache, which has the collected rows in hand already."""
        with self._lock:
            self._write_hot(fingerprint, entry)
            self._evict()

    def invalidate(self, fingerprint: str) -> None:
        """Drop an entry from both tiers (no-op when absent) — used by
        the serve layer when an entry expires by TTL, so the disk copy
        cannot resurrect it."""
        with self._lock:
            try:
                os.remove(self._path(fingerprint))
            except OSError:
                pass
            if self.cold_directory is not None:
                try:
                    os.remove(self._cold_path(fingerprint))
                except OSError:
                    pass

    def _evict(self) -> None:
        files = [
            os.path.join(self.directory, f)
            for f in os.listdir(self.directory)
            if f.endswith(".pkl")
        ]
        if len(files) <= self.max_entries:
            return
        files.sort(key=lambda p: self._mtime(p))
        for path in files[: len(files) - self.max_entries]:
            if self.cold_directory is not None:
                self._demote(path)
            try:
                os.remove(path)
                self.evictions += 1
            except OSError:
                pass
        self._evict_cold()

    @staticmethod
    def _mtime(path: str) -> float:
        try:
            return os.path.getmtime(path)
        except OSError:  # removed by a concurrent process: oldest
            return 0.0

    def _demote(self, hot_path: str) -> None:
        """Compress a hot entry into the cold tier."""
        import gzip

        fingerprint = os.path.basename(hot_path)[: -len(".pkl")]
        cold = self._cold_path(fingerprint)
        tmp = f"{cold}.tmp.{os.getpid()}"
        try:
            with open(hot_path, "rb") as src, gzip.open(tmp, "wb") as dst:
                dst.write(src.read())
            os.replace(tmp, cold)
            self.demotions += 1
        except OSError:
            try:
                os.remove(tmp)
            except OSError:
                pass

    def _evict_cold(self) -> None:
        if self.cold_directory is None:
            return
        files = [
            os.path.join(self.cold_directory, f)
            for f in os.listdir(self.cold_directory)
            if f.endswith(".pkl.gz")
        ]
        if len(files) <= self.max_cold_entries:
            return
        files.sort(key=lambda p: self._mtime(p))
        for path in files[: len(files) - self.max_cold_entries]:
            try:
                os.remove(path)
                self.cold_evictions += 1
            except OSError:
                pass

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Hit/miss/eviction counters as one snapshot dict.

        Surfaced through ``ctx.report`` after plan execution and
        through the serve layer's ``ServiceMetrics`` — the
        machine-readable replacement for grepping log lines.
        """
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "cold_hits": self.cold_hits,
                "evictions": self.evictions,
                "demotions": self.demotions,
                "cold_evictions": self.cold_evictions,
                "hit_rate": (self.hits / total) if total else None,
                "entries": len(self),
                "cold_entries": self.cold_len(),
            }

    def __len__(self) -> int:
        return sum(
            1 for f in os.listdir(self.directory) if f.endswith(".pkl")
        )

    def cold_len(self) -> int:
        if self.cold_directory is None:
            return 0
        return sum(
            1 for f in os.listdir(self.cold_directory)
            if f.endswith(".pkl.gz")
        )

    def clear(self) -> None:
        with self._lock:
            for f in os.listdir(self.directory):
                if f.endswith(".pkl"):
                    try:
                        os.remove(os.path.join(self.directory, f))
                    except OSError:
                        pass
            if self.cold_directory is not None:
                for f in os.listdir(self.cold_directory):
                    if f.endswith(".pkl.gz"):
                        try:
                            os.remove(os.path.join(self.cold_directory, f))
                        except OSError:
                            pass
            self.hits = self.misses = self.cold_hits = 0
            self.evictions = self.demotions = self.cold_evictions = 0
