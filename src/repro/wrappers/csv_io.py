"""CSV unwrapper.

The most common interchange format in the paper's workflows:
derivation results are unwrapped "into a tabular file for analysis".
Cells are encoded according to the field semantics (see
:mod:`repro.wrappers.codec`). Reading CSVs goes through
``session.ingest().csv(...)`` (:mod:`repro.sources.csv_source`).
"""

from __future__ import annotations

import csv

from repro.errors import WrapperError
from repro.core.dataset import ScrubJayDataset
from repro.core.dictionary import SemanticDictionary
from repro.wrappers.base import Unwrapper
from repro.wrappers.codec import encode_value


class CSVUnwrapper(Unwrapper):
    """Write a dataset to a CSV file (header = schema fields)."""

    def __init__(self, path: str, dictionary: SemanticDictionary) -> None:
        self.path = path
        self.dictionary = dictionary

    def save(self, dataset: ScrubJayDataset) -> str:
        fields = dataset.schema.fields()
        try:
            with open(self.path, "w", newline="", encoding="utf-8") as f:
                writer = csv.writer(f)
                writer.writerow(fields)
                for row in dataset.collect():
                    writer.writerow(
                        [
                            encode_value(
                                row.get(field),
                                dataset.schema[field],
                                self.dictionary,
                            )
                            for field in fields
                        ]
                    )
        except OSError as exc:
            raise WrapperError(f"cannot write {self.path}: {exc}") from exc
        return self.path
