"""The scheduler: interprets RDD lineage and runs stages.

Evaluation walks the lineage graph from the requested RDD down to its
sources. Chains of narrow transformations are *pipelined* — composed
into a single per-partition task — while shuffles split the graph into
stages: a map stage that assigns records to output buckets (run on the
executor), a driver-side exchange that regroups buckets (standing in
for the network shuffle between cluster nodes), and a reduce stage
that merges each bucket (run on the executor). This is the same stage
structure Spark's DAG scheduler produces, and it is what gives the
benchmarks in the paper's Figure 3 their shape: transformations are
cheap and embarrassingly parallel, combinations pay for the shuffle.

Fault tolerance: each stage submission goes through
:meth:`Scheduler._run_stage`. When the executor reports a whole-pool
death (:class:`~repro.errors.WorkerPoolError`), the stage is replayed
from its input partitions — which the scheduler materialized from
lineage and still holds driver-side — after an exponential backoff,
up to ``retry_policy.max_stage_attempts`` total attempts. Because
tasks are deterministic functions of their input partitions, replay
is exact: a re-run stage sees identical inputs and produces identical
shuffle buckets (asserted by tests/rdd/test_fault_tolerance.py).
Per-task retry for single-task faults happens one level down, inside
the executors (see :mod:`repro.rdd.fault`).
"""

from __future__ import annotations

import bisect
import logging
from typing import Any, Callable, List

from repro.errors import WorkerPoolError
from repro.rdd.executors import Executor
from repro.rdd.fault import DEFAULT_RETRY_POLICY
from repro.rdd.partition import Partition
from repro.rdd.rdd import (
    RDD,
    CoalescedRDD,
    MappedPartitionsRDD,
    RangePartitionedRDD,
    RepartitionedRDD,
    ShuffledRDD,
    SourceRDD,
    UnionRDD,
)
from repro.rdd.shuffle import hash_bucket

logger = logging.getLogger("repro.rdd.plan")


class Scheduler:
    """Materializes RDDs by executing their lineage on an executor."""

    def __init__(self, executor: Executor) -> None:
        self.executor = executor
        self._depth = 0  # materialize() recursion depth; 0 = a new job

    def materialize(self, rdd: RDD) -> List[Partition]:
        """Compute (or fetch cached) partitions for ``rdd``."""
        if self._depth == 0:
            # a fresh action: tell stateful executors a new job starts
            self.executor.job_boundary()
        self._depth += 1
        try:
            if rdd._cached is not None:
                return rdd._cached
            parts = self._compute(rdd)
            if rdd._persist:
                rdd._cached = parts
            return parts
        finally:
            self._depth -= 1

    # ------------------------------------------------------------------

    def _run_stage(
        self,
        fn: Callable[[int, List[Any]], List[Any]],
        parts: List[Partition],
        origin: str,
    ) -> List[Partition]:
        """Submit one stage, replaying it from lineage on pool death.

        ``parts`` are the stage's lineage inputs, still materialized in
        the driver, so a replay re-runs the same deterministic tasks on
        identical inputs — Spark's recompute-from-lineage, with the
        recompute already in hand.
        """
        policy = self.executor.retry_policy or DEFAULT_RETRY_POLICY
        attempt = 1
        while True:
            try:
                return self.executor.run_partition_tasks(fn, parts)
            except WorkerPoolError as exc:
                if attempt >= policy.max_stage_attempts:
                    logger.error(
                        "stage %s: worker pool died on final attempt "
                        "%d/%d: %s",
                        origin, attempt, policy.max_stage_attempts, exc,
                    )
                    raise
                logger.warning(
                    "stage %s: worker pool died (attempt %d/%d), "
                    "replaying stage from lineage inputs: %s",
                    origin, attempt, policy.max_stage_attempts, exc,
                )
                policy.sleep(policy.backoff(attempt))
                attempt += 1

    def _compute(self, rdd: RDD) -> List[Partition]:
        if isinstance(rdd, SourceRDD):
            return rdd.partitions
        if isinstance(rdd, MappedPartitionsRDD):
            return self._compute_narrow_chain(rdd)
        if isinstance(rdd, UnionRDD):
            return self._compute_union(rdd)
        if isinstance(rdd, CoalescedRDD):
            return self._compute_coalesce(rdd)
        if isinstance(rdd, RepartitionedRDD):
            return self._compute_repartition(rdd)
        if isinstance(rdd, ShuffledRDD):
            return self._compute_shuffle(rdd)
        if isinstance(rdd, RangePartitionedRDD):
            return self._compute_range_partition(rdd)
        raise TypeError(f"scheduler cannot materialize {type(rdd).__name__}")

    def _compute_narrow_chain(self, rdd: MappedPartitionsRDD) -> List[Partition]:
        """Pipeline consecutive narrow transformations into one task."""
        fns: List[Callable[[int, List[Any]], List[Any]]] = [rdd.fn]
        base: RDD = rdd.parent
        while (
            isinstance(base, MappedPartitionsRDD)
            and not base._persist
            and base._cached is None
        ):
            fns.append(base.fn)
            base = base.parent
        fns.reverse()
        base_parts = self.materialize(base)

        def composed(index: int, items: List[Any]) -> List[Any]:
            for fn in fns:
                items = fn(index, items)
            return items

        return self._run_stage(composed, base_parts, "narrow")

    def _compute_union(self, rdd: UnionRDD) -> List[Partition]:
        parts: List[Partition] = []
        for parent in rdd.rdds:
            for p in self.materialize(parent):
                parts.append(Partition(len(parts), p.data))
        return parts

    def _compute_coalesce(self, rdd: CoalescedRDD) -> List[Partition]:
        parent_parts = self.materialize(rdd.parent)
        n = rdd.num_partitions()
        out: List[Partition] = [Partition(i, []) for i in range(n)]
        for p in parent_parts:
            out[p.index % n].data.extend(p.data)
        return out

    def _compute_repartition(self, rdd: RepartitionedRDD) -> List[Partition]:
        parent_parts = self.materialize(rdd.parent)
        n = rdd.num_partitions()
        out: List[Partition] = [Partition(i, []) for i in range(n)]
        for p in parent_parts:
            for seq, item in enumerate(p.data):
                out[(p.index + seq) % n].data.append(item)
        return out

    def _compute_shuffle(self, rdd: ShuffledRDD) -> List[Partition]:
        parent_parts = self.materialize(rdd.parent)
        n = rdd.num_partitions()
        create = rdd.create
        merge_value = rdd.merge_value
        merge_combiners = rdd.merge_combiners
        # multi-process executors need process-stable key hashing; the
        # salted builtin hash would silently mis-bucket equal keys
        strict_hash = self.executor.portable_hash_required

        def map_task(_index: int, items: List[Any]) -> List[Any]:
            # One dict of partial combiners per output bucket: the
            # map-side combine that keeps shuffle volume proportional
            # to distinct keys rather than records.
            buckets: List[dict] = [dict() for _ in range(n)]
            for k, v in items:
                d = buckets[hash_bucket(k, n, strict_hash)]
                if k in d:
                    d[k] = merge_value(d[k], v)
                else:
                    d[k] = create(v)
            return [list(d.items()) for d in buckets]

        map_out = self._run_stage(map_task, parent_parts, "shuffle-map")

        # Driver-side exchange: regroup bucket b from every map task.
        shuffle_parts = [
            Partition(
                b, [pair for mp in map_out for pair in mp.data[b]]
            )
            for b in range(n)
        ]

        def reduce_task(_index: int, items: List[Any]) -> List[Any]:
            merged: dict = {}
            for k, combiner in items:
                if k in merged:
                    merged[k] = merge_combiners(merged[k], combiner)
                else:
                    merged[k] = combiner
            return list(merged.items())

        return self._run_stage(reduce_task, shuffle_parts, "shuffle-reduce")

    def _compute_range_partition(
        self, rdd: RangePartitionedRDD
    ) -> List[Partition]:
        parent_parts = self.materialize(rdd.parent)
        n = rdd.num_partitions()
        key_fn = rdd.key_fn
        ascending = rdd.ascending

        # Sample keys in the driver to pick range boundaries, as
        # Spark's RangePartitioner does with its sampling job.
        sample_keys: List[Any] = []
        for p in parent_parts:
            stride = max(1, len(p.data) // max(1, 32 * n // max(1, len(parent_parts))))
            sample_keys.extend(key_fn(x) for x in p.data[::stride])
        sample_keys.sort()
        boundaries = [
            sample_keys[(i + 1) * len(sample_keys) // n]
            for i in range(n - 1)
            if sample_keys
        ]

        def map_task(_index: int, items: List[Any]) -> List[Any]:
            buckets: List[List[Any]] = [[] for _ in range(n)]
            for x in items:
                b = bisect.bisect_right(boundaries, key_fn(x)) if boundaries else 0
                if not ascending:
                    b = n - 1 - b
                buckets[b].append(x)
            return buckets

        map_out = self._run_stage(map_task, parent_parts, "range-map")
        shuffle_parts = [
            Partition(b, [x for mp in map_out for x in mp.data[b]])
            for b in range(n)
        ]

        def reduce_task(_index: int, items: List[Any]) -> List[Any]:
            return sorted(items, key=key_fn, reverse=not ascending)

        return self._run_stage(reduce_task, shuffle_parts, "range-sort")
