"""Figure 3 (bottom row): Interpolation Join scaling.

Paper: the windowed join costs roughly an order of magnitude more
than the natural join at equal rows, grows linearly in rows (left
panel), and strong-scales with diminishing returns from 1 to 10 nodes
at 16M rows (right panel). Scaled here to 5k–40k left rows with a
2-second window over per-node sample streams, on the simulated cluster
(single-core machine; see bench_fig3_natural_join for the timing
model).
"""

from __future__ import annotations

import pytest

from repro import SJContext, ScrubJayDataset, default_dictionary
from repro.core.combinations import InterpolationJoin, NaturalJoin
from repro.datagen.synthetic import (
    KEYED_LEFT_SCHEMA,
    KEYED_RIGHT_SCHEMA,
    TIMED_LEFT_SCHEMA,
    TIMED_RIGHT_SCHEMA,
    keyed_tables,
    timed_tables,
)

ROW_COUNTS = [5_000, 10_000, 20_000, 40_000]
WORKER_COUNTS = [1, 2, 4, 8, 10]
STRONG_SCALING_ROWS = 40_000
WINDOW = 2.0
PARTITIONS = 20

_DICT = default_dictionary()


@pytest.fixture(scope="module")
def tables():
    # per-size generation keeps the same per-key sample density
    return {n: timed_tables(n, num_keys=64) for n in ROW_COUNTS}


@pytest.fixture(scope="module")
def rows_recorder(recorder_factory):
    return recorder_factory("fig3c_interp_join_rows", "rows", "sim_seconds")


@pytest.fixture(scope="module")
def scaling_recorder(recorder_factory):
    return recorder_factory(
        "fig3d_interp_join_strong_scaling", "workers", "sim_seconds"
    )


def _run_join(workers, left_rows, right_rows):
    # broadcast_threshold=0 pins the bin-shuffle path these panels
    # measure; the adaptive bin broadcast is covered by its own tests
    with SJContext(
        executor="simulated", num_workers=workers,
        default_parallelism=PARTITIONS, broadcast_threshold=0,
    ) as ctx:
        left = ScrubJayDataset.from_rows(
            ctx, left_rows, TIMED_LEFT_SCHEMA, "left", PARTITIONS
        )
        right = ScrubJayDataset.from_rows(
            ctx, right_rows, TIMED_RIGHT_SCHEMA, "right", PARTITIONS
        )
        ctx.executor.reset()
        count = InterpolationJoin(WINDOW).apply(left, right, _DICT).count()
        return ctx.executor.simulated_elapsed, count


@pytest.mark.parametrize("num_rows", ROW_COUNTS)
def test_fig3c_time_vs_rows(benchmark, tables, rows_recorder, num_rows):
    left, right = tables[num_rows]
    sim_s, count = benchmark.pedantic(
        _run_join, args=(10, left, right), rounds=1, iterations=1
    )
    # the generator guarantees every left row a right sample in-window
    assert count == len(left)
    benchmark.extra_info["sim_seconds"] = sim_s
    rows_recorder.add(num_rows, sim_s, "10 workers (simulated)")


def test_fig3c_shape_is_linear(benchmark, rows_recorder, shape):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # shape check only
    xs = [x for x, _y, _n in rows_recorder.rows]
    ys = [y for _x, y, _n in rows_recorder.rows]
    assert len(xs) == len(ROW_COUNTS)
    shape.assert_roughly_linear(xs, ys)


def test_fig3c_costlier_than_natural_join(benchmark, tables):
    """The paper's panels put the interpolation join roughly an order
    of magnitude above the natural join at equal row counts; demand at
    least a conservative multiple here."""
    from repro.util import Timer

    n = 20_000

    def compare():
        # same execution strategy for both joins: broadcast off, so the
        # comparison measures the algorithms, not the optimizer
        with SJContext(executor="serial", broadcast_threshold=0) as ctx:
            kl, kr = keyed_tables(n, num_keys=64)
            left = ScrubJayDataset.from_rows(ctx, kl, KEYED_LEFT_SCHEMA, "l")
            right = ScrubJayDataset.from_rows(ctx, kr, KEYED_RIGHT_SCHEMA, "r")
            with Timer() as tn:
                NaturalJoin().apply(left, right, _DICT).count()
            tl, tr = tables[n]
            ileft = ScrubJayDataset.from_rows(ctx, tl, TIMED_LEFT_SCHEMA, "l")
            iright = ScrubJayDataset.from_rows(
                ctx, tr, TIMED_RIGHT_SCHEMA, "r"
            )
            with Timer() as ti:
                InterpolationJoin(WINDOW).apply(ileft, iright, _DICT).count()
        return tn.elapsed, ti.elapsed

    natural_s, interp_s = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info["natural_s"] = natural_s
    benchmark.extra_info["interp_s"] = interp_s
    assert interp_s > 2.0 * natural_s


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_fig3d_strong_scaling(benchmark, tables, scaling_recorder, workers):
    left, right = tables[STRONG_SCALING_ROWS]
    sim_s, count = benchmark.pedantic(
        _run_join, args=(workers, left, right), rounds=1, iterations=1
    )
    assert count == len(left)
    benchmark.extra_info["sim_seconds"] = sim_s
    scaling_recorder.add(workers, sim_s, f"{STRONG_SCALING_ROWS} rows")


def test_fig3d_shape_speedup(benchmark, scaling_recorder):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # shape check only
    times = {x: y for x, y, _n in scaling_recorder.rows}
    assert len(times) == len(WORKER_COUNTS)
    # the paper's panel: ~240 s at 1 node to ~95 s at 10 (≈2.5×)
    assert times[10] < times[1] / 1.3
    assert times[10] > times[1] / 10.0
