#!/usr/bin/env python3
"""Quickstart: from raw CSV files to an automatically derived relation.

Walks the full ScrubJay loop on a tiny, readable dataset:

1. write two raw "monitoring" CSVs (a job log and a per-node sensor
   feed) the way different tools would produce them;
2. annotate each file with semantics (relation type / dimension /
   units) and register them in a session;
3. ask a *logical* query — "application names over jobs, temperature
   over compute nodes" — and let the derivation engine figure out the
   explodes and joins;
4. execute the plan, print the derived rows and the reproducible JSON.

Run: python examples/quickstart.py
"""

import os
import tempfile

from repro import DOMAIN, VALUE, Schema, ScrubJaySession, SemanticType

JOBS_CSV = """\
job_id,job_name,nodelist,timespan
1,AMG,0;1,0.0..600.0
2,LULESH,2,120.0..720.0
3,Kripke,0;2,700.0..1300.0
"""

SENSOR_CSV = """\
node,time,temp
0,60.0,21.5
0,180.0,24.0
0,300.0,27.5
1,60.0,20.9
1,180.0,23.1
1,300.0,26.0
2,240.0,22.4
2,360.0,25.2
2,800.0,28.9
"""

JOBS_SCHEMA = Schema({
    "job_id": SemanticType(DOMAIN, "jobs", "identifier"),
    "job_name": SemanticType(VALUE, "applications", "label"),
    "nodelist": SemanticType(DOMAIN, "compute nodes", "list<identifier>"),
    "timespan": SemanticType(DOMAIN, "time", "timespan"),
})

SENSOR_SCHEMA = Schema({
    "node": SemanticType(DOMAIN, "compute nodes", "identifier"),
    "time": SemanticType(DOMAIN, "time", "datetime"),
    "temp": SemanticType(VALUE, "temperature", "degrees Celsius"),
})


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="scrubjay-quickstart-")
    jobs_path = os.path.join(workdir, "job_log.csv")
    sensors_path = os.path.join(workdir, "node_temps.csv")
    with open(jobs_path, "w") as f:
        f.write(JOBS_CSV)
    with open(sensors_path, "w") as f:
        f.write(SENSOR_CSV)

    with ScrubJaySession() as sj:
        # 1-2: annotate + ingest as lazily scanned datasets (rows are
        # decoded inside workers, and query restrictions push into the
        # scan)
        sj.ingest().csv(jobs_path, JOBS_SCHEMA).register("job_log")
        sj.ingest().csv(sensors_path, SENSOR_SCHEMA).register("node_temps")

        # 3: a logical query — no table names, no join keys
        plan = (
            sj.query()
            .across("jobs", "compute nodes")
            .values("applications", "temperature")
            .plan()
        )
        print("derivation sequence the engine found:")
        print(plan.describe())

        # 4: execute and inspect — look fields up by *dimension*, since
        # the engine picks the join orientation (and hence field names)
        result = sj.execute(plan)
        node_f = result.schema.domain_field("compute nodes")
        time_f = result.schema.domain_field("time")
        print(f"\nderived rows ({result.count()}):")
        for row in sorted(
            result.collect(),
            key=lambda r: (r["job_id"], r[node_f], r[time_f]),
        )[:8]:
            print(
                f"  job {row['job_id']} ({row['job_name']:>7}) on node "
                f"{row[node_f]} at t={row[time_f].epoch:6.1f}s: "
                f"{row['temp']:.2f} °C"
            )

        # the same pipeline as shareable, editable JSON
        plan_path = os.path.join(workdir, "plan.json")
        sj.save_plan(plan, plan_path)
        print(f"\nreproducible plan written to {plan_path}")
        reloaded = sj.load_plan(plan_path)
        assert sj.execute(reloaded).count() == result.count()
        print("reloaded plan re-executes identically ✓")


if __name__ == "__main__":
    main()
