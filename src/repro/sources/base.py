"""The DataSource protocol: partitioned, predicate-aware ingestion.

A *data source* is the scan-pipeline successor to the removed eager
``DataWrapper`` shims: instead of materializing the whole source as a
driver-side row list, it exposes

- ``schema()`` — the semantic annotation of the rows it produces;
- ``partitions()`` — cheap driver-side descriptors (store partition
  keys, CSV byte-ranges, SQL rowid ranges) that map 1:1 onto
  :class:`~repro.rdd.rdd.ScanRDD` partitions;
- ``read_partition(i, columns, predicate)`` — the worker-side read:
  decode only partition ``i``, project to ``columns`` and filter by
  ``predicate`` as close to the bytes as the format allows.

``prune(predicate)`` runs driver-side before tasks are launched and
returns a :class:`ScanSelection` — which partitions can possibly hold
matching rows. Sources that cannot prune return everything; pruning
must be conservative (never drop a partition that could match).

Sources must be picklable: ``read_partition`` executes inside worker
processes under the process executor.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.semantics import Schema
from repro.sources.predicate import ColumnPredicate


@dataclass(frozen=True)
class ScanSelection:
    """Result of driver-side pruning: which partitions to scan."""

    #: indices into ``source.partitions()`` that survived pruning
    indices: Tuple[int, ...]
    #: total partitions before pruning
    total: int
    #: free-form evidence (e.g. {"pruned_by": "partition-key"})
    notes: Dict[str, Any] = field(default_factory=dict)

    @property
    def skipped(self) -> int:
        return self.total - len(self.indices)


class DataSource(ABC):
    """Partitioned lazy reader for one external dataset."""

    #: analyst-facing name; set by the ingest builder at registration
    name: str = "source"

    @abstractmethod
    def schema(self) -> Schema:
        """Semantic schema of the rows this source produces."""

    @abstractmethod
    def partitions(self) -> Sequence[Any]:
        """Driver-side partition descriptors (cheap; no data reads)."""

    @abstractmethod
    def read_partition(
        self,
        index: int,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[ColumnPredicate] = None,
    ) -> List[Dict[str, Any]]:
        """Read one partition worker-side, projected and filtered.

        ``columns=None`` means all schema fields. The predicate must be
        applied exactly (``predicate.matches`` row semantics) — callers
        rely on pushed scans returning identical rows to
        scan-then-filter.
        """

    # -- optional refinements ------------------------------------------

    def num_partitions(self) -> int:
        return len(self.partitions())

    def prune(self, predicate: Optional[ColumnPredicate]) -> ScanSelection:
        """Driver-side partition pruning; conservative by default."""
        total = self.num_partitions()
        return ScanSelection(tuple(range(total)), total)

    def read_partition_stats(
        self,
        index: int,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[ColumnPredicate] = None,
    ) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
        """Like :meth:`read_partition`, plus physical-read statistics.

        The stats dict feeds the ``scan.*`` metrics:
        ``rows_read`` (rows examined out of storage, pre-predicate),
        ``bytes_scanned``, and optionally ``segments_read`` /
        ``segments_skipped``. The default wraps ``read_partition`` and
        can only report post-filter row counts — sources should
        override to report honest physical numbers.
        """
        rows = self.read_partition(index, columns, predicate)
        return rows, {"rows_read": len(rows), "bytes_scanned": 0}

    def read_partition_batches_stats(
        self,
        index: int,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[ColumnPredicate] = None,
    ) -> Tuple[List[Any], Dict[str, Any]]:
        """Columnar read: one partition as
        :class:`~repro.columnar.batch.ColumnBatch` elements, plus the
        same stats dict as :meth:`read_partition_stats`.

        The default pivots the row read into a single batch, so every
        source is batch-capable; sources whose storage is already
        column-shaped (the wide-column store) override this to decode
        without the row detour.
        """
        from repro.columnar import ColumnBatch

        rows, stats = self.read_partition_stats(index, columns, predicate)
        batches = [ColumnBatch.from_rows(rows)] if rows else []
        return batches, stats

    # -- append capability (streaming feeds) ---------------------------
    #
    # An *appendable* source exposes a monotonic integer offset over
    # its committed contents (bytes past the CSV header, sealed store
    # segments, pushed feed rows). ``append_scan(since, until)``
    # returns exactly the rows committed in ``[since, until)`` plus
    # the offset actually reached; offsets returned here are always
    # *committed record boundaries*, so re-scanning from a returned
    # offset never re-delivers or splits a row. Feeds build their
    # exactly-once-per-watermark guarantee on that property.

    def supports_append(self) -> bool:
        """Whether this source can be tailed as a growing feed."""
        return False

    def current_offset(self) -> int:
        """The committed end offset right now (monotonic integer)."""
        from repro.errors import FeedError

        raise FeedError(
            f"{type(self).__name__} ({self.name!r}) is not appendable"
        )

    def append_scan(
        self,
        since_offset: Optional[int] = None,
        until_offset: Optional[int] = None,
    ) -> Tuple[List[Dict[str, Any]], int]:
        """Rows committed in ``[since_offset, until_offset)``.

        ``since_offset=None`` starts from the beginning of the data;
        ``until_offset=None`` reads to the current committed end.
        Returns ``(rows, new_offset)`` where ``new_offset`` is the
        committed boundary actually reached (pass it back as the next
        ``since_offset``). Raises
        :class:`~repro.errors.FeedRewoundError` when ``since_offset``
        lies beyond the source's current end (truncation/rewrite).
        """
        from repro.errors import FeedError

        raise FeedError(
            f"{type(self).__name__} ({self.name!r}) is not appendable"
        )

    def refresh(self) -> None:
        """Drop any cached layout so new appends become visible to
        ``partitions()``/``read_partition``. No-op by default."""

    def bounded(self, offset: int) -> "DataSource":
        """A frozen snapshot source over ``[0, offset)``.

        Used by feed-pinned execution (subscription refreshes, scoped
        replay) so an answer computed "at watermark *w*" never reads
        rows a concurrent writer appended past *w*. The default
        materializes the prefix through :meth:`append_scan` into a
        rows-backed snapshot; sources with a cheap native bound (CSV
        byte ranges) override.
        """
        from repro.sources.rows_source import RowsSource

        rows, _ = self.append_scan(None, offset)
        snap = RowsSource(rows, self.schema(), name=self.name)
        snap.name = self.name
        return snap

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def project_row(
    row: Dict[str, Any], columns: Optional[Sequence[str]]
) -> Dict[str, Any]:
    """Project a row to ``columns`` (None = keep everything)."""
    if columns is None:
        return row
    return {k: v for k, v in row.items() if k in columns}
