"""Regression tests for the interpolated percentile.

The old nearest-rank implementation was degenerate on small samples:
p95/p99 of two samples jumped straight to the max, and a single sample
reported itself for every percentile only by accident of rounding.
"""

from __future__ import annotations

import pytest

from repro.serve.metrics import ServiceMetrics, percentile


def test_empty_returns_none():
    assert percentile([], 50) is None


def test_single_sample_every_percentile():
    for p in (0, 1, 50, 95, 99, 100):
        assert percentile([0.25], p) == 0.25


def test_two_samples_interpolate():
    data = [1.0, 3.0]
    assert percentile(data, 50) == 2.0
    assert percentile(data, 95) == pytest.approx(1.0 + 0.95 * 2.0)
    assert percentile(data, 99) == pytest.approx(1.0 + 0.99 * 2.0)
    # the old nearest-rank returned 3.0 (the max) for both


def test_bounds_clamp():
    data = [1.0, 2.0, 3.0]
    assert percentile(data, 0) == 1.0
    assert percentile(data, -5) == 1.0
    assert percentile(data, 100) == 3.0
    assert percentile(data, 200) == 3.0


def test_quartiles_of_five():
    data = [10.0, 20.0, 30.0, 40.0, 50.0]
    assert percentile(data, 25) == 20.0
    assert percentile(data, 50) == 30.0
    assert percentile(data, 75) == 40.0
    assert percentile(data, 90) == pytest.approx(46.0)


def test_snapshot_small_sample_percentiles():
    m = ServiceMetrics()
    m.record_submitted()
    m.record_completed(0.1)
    snap = m.snapshot()
    assert snap.latency_s["p50"] == pytest.approx(0.1)
    assert snap.latency_s["p99"] == pytest.approx(0.1)
    assert snap.latency_s["samples"] == 1.0

    m.record_completed(0.3)
    snap = m.snapshot()
    assert snap.latency_s["p50"] == pytest.approx(0.2)
    assert snap.latency_s["p95"] < 0.3  # no jump-to-max at n=2
    assert snap.latency_s["max"] == pytest.approx(0.3)
