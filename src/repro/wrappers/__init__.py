"""Unwrappers and the semantic value codec (paper §5.4).

An *unwrapper* converts a ScrubJay dataset back into a storage format
for sharing or analysis with other tools — CSV files, SQL tables, or
the wide-column NoSQL store. The eager ``*Wrapper`` ingestion shims
that used to live here are gone; ingestion goes through
:mod:`repro.sources` (``session.ingest().csv/sql/table/rows``), which
reads lazily with partitioning and pushdown.
"""

from repro.wrappers.base import Unwrapper
from repro.wrappers.csv_io import CSVUnwrapper
from repro.wrappers.sql_io import SQLUnwrapper
from repro.wrappers.nosql_io import NoSQLUnwrapper

__all__ = [
    "Unwrapper",
    "CSVUnwrapper",
    "SQLUnwrapper",
    "NoSQLUnwrapper",
]
