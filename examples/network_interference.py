#!/usr/bin/env python3
"""Future-work case study (paper conclusion): application behaviour vs
network and filesystem utilization.

The paper's introduction sketches the diagnosis this enables: "high
network counter values may indicate a congested network due to a
sudden increase in nodes contacting a parallel filesystem server ...
due to multiple applications entering their checkpoint phases
simultaneously." Its conclusion names network interference as the next
target for ScrubJay.

This example simulates a facility with a node/leaf/core network, link
byte counters, and two parallel-filesystem servers, then uses the same
derivation engine — untouched — to answer two brand-new queries:

1. which applications push the most traffic through their uplinks;
2. which filesystem servers queue up, and who is running when they do.

Run: python examples/network_interference.py
"""

from collections import defaultdict

from repro import ScrubJaySession, TuningProfile
from repro.analysis import rank_groups
from repro.datagen.facility import FacilityConfig
from repro.datagen.network import generate_dat3


def main() -> None:
    print("simulating facility + network + parallel filesystem...")
    dat = generate_dat3(
        facility_config=FacilityConfig(num_racks=4, nodes_per_rack=4),
        duration=3600.0,
        counter_period=15.0,
    )

    with ScrubJaySession(
        TuningProfile(interpolation_window=30.0)
    ) as sj:
        dat.register(sj)
        print(f"registered datasets: {', '.join(sorted(sj.schemas()))}\n")

        # ------------------------------------------------------------------
        # query 1: applications × network link traffic
        # ------------------------------------------------------------------
        plan = (sj.query().across("jobs", "network links")
                .values("applications", "link bytes per time").plan())
        print("derivation sequence for {jobs, links} → "
              "{applications, byte rates}:")
        print(plan.describe())

        net = sj.execute(plan).persist()
        print(f"\nderived {net.count()} (job-instant × link) rows")
        print("\nmean uplink traffic per application:")
        for (app,), rate in rank_groups(net, ["job_name"],
                                        "bytes_rate", "mean"):
            print(f"  {app:>9}: {rate / 1e6:8.1f} MB/s")

        # ------------------------------------------------------------------
        # query 2: applications × filesystem pressure
        # ------------------------------------------------------------------
        plan2 = (sj.query().across("jobs", "filesystems")
                 .values("applications", "pending operations").plan())
        print("\nderivation sequence for {jobs, filesystems} → "
              "{applications, pending ops}:")
        print(plan2.describe())

        fs = sj.execute(plan2).persist()
        rows = [r for r in fs.collect() if "pending_ops" in r]
        values = [r["pending_ops"] for r in rows]
        mean = sum(values) / len(values)
        peak = max(values)
        print(f"\nfilesystem queue depth: mean {mean:.2f}, peak "
              f"{peak:.2f} ({peak / mean:.1f}× — checkpoint congestion)")

        # who was on the congested server at the spikes?
        spike_apps = defaultdict(int)
        for r in rows:
            if r["pending_ops"] > 0.6 * peak:
                spike_apps[(r["job_name"], r["fs_server"])] += 1
        print("\napplications present during congestion spikes "
              "(app, fs server → spike samples):")
        for (app, server), n in sorted(spike_apps.items(),
                                       key=lambda kv: -kv[1])[:5]:
            print(f"  {app:>9} on fs{server}: {n}")
        print(
            "\ncheckpointing applications (AMG/LULESH/Kripke/Qbox "
            "profiles) drive\nthe spikes; co-located quiet workloads "
            "merely observe them — the\ninterference pattern the paper "
            "describes."
        )


if __name__ == "__main__":
    main()
