"""Semantic cache keys for the serve layer.

Both serve-layer caches key on *meaning*, not on request text: two
clients asking for the same dimensions in a different order, or the
same query issued before and after an unrelated log line, must hit the
same entry. The key of a planning problem is the content fingerprint
of

- the session ``state_fingerprint()`` — catalog schemas, dictionary
  version, registered derivation ops (everything Algorithm 1's
  schema-only search reads), and
- the *normalized* query — domains and value terms sorted, so
  permuted but logically identical queries collapse.

Result keys additionally fold in the catalog data version: a plan
stays valid when a dataset is dropped and re-registered with the same
schema but different rows — its cached *result* does not.
"""

from __future__ import annotations

from repro.core.query import Query
from repro.util.hashing import content_hash


def normalize_query(query: Query) -> Query:
    """Canonical field order: a query is a *set* of dimensions (paper
    §5.1), so domain/value order must not affect cache identity.
    Filters are a conjunction, so their order is canonicalized too;
    an empty filter tuple serializes to the pre-filter JSON form,
    keeping historical keys stable."""
    return Query(
        tuple(sorted(query.domains)),
        tuple(
            sorted(
                query.values,
                key=lambda t: (t.dimension, t.units or ""),
            )
        ),
        tuple(
            sorted(
                query.filters,
                key=lambda f: repr(f.to_json_dict()),
            )
        ),
        # metric terms: a measure set and per-dims are sets too; the
        # grain is already canonical (seconds). Plain queries carry
        # empty tuples and keep their historical keys.
        tuple(
            sorted(
                query.measures,
                key=lambda m: (m.dimension, m.how, m.window or 0.0),
            )
        ),
        tuple(sorted(query.per)),
        query.grain,
    )


def plan_key(state_fingerprint: str, query: Query) -> str:
    """Cache key for the derivation-engine search itself."""
    return content_hash({
        "state": state_fingerprint,
        "query": normalize_query(query).to_json_dict(),
    })


def result_key(
    plan_fingerprint: str,
    state_fingerprint: str,
    catalog_version: int,
    data_versions=None,
) -> str:
    """Cache key for a materialized query result.

    ``data_versions`` — the *non-zero* per-dataset feed versions of
    the plan's inputs (:meth:`repro.session.ScrubJaySession.
    data_versions`) — lets a feed advance re-key only queries reading
    that dataset, without the fleet-wide churn of bumping
    ``catalog_version``. An empty/absent mapping hashes to the
    pre-streaming key form, keeping historical keys stable.
    """
    payload = {
        "plan": plan_fingerprint,
        "state": state_fingerprint,
        "catalog_version": catalog_version,
    }
    if data_versions:
        payload["data_versions"] = dict(sorted(data_versions.items()))
    return content_hash(payload)
