"""Timestamp / TimeSpan behaviour, including explode semantics."""

import pytest

from repro.units.temporal import Timestamp, TimeSpan


def test_timestamp_ordering_and_arithmetic():
    a, b = Timestamp(10.0), Timestamp(25.0)
    assert a < b
    assert b - a == 15.0
    assert (a + 5.0) == Timestamp(15.0)
    assert (b - 5.0) == Timestamp(20.0)
    assert a.distance(b) == b.distance(a) == 15.0


def test_timestamp_iso_round_trip():
    t = Timestamp.from_iso("2017-03-27T16:43:27")
    assert Timestamp.from_iso(t.to_iso()) == t


def test_timestamp_hashable():
    assert len({Timestamp(1.0), Timestamp(1.0), Timestamp(2.0)}) == 2


def test_timespan_duration_contains():
    s = TimeSpan(100.0, 160.0)
    assert s.duration == 60.0
    assert s.contains(Timestamp(100.0))
    assert s.contains(159.999)
    assert not s.contains(160.0)  # half-open
    assert not s.contains(99.0)


def test_timespan_rejects_negative():
    with pytest.raises(ValueError):
        TimeSpan(10.0, 5.0)


def test_timespan_overlap_and_intersect():
    a = TimeSpan(0, 100)
    b = TimeSpan(50, 150)
    c = TimeSpan(100, 200)
    assert a.overlaps(b)
    assert not a.overlaps(c)  # half-open: touching spans don't overlap
    assert a.intersect(b) == TimeSpan(50, 100)
    with pytest.raises(ValueError):
        a.intersect(c)


def test_explode_includes_start_excludes_end():
    stamps = TimeSpan(0.0, 600.0).explode(120.0)
    assert stamps[0] == Timestamp(0.0)
    assert stamps[-1] == Timestamp(480.0)
    assert len(stamps) == 5


def test_explode_non_divisible_period():
    stamps = TimeSpan(0.0, 100.0).explode(30.0)
    assert [s.epoch for s in stamps] == [0.0, 30.0, 60.0, 90.0]


def test_explode_zero_length_span():
    assert TimeSpan(5.0, 5.0).explode(60.0) == [Timestamp(5.0)]


def test_explode_rejects_bad_period():
    with pytest.raises(ValueError):
        TimeSpan(0, 10).explode(0)


def test_explode_no_float_drift():
    # naive accumulation (t += 0.1) would drift; multiplication must not
    stamps = TimeSpan(0.0, 10.0).explode(0.1)
    assert len(stamps) == 100
    assert stamps[73].epoch == pytest.approx(7.3, abs=1e-12)


def test_midpoint():
    assert TimeSpan(0, 10).midpoint() == Timestamp(5.0)
