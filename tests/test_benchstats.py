"""Adaptive benchmark-timing statistics (repro.util.benchstats)."""

from __future__ import annotations

import math

import pytest

from repro.util.benchstats import TimingResult, measure, summarize, t_critical


def test_t_critical_matches_table_endpoints():
    assert t_critical(1) == pytest.approx(12.706)
    assert t_critical(2) == pytest.approx(4.303)
    assert t_critical(30) == pytest.approx(2.042)
    # beyond the table: the normal approximation
    assert t_critical(31) == pytest.approx(1.960)
    assert t_critical(10_000) == pytest.approx(1.960)
    assert t_critical(0) == float("inf")


def test_summarize_interval_math():
    samples = [1.0, 2.0, 3.0]
    r = summarize(samples)
    assert r.mean == pytest.approx(2.0)
    assert r.std == pytest.approx(1.0)
    half = t_critical(2) * 1.0 / math.sqrt(3)
    assert r.ci_low == pytest.approx(2.0 - half)
    assert r.ci_high == pytest.approx(2.0 + half)
    assert r.rel_halfwidth == pytest.approx(half / 2.0)
    assert r.best == 1.0
    assert r.repeats == 3


def test_summarize_single_sample_never_converged():
    r = summarize([0.5])
    assert r.mean == 0.5
    assert r.rel_halfwidth == float("inf")
    assert not r.converged


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize([])


def test_as_dict_carries_ci_bounds():
    d = summarize([1.0, 1.1, 0.9]).as_dict()
    assert len(d["ci"]) == 2
    assert d["ci"][0] <= d["mean_seconds"] <= d["ci"][1]
    assert d["repeats"] == 3
    assert d["samples"] == [1.0, 1.1, 0.9]
    assert "converged" in d and "rel_ci_halfwidth" in d


def test_measure_stops_early_when_tight():
    calls = {"n": 0}

    def sample():
        calls["n"] += 1
        return 1.0  # zero variance: CI collapses immediately

    r = measure(sample, min_repeats=3, max_repeats=30, warmup=2)
    assert r.converged
    assert r.repeats == 3
    assert calls["n"] == 5  # 2 warmup + 3 measured


def test_measure_runs_to_cap_when_noisy():
    seq = iter([1.0, 100.0] * 50)  # hopeless variance

    def sample():
        return next(seq)

    r = measure(sample, min_repeats=3, max_repeats=7, warmup=0)
    assert not r.converged
    assert r.repeats == 7
    assert r.rel_halfwidth > 0.05


def test_measure_wall_clocks_none_returning_fn():
    def sample():
        return None  # timed here rather than self-timed

    r = measure(sample, min_repeats=3, max_repeats=5, rel_ci=10.0,
                warmup=0)
    assert all(s >= 0.0 for s in r.samples)


def test_measure_validates_bounds():
    with pytest.raises(ValueError):
        measure(lambda: 1.0, min_repeats=1)
    with pytest.raises(ValueError):
        measure(lambda: 1.0, min_repeats=5, max_repeats=4)


def test_timing_result_best_property():
    r = TimingResult([3.0, 1.0, 2.0], 2.0, 1.0, 1.0, 3.0, 0.5, False)
    assert r.best == 1.0
    assert r.repeats == 3
