"""The derivation engine (paper §5.2, Algorithm 1).

Finding a derivation sequence that satisfies a query is framed as a
constraint-satisfaction search whose variables are derivations and
datasets and whose sequence length is unbounded. Running real
derivations inside the search would be hopeless — a single combination
can take minutes on large data — so the engine searches over *schemas
only* (derivations expose schema-level ``applies``/``derive_schema``,
both near-constant time), prunes aggressively, prefers short
sequences (interpolation and aggregation lose precision, so fewer
steps means higher-precision results), and memoizes the
``CombineSet``/``CombinePair`` results it has already computed.

The search mirrors Algorithm 1:

1. compute the transformation closure of every catalog schema
   (bounded depth — the candidate datasets reachable by
   transformations alone);
2. if a queried domain dimension appears in no dataset, there is *no
   solution*: combinations and transformations can never infer new
   domain dimensions;
3. if a single dataset's closure satisfies the query, return the
   shortest such plan;
4. otherwise search subsets of datasets in increasing size (the
   "smallest set of datasets containing the queried dimensions,
   then add remaining datasets one at a time" loop), combining each
   subset with ``CombineSet`` — pairwise combinations through a
   sequence of transformations and a single combination per pair —
   and return the first (shortest) satisfying plan.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.errors import NoSolutionError, QueryError
from repro.core.combinations import InterpolationJoin, NaturalJoin
from repro.core.derivation import (
    DerivationRegistry,
    GLOBAL_REGISTRY,
    Transformation,
)
from repro.core.dictionary import SemanticDictionary
from repro.core.pipeline import (
    CombineNode,
    DerivationPlan,
    LoadNode,
    PlanNode,
    TransformNode,
)
from repro.core.pushdown import push_down_plan
from repro.core.query import Query
from repro.core.semantics import DOMAIN, VALUE, Schema
from repro.core.transformations import (
    ConvertUnits,
    ExplodeContinuous,
    FilterEquals,
    FilterRange,
)


@dataclass(frozen=True)
class EngineConfig:
    """Search-space bounds and data-alignment defaults.

    Frozen: nothing mutates an ``EngineConfig`` in place. Knob changes
    go through the session's :class:`~repro.config.TuningProfile`,
    which replaces ``engine.config`` wholesale — the tuner is the
    single writer (see DESIGN.md "Self-tuning & configuration").
    """

    #: transformation-closure depth per dataset before a combination
    max_transform_depth: int = 3
    #: transformation-closure depth applied after each combination
    post_combine_depth: int = 2
    #: candidates kept per dataset/subset (shortest first)
    max_candidates: int = 24
    #: maximum number of datasets combined to answer one query
    max_datasets: int = 4
    #: window (seconds) for engine-inserted interpolation joins
    interpolation_window: float = InterpolationJoin.DEFAULT_WINDOW
    #: sampling period (seconds) for engine-inserted continuous explodes
    explode_period: float = ExplodeContinuous.DEFAULT_PERIOD
    #: rewrite solved plans so filters collapse into the leaf scans
    pushdown: bool = True
    #: let the pushdown rewrite also prune scanned columns
    projection: bool = True
    #: execute plans over ColumnBatch kernels where operators support
    #: them (row-path fallback per operator otherwise)
    columnar: bool = False
    #: operators excluded from columnar kernels even when ``columnar``
    #: is on (forced to the row path); the tuner adds an operator here
    #: when its kernel keeps falling back anyway
    columnar_off_ops: Tuple[str, ...] = ()


@dataclass
class Candidate:
    """A reachable (schema, plan) pair during the search."""

    schema: Schema
    plan: PlanNode
    steps: int


#: counter taxonomy for one solve (see DESIGN.md "Observability")
_ZERO_SOLVE_STATS: Dict[str, int] = {
    "candidates_explored": 0,  # distinct (schema, plan) pairs reached
    "candidates_pruned": 0,    # dropped by the max_candidates bound
    "instantiations": 0,       # transformation instances tried
    "pair_memo_hits": 0,       # CombinePair recipe memo hits
    "pair_memo_misses": 0,
    "subsets_examined": 0,     # dataset subsets walked by CombineSet
    "max_subset_size": 0,      # largest subset size reached
}


class DerivationEngine:
    """Plans derivation sequences satisfying queries over a catalog."""

    def __init__(
        self,
        dictionary: SemanticDictionary,
        registry: Optional[DerivationRegistry] = None,
        config: Optional[EngineConfig] = None,
    ) -> None:
        self.dictionary = dictionary
        self.registry = registry or GLOBAL_REGISTRY
        self.config = config or EngineConfig()
        # Cross-query memoization (paper: cache CombinePair/CombineSet
        # results at runtime). Keyed by schema fingerprints, so results
        # persist across queries over the same catalog.
        self._pair_memo: Dict[Tuple[str, str], List[Tuple]] = {}
        # One search at a time per engine: the schema-only search is
        # pure-Python CPU work (the GIL serializes it anyway) and the
        # memo tables are not safe to grow from two threads at once.
        # Concurrent callers — the serve-layer QueryService — queue
        # here only on plan-cache misses.
        self._solve_lock = threading.RLock()
        # Observability: the session wires the context's shared tracer
        # and registry in; per-solve search counters always accumulate
        # (plain int bumps, trivial next to schema derivation) and land
        # on the solve span / in the registry / in last_solve_stats.
        self.tracer = None
        self.metrics = None
        self._stats: Dict[str, int] = dict(_ZERO_SOLVE_STATS)
        #: counters from the most recent solve (explored, pruned,
        #: memo hits, subsets, ...) — read by EXPLAIN ANALYZE
        self.last_solve_stats: Dict[str, int] = {}

    def _bump(self, key: str, n: int = 1) -> None:
        self._stats[key] += n

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def solve(
        self, catalog: Mapping[str, Schema], query: Query
    ) -> DerivationPlan:
        """Find the shortest derivation sequence satisfying ``query``.

        Raises :class:`~repro.errors.NoSolutionError` when no sequence
        exists within the configured search bounds.
        """
        with self._solve_lock:
            self._stats = dict(_ZERO_SOLVE_STATS)
            tracer = self.tracer
            try:
                if tracer is not None and tracer.enabled:
                    with tracer.span(
                        "solve", kind="solve", query=str(query)
                    ) as span:
                        try:
                            plan = self._solve(catalog, query)
                            span.set("plan_steps", plan.num_steps())
                            return plan
                        finally:
                            for k, v in self._stats.items():
                                span.add(k, v)
                return self._solve(catalog, query)
            finally:
                self.last_solve_stats = dict(self._stats)
                if self.metrics is not None:
                    self.metrics.inc("engine.solves")
                    counts = dict(self._stats)
                    # a high-water mark, not additive across solves
                    depth = counts.pop("max_subset_size", 0)
                    self.metrics.merge_counts(
                        counts, prefix="engine.solve."
                    )
                    self.metrics.set_gauge(
                        "engine.solve.max_subset_size", depth
                    )

    def _solve(
        self, catalog: Mapping[str, Schema], query: Query
    ) -> DerivationPlan:
        query.validate(self.dictionary)
        if not catalog:
            raise NoSolutionError("the catalog is empty")

        # Step 2 of the docstring: domain dimensions cannot be inferred.
        available_domains = set()
        for schema in catalog.values():
            available_domains |= schema.domain_dimensions()
        missing = [d for d in query.domains if d not in available_domains]
        if missing:
            raise NoSolutionError(
                f"no dataset contains queried domain dimension(s) "
                f"{missing}; derivations cannot infer new domain "
                f"dimensions"
            )

        closures = {
            name: self._closure(
                Candidate(schema, LoadNode(name), 0),
                self.config.max_transform_depth,
            )
            for name, schema in catalog.items()
        }

        # Single-dataset solutions (shortest first).
        best = self._best_satisfying(
            [c for cands in closures.values() for c in cands], query
        )
        if best is not None:
            return self._finalize(best, query, catalog)

        # Multi-dataset search: subsets in increasing size.
        names = sorted(catalog)
        set_memo: Dict[FrozenSet[str], List[Candidate]] = {
            frozenset([n]): cands for n, cands in closures.items()
        }
        max_k = min(len(names), self.config.max_datasets)
        for k in range(2, max_k + 1):
            satisfying: List[Candidate] = []
            for subset in itertools.combinations(names, k):
                fs = frozenset(subset)
                if not self._covers_domains(fs, catalog, query):
                    continue
                cands = self._combine_set(fs, set_memo)
                best = self._best_satisfying(cands, query)
                if best is not None:
                    satisfying.append(best)
            if satisfying:
                best = min(satisfying, key=lambda c: c.steps)
                return self._finalize(best, query, catalog)

        raise NoSolutionError(
            f"no derivation sequence satisfies {query} within "
            f"{max_k} datasets and depth "
            f"{self.config.max_transform_depth}"
        )

    def explain(
        self, catalog: Mapping[str, Schema], query: Query
    ) -> str:
        """Human-readable plan for a query (the Figure 5/7 rendering)."""
        return DerivationPlan(self.solve(catalog, query).root).describe()

    # ------------------------------------------------------------------
    # search pieces
    # ------------------------------------------------------------------

    def _covers_domains(
        self,
        subset: FrozenSet[str],
        catalog: Mapping[str, Schema],
        query: Query,
    ) -> bool:
        dims = set()
        for name in subset:
            dims |= catalog[name].domain_dimensions()
        return all(d in dims for d in query.domains)

    def _closure(self, seed: Candidate, depth: int) -> List[Candidate]:
        """All candidates reachable from ``seed`` by ≤ ``depth``
        transformations (BFS, deduplicated by schema fingerprint)."""
        seen: Dict[str, Candidate] = {seed.schema.fingerprint(): seed}
        frontier = [seed]
        for _level in range(depth):
            new_frontier: List[Candidate] = []
            for cand in frontier:
                for inst in self._instantiations(cand.schema):
                    if not inst.applies(cand.schema, self.dictionary):
                        continue
                    out_schema = inst.derive_schema(
                        cand.schema, self.dictionary
                    )
                    fp = out_schema.fingerprint()
                    if fp in seen:
                        continue
                    nxt = Candidate(
                        out_schema,
                        TransformNode(inst, cand.plan),
                        cand.steps + 1,
                    )
                    seen[fp] = nxt
                    new_frontier.append(nxt)
            frontier = new_frontier
            if not frontier:
                break
        self._bump("candidates_explored", len(seen))
        self._bump(
            "candidates_pruned",
            max(0, len(seen) - self.config.max_candidates),
        )
        out = sorted(seen.values(), key=lambda c: c.steps)
        return out[: self.config.max_candidates]

    def _instantiations(self, schema: Schema) -> List[Transformation]:
        """Applicable transformation instances for ``schema``, with
        engine configuration applied (explode period)."""
        out: List[Transformation] = []
        for cls in self.registry.transformations():
            for inst in cls.instantiations(schema, self.dictionary):
                if isinstance(inst, ExplodeContinuous):
                    inst = ExplodeContinuous(
                        inst.field, self.config.explode_period
                    )
                out.append(inst)
        self._bump("instantiations", len(out))
        return out

    def _combine_set(
        self,
        names: FrozenSet[str],
        memo: Dict[FrozenSet[str], List[Candidate]],
    ) -> List[Candidate]:
        """CombineSet of Algorithm 1, memoized on the dataset subset.

        Each recursive call combines one dataset with the combination
        of the rest; all removal choices are explored, and the
        candidate list is pruned to the shortest
        ``config.max_candidates`` plans.
        """
        if names in memo:
            return memo[names]
        self._bump("subsets_examined")
        if len(names) > self._stats["max_subset_size"]:
            self._stats["max_subset_size"] = len(names)
        results: Dict[str, Candidate] = {}
        for name in sorted(names):
            rest = names - {name}
            rest_cands = self._combine_set(rest, memo)
            single_cands = memo[frozenset([name])]
            for ca in rest_cands:
                for cb in single_cands:
                    for cand in self._combine_pair(ca, cb):
                        fp = cand.schema.fingerprint()
                        if fp not in results or cand.steps < results[fp].steps:
                            results[fp] = cand
        out = sorted(results.values(), key=lambda c: c.steps)
        out = out[: self.config.max_candidates]
        memo[names] = out
        return out

    def _combine_pair(
        self, ca: Candidate, cb: Candidate
    ) -> List[Candidate]:
        """CombinePair: all ways to combine two candidates with a
        single combination (both orders), each followed by a bounded
        post-combination transformation closure."""
        memo_key = (ca.schema.fingerprint(), cb.schema.fingerprint())
        recipes = self._pair_memo.get(memo_key)
        if recipes is not None:
            self._bump("pair_memo_hits")
        else:
            self._bump("pair_memo_misses")
            recipes = []
            combinations = [
                NaturalJoin(),
                InterpolationJoin(self.config.interpolation_window),
            ]
            for order in ("ab", "ba"):
                left, right = (
                    (ca.schema, cb.schema)
                    if order == "ab"
                    else (cb.schema, ca.schema)
                )
                for comb in combinations:
                    if comb.applies(left, right, self.dictionary):
                        recipes.append(
                            (order, comb,
                             comb.derive_schema(left, right, self.dictionary))
                        )
            self._pair_memo[memo_key] = recipes

        out: List[Candidate] = []
        for order, comb, out_schema in recipes:
            lp, rp = (
                (ca.plan, cb.plan) if order == "ab" else (cb.plan, ca.plan)
            )
            combined = Candidate(
                out_schema,
                CombineNode(comb, lp, rp),
                ca.steps + cb.steps + 1,
            )
            out.extend(
                self._closure(combined, self.config.post_combine_depth)
            )
        return out

    # ------------------------------------------------------------------
    # satisfaction
    # ------------------------------------------------------------------

    def _best_satisfying(
        self, candidates: List[Candidate], query: Query
    ) -> Optional[Candidate]:
        satisfying = [
            c for c in candidates if self._satisfies(c.schema, query)
        ]
        if not satisfying:
            return None
        return min(satisfying, key=lambda c: c.steps)

    def _satisfies(self, schema: Schema, query: Query) -> bool:
        dims = schema.domain_dimensions()
        if any(d not in dims for d in query.domains):
            return False
        for term in query.values:
            fields = schema.fields_for(term.dimension, VALUE)
            if not fields:
                return False
            if term.units is not None:
                ok = False
                for f in fields:
                    units = schema[f].units
                    if units == term.units or self._convertible(
                        units, term.units
                    ):
                        ok = True
                        break
                if not ok:
                    return False
        return True

    def _convertible(self, from_units: str, to_units: str) -> bool:
        try:
            self.dictionary.convert(1.0, from_units, to_units)
            return True
        except Exception:
            return False

    def _finalize(
        self,
        cand: Candidate,
        query: Query,
        catalog: Mapping[str, Schema],
    ) -> DerivationPlan:
        """Append unit conversions for value terms whose units were
        requested explicitly but differ (yet convert), resolve the
        query's dimension-level filters into field-level filter nodes,
        and run the pushdown rewrite so they collapse into the scans."""
        plan = cand.plan
        schema = cand.schema
        for term in query.values:
            if term.units is None:
                continue
            fields = schema.fields_for(term.dimension, VALUE)
            if any(schema[f].units == term.units for f in fields):
                continue
            for f in fields:
                if self._convertible(schema[f].units, term.units):
                    conv = ConvertUnits(f, term.units)
                    plan = TransformNode(conv, plan)
                    schema = conv.derive_schema(schema, self.dictionary)
                    break
            else:
                raise QueryError(
                    f"value dimension {term.dimension!r} found but no "
                    f"field converts to requested units {term.units!r}"
                )
        for flt in query.filters:
            field = self._resolve_filter_field(schema, flt.dimension)
            if flt.op == "eq":
                derivation: Transformation = FilterEquals(field, flt.value)
            else:
                derivation = FilterRange(field, flt.low, flt.high)
            plan = TransformNode(derivation, plan)
        out = DerivationPlan(plan)
        if self.config.pushdown:
            out = push_down_plan(
                out, dict(catalog), self.dictionary,
                projection=self.config.projection,
            )
        return out

    def _resolve_filter_field(self, schema: Schema, dimension: str) -> str:
        """The field a dimension-level filter restricts: the single
        domain field of the dimension when one exists, else its single
        value field. Ambiguity is an error — guessing which of two
        same-dimension fields the analyst meant would silently change
        the answer."""
        for semtype in (DOMAIN, VALUE):
            fields = schema.fields_for(dimension, semtype)
            if len(fields) == 1:
                return fields[0]
            if len(fields) > 1:
                raise QueryError(
                    f"filter on dimension {dimension!r} is ambiguous: "
                    f"fields {sorted(fields)} all carry it"
                )
        raise QueryError(
            f"filter dimension {dimension!r} does not appear in the "
            f"answer's schema"
        )
