"""QueryBuilder: fluent construction, session-bound terminals, and
equivalence with ``Query.of``/wire spellings."""

from __future__ import annotations

import pytest

from repro import Query, QueryBuilder
from repro.core.query import ValueTerm
from repro.errors import QueryError


def test_build_produces_frozen_query():
    q = (QueryBuilder()
         .across("jobs", "racks")
         .value("heat", units="W")
         .build())
    assert q == Query(
        ("jobs", "racks"), (ValueTerm("heat", "W"),)
    )


def test_builder_equivalent_to_query_of():
    built = (QueryBuilder()
             .across("racks")
             .values("heat", "power")
             .build())
    assert built == Query.of(["racks"], ["heat", "power"])


def test_accumulation_across_calls():
    q = (QueryBuilder()
         .across("jobs")
         .across("racks")
         .value("heat")
         .values("power", "temperature")
         .build())
    assert q.domains == ("jobs", "racks")
    assert [t.dimension for t in q.values] == [
        "heat", "power", "temperature"
    ]


def test_build_requires_domains_and_values():
    with pytest.raises(QueryError):
        QueryBuilder().value("heat").build()
    with pytest.raises(QueryError):
        QueryBuilder().across("racks").build()


def test_unbound_terminals_raise():
    b = QueryBuilder().across("racks").value("heat")
    with pytest.raises(QueryError):
        b.plan()
    with pytest.raises(QueryError):
        b.ask()
    with pytest.raises(QueryError):
        b.explain()


def test_session_bound_builder_plans(fig5_session):
    plan = (fig5_session.query()
            .across("racks")
            .value("heat")
            .plan())
    assert "derive_heat" in plan.operations()


def test_session_bound_builder_asks(fig5_session):
    answer = (fig5_session.query()
              .across("racks")
              .value("heat")
              .ask())
    assert answer.plan is not None
    assert len(answer.collect()) > 0
    assert list(answer) == answer.collect()


def test_session_bound_builder_explains(fig5_session):
    text = (fig5_session.query()
            .across("racks")
            .value("heat")
            .explain())
    assert "derive_heat" in text


def test_legacy_two_argument_query_is_gone(fig5_session):
    # the pre-1.0 ``query(domains, values)`` shim was removed; the
    # builder is the only spelling ``query()`` accepts
    with pytest.raises(TypeError):
        fig5_session.query(["racks"], ["heat"])
    with pytest.raises(TypeError):
        fig5_session.query(domains=["racks"], values=["heat"])


def test_plan_accepts_a_built_query(fig5_session):
    plan = fig5_session.plan(Query.of(["racks"], ["heat"]))
    assert "derive_heat" in plan.operations()


def test_repr_shows_accumulated_terms():
    b = QueryBuilder().across("racks").value("heat", units="W")
    assert "racks" in repr(b)
    assert "heat[W]" in repr(b)

def test_metric_builder_equivalent_to_query_of():
    from repro.core.query import Grain, Measure

    built = (QueryBuilder()
             .across("time")
             .measure("power", "mean")
             .per("racks")
             .grain("1h")
             .build())
    assert built == Query.of(
        ["time", "racks"], ["power"],
        measures=[Measure("power", "mean")],
        per=["racks"], grain=Grain.of("1h"),
    )
    assert built == Query.from_json_dict(built.to_json_dict())


def test_metric_repr_shows_metric_terms():
    b = (QueryBuilder()
         .measure("power", "p95")
         .per("racks")
         .grain("15m"))
    q = b.build()
    assert "p95(power)" in str(q)
    assert "900s/time" in str(q)
