"""Closed-loop tuning benchmark: an adversarial broadcast mis-predict.

The workload is a natural join whose small side *defeats the size
estimator*: every lookup row carries the same ~2 KB annotation string
(one shared object), and :func:`repro.rdd.stats._approx_size` counts
it once per sampled row — so the 6 000-row lookup table, really a few
hundred KB of distinct data, is estimated at ~15 MiB. That pushes the
small side past the default 8 MiB broadcast threshold and the planner
shuffles a join it should broadcast, every single execution.

An untuned session keeps paying that shuffle forever. A session with
``tuning_enabled=True`` observes the repeated shuffle regret (measured
shuffle cost vs the modeled broadcast cost of a 6 000-row build side),
and after the hysteresis bar raises ``adaptive.broadcast_threshold_bytes``
past the over-estimate — recorded as a :class:`TuningDecision` on the
report and rendered in ``EXPLAIN ANALYZE``. Every execution after that
broadcasts.

Both configurations are timed with :mod:`repro.util.benchstats`
adaptive-stopping CIs, and the speedup gate compares *bounds*, not
means: ``untuned.ci_low / tuned.ci_high`` must clear the bar, so a
noisy box cannot fake a pass.

Writes ``benchmarks/results/BENCH_tuning.json`` with both interval
timings, the tuning decisions applied, the per-run join strategies,
and the EXPLAIN ANALYZE audit excerpt.

Usage::

    PYTHONPATH=src python benchmarks/bench_tuning.py          # full
    PYTHONPATH=src python benchmarks/bench_tuning.py --smoke  # CI

The full run enforces the >= 1.3x acceptance bar; ``--smoke`` shrinks
the streamed side and gates at >= 1.15x. Either exits non-zero on a
miss, on a tuner that never fired, or on answers that differ.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence

RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results"
)
JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_tuning.json")

# allow `python benchmarks/bench_tuning.py` without PYTHONPATH
_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import random  # noqa: E402

from repro import ScrubJaySession, TuningProfile  # noqa: E402
from repro.core import DOMAIN, VALUE, Schema, SemanticType  # noqa: E402
from repro.util.benchstats import measure  # noqa: E402

FULL_ROWS = 120_000
SMOKE_ROWS = 40_000
NUM_KEYS = 6_000
#: one shared annotation string on every lookup row — stored once,
#: but counted once *per row* by the sampling size estimator
BLOB = "scrubjay-annotation/" + "x" * 2_028

LEFT_SCHEMA = Schema({
    "node": SemanticType(DOMAIN, "compute nodes", "identifier"),
    "sample": SemanticType(DOMAIN, "jobs", "identifier"),
    "metric_a": SemanticType(VALUE, "power", "watts"),
})
#: the keyed lookup, plus the adversarial annotation column (asked for
#: by the query, so projection pushdown cannot prune it away)
RIGHT_SCHEMA = Schema({
    "node": SemanticType(DOMAIN, "compute nodes", "identifier"),
    "metric_b": SemanticType(VALUE, "temperature", "degrees Celsius"),
    "annotation": SemanticType(VALUE, "applications", "identifier"),
})

#: executions the tuned session gets to notice and fix the mis-predict
MAX_WARMUP_RUNS = 8


def adversarial_tables(num_rows: int, num_keys: int = NUM_KEYS, seed: int = 5):
    rng = random.Random(seed)
    left = [
        {
            "node": rng.randrange(num_keys),
            "sample": i,
            "metric_a": rng.random() * 100.0,
        }
        for i in range(num_rows)
    ]
    right = [
        {"node": k, "metric_b": rng.random() * 40.0, "annotation": BLOB}
        for k in range(num_keys)
    ]
    return left, right


def row_multiset(rows: Sequence[Dict[str, Any]]) -> List[Any]:
    return sorted(
        tuple(sorted((k, repr(v)) for k, v in row.items())) for row in rows
    )


def make_session(
    tuned: bool,
    left: List[Dict[str, Any]],
    right: List[Dict[str, Any]],
):
    sj = ScrubJaySession(TuningProfile(tuning_enabled=tuned))
    sj.register_rows(left, LEFT_SCHEMA, "samples")
    sj.register_rows(right, RIGHT_SCHEMA, "lookup")
    plan = sj.plan(
        sj.query()
        .across("compute nodes", "jobs")
        .value("power")
        .value("temperature")
        .value("applications")
        .build()
    )
    return sj, plan


def join_strategies(sj: ScrubJaySession) -> List[str]:
    return [d.strategy for d in sj.ctx.report.joins()]


def run_mode(
    tuned: bool,
    left: List[Dict[str, Any]],
    right: List[Dict[str, Any]],
    smoke: bool,
) -> Dict[str, Any]:
    sj, plan = make_session(tuned, left, right)
    try:
        warmup_runs = 1
        count = sj.execute(plan).count()
        if tuned:
            # the closed loop needs evidence: keep executing until the
            # tuner's hysteresis bar is cleared and a TuningDecision
            # lands (bounded — a dead tuner must not hang the bench)
            while not sj.tuner.applied and warmup_runs < MAX_WARMUP_RUNS:
                count = sj.execute(plan).count()
                warmup_runs += 1
        timing = measure(
            lambda: sj.execute(plan).count() and None,
            min_repeats=3,
            max_repeats=10 if smoke else 20,
            rel_ci=0.10 if smoke else 0.05,
            warmup=0,
        )
        rows = sj.execute(plan).collect()  # identity material, untimed
        payload: Dict[str, Any] = {
            "mode": "tuned" if tuned else "untuned",
            "timing": timing.as_dict(),
            "result_rows": count,
            "warmup_runs": warmup_runs,
            "join_strategies": join_strategies(sj),
            "tuning_decisions": [
                d.as_dict() for d in sj.ctx.report.tunings()
            ],
            "broadcast_threshold_bytes": sj.profile.get(
                "adaptive.broadcast_threshold_bytes"
            ),
            "threshold_provenance": sj.profile.provenance(
                "adaptive.broadcast_threshold_bytes"
            ),
            "rows": rows,
        }
        if tuned:
            # the audit surface: every applied knob move renders in
            # EXPLAIN ANALYZE next to the decisions that caused it
            explain = sj.explain(
                sj.query()
                .across("compute nodes", "jobs")
                .value("power")
                .value("temperature")
                .value("applications")
                .build(),
                analyze=True,
            )
            payload["explain_audit"] = [
                line for line in explain.splitlines()
                if line.startswith("tuning[")
            ]
        return payload
    finally:
        sj.close()


def run_all(smoke: bool) -> Dict[str, Any]:
    num_rows = SMOKE_ROWS if smoke else FULL_ROWS
    left, right = adversarial_tables(num_rows)
    untuned = run_mode(False, left, right, smoke)
    tuned = run_mode(True, left, right, smoke)
    identical = row_multiset(untuned.pop("rows")) == row_multiset(
        tuned.pop("rows")
    )
    t_untuned = untuned["timing"]
    t_tuned = tuned["timing"]
    speedup = (
        t_untuned["mean_seconds"] / t_tuned["mean_seconds"]
        if t_tuned["mean_seconds"]
        else float("inf")
    )
    # the conservative bound: worst untuned plausible mean over best
    # tuned plausible mean — what the gate actually checks
    bounded = (
        t_untuned["ci"][0] / t_tuned["ci"][1]
        if t_tuned["ci"][1] > 0
        else float("inf")
    )
    return {
        "benchmark": "closed-loop-tuning-broadcast-mispredict",
        "smoke": smoke,
        "left_rows": num_rows,
        "right_rows": NUM_KEYS,
        "untuned": untuned,
        "tuned": tuned,
        "speedup_mean": round(speedup, 2),
        "speedup_ci_bounded": round(bounded, 2),
        "results_identical": identical,
    }


def check(payload: Dict[str, Any]) -> List[str]:
    bar = 1.15 if payload["smoke"] else 1.3
    failures: List[str] = []
    untuned, tuned = payload["untuned"], payload["tuned"]
    if not payload["results_identical"]:
        failures.append("tuned and untuned answers differ")
    if untuned["result_rows"] != payload["left_rows"]:
        failures.append(
            f"join produced {untuned['result_rows']} rows, expected "
            f"{payload['left_rows']}"
        )
    # the untuned session must be stuck on the mis-predicted shuffle
    if set(untuned["join_strategies"]) != {"shuffle"}:
        failures.append(
            "untuned run was expected to shuffle every execution, got "
            f"{untuned['join_strategies']}"
        )
    if untuned["tuning_decisions"]:
        failures.append("untuned session applied tuning decisions")
    # the tuned session must have closed the loop...
    decisions = tuned["tuning_decisions"]
    if not any(
        d["knob"] == "adaptive.broadcast_threshold_bytes"
        and d["new"] > d["old"]
        for d in decisions
    ):
        failures.append(
            "tuner never raised the broadcast threshold: "
            f"{decisions or 'no decisions applied'}"
        )
    if tuned["threshold_provenance"] != "tuned":
        failures.append(
            "threshold provenance is "
            f"{tuned['threshold_provenance']!r}, expected 'tuned'"
        )
    # ...switched the plan to broadcast for the measured executions...
    if not tuned["join_strategies"] or \
            tuned["join_strategies"][-1] != "broadcast":
        failures.append(
            "tuned run never reached the broadcast strategy: "
            f"{tuned['join_strategies']}"
        )
    # ...and left an audit trail in EXPLAIN ANALYZE
    if not any(
        "adaptive.broadcast_threshold_bytes" in line
        for line in tuned.get("explain_audit", [])
    ):
        failures.append(
            "EXPLAIN ANALYZE did not render the tuning decision"
        )
    if payload["speedup_ci_bounded"] < bar:
        failures.append(
            f"CI-bounded speedup {payload['speedup_ci_bounded']}x "
            f"below the {bar}x bar (means: "
            f"{payload['speedup_mean']}x)"
        )
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Closed-loop tuning vs static-config benchmark"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="smaller streamed side + relaxed 1.15x gate (CI mode)",
    )
    args = parser.parse_args(argv)

    payload = run_all(args.smoke)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(JSON_PATH, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2)
    print(json.dumps(payload, indent=2))
    print(f"wrote {JSON_PATH}")

    failures = check(payload)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
