"""Reproducible derivation sequences: JSON round trips, editing,
execution, and failure modes."""

import json

import pytest

from repro.core.combinations import InterpolationJoin, NaturalJoin
from repro.core.derivation import GLOBAL_REGISTRY
from repro.core.pipeline import (
    CombineNode,
    DerivationPlan,
    LoadNode,
    TransformNode,
)
from repro.core.transformations import ExplodeContinuous, ExplodeDiscrete
from repro.errors import PipelineError


@pytest.fixture()
def plan():
    return DerivationPlan(
        CombineNode(
            NaturalJoin(),
            TransformNode(
                ExplodeDiscrete("nodelist"),
                LoadNode("jobs"),
            ),
            LoadNode("layout"),
        )
    )


def test_num_steps_counts_derivations(plan):
    assert plan.num_steps() == 2


def test_operations_leaves_first(plan):
    assert plan.operations() == [
        "load:jobs", "explode_discrete", "load:layout", "natural_join",
    ]


def test_describe_renders_tree(plan):
    text = plan.describe()
    lines = text.splitlines()
    assert lines[0].startswith("natural_join")
    assert any("Load[jobs]" in line for line in lines)
    # indentation encodes depth
    assert lines[1].startswith("  ")


def test_json_round_trip(plan):
    back = DerivationPlan.from_json(plan.to_json(), GLOBAL_REGISTRY)
    assert back.to_json() == plan.to_json()
    assert back.operations() == plan.operations()
    assert back.fingerprint() == plan.fingerprint()


def test_json_is_human_editable(plan):
    # the paper: the representation "is human-readable and may be
    # edited directly" — tweak a parameter in the JSON and reload
    data = json.loads(
        DerivationPlan(
            TransformNode(ExplodeContinuous("span", 60.0), LoadNode("jobs"))
        ).to_json()
    )
    data["transform"]["period"] = 30.0
    edited = DerivationPlan.from_json(json.dumps(data), GLOBAL_REGISTRY)
    assert edited.root.derivation.period == 30.0


def test_fingerprint_changes_with_params():
    a = DerivationPlan(
        TransformNode(ExplodeContinuous("span", 60.0), LoadNode("jobs"))
    )
    b = DerivationPlan(
        TransformNode(ExplodeContinuous("span", 30.0), LoadNode("jobs"))
    )
    assert a.fingerprint() != b.fingerprint()


def test_shared_subtree_shares_fingerprint():
    sub = TransformNode(ExplodeDiscrete("nodelist"), LoadNode("jobs"))
    other = TransformNode(ExplodeDiscrete("nodelist"), LoadNode("jobs"))
    assert sub.fingerprint() == other.fingerprint()


def test_from_json_malformed_text():
    with pytest.raises(PipelineError, match="malformed"):
        DerivationPlan.from_json("{not json", GLOBAL_REGISTRY)


def test_from_json_unknown_op():
    bad = json.dumps({"transform": {"op": "warp_speed"},
                      "input": {"load": "x"}})
    with pytest.raises(PipelineError, match="unknown derivation"):
        DerivationPlan.from_json(bad, GLOBAL_REGISTRY)


def test_from_json_bad_params():
    bad = json.dumps({"transform": {"op": "explode_discrete"},
                      "input": {"load": "x"}})
    with pytest.raises(PipelineError, match="bad parameters"):
        DerivationPlan.from_json(bad, GLOBAL_REGISTRY)


def test_from_json_bad_node_shape():
    with pytest.raises(PipelineError):
        DerivationPlan.from_json(json.dumps({"mystery": 1}), GLOBAL_REGISTRY)


def test_from_json_combination_transformation_mixup():
    bad = json.dumps({
        "transform": {"op": "natural_join"},
        "input": {"load": "x"},
    })
    with pytest.raises(PipelineError, match="not a transformation"):
        DerivationPlan.from_json(bad, GLOBAL_REGISTRY)


def test_execute_unknown_dataset(plan, dictionary):
    with pytest.raises(PipelineError, match="unknown dataset"):
        plan.execute({}, dictionary)


def test_execute_runs_pipeline(fig5_session):
    sj = fig5_session
    plan = (sj.query().across("jobs", "racks")
            .values("applications", "heat").plan())
    result = sj.execute(plan)
    rows = result.collect()
    assert rows
    assert {"job_name", "rack", "heat"} <= set(rows[0])


def test_reexecution_is_deterministic(fig5_session):
    sj = fig5_session
    plan = (sj.query().across("jobs", "racks")
            .values("applications", "heat").plan())
    a = sorted(map(repr, sj.execute(plan).collect()))
    b = sorted(map(repr, sj.execute(plan).collect()))
    assert a == b


def test_serialized_plan_reexecutes_identically(fig5_session, tmp_path):
    sj = fig5_session
    plan = (sj.query().across("jobs", "racks")
            .values("applications", "heat").plan())
    path = str(tmp_path / "plan.json")
    sj.save_plan(plan, path)
    reloaded = sj.load_plan(path)
    a = sorted(map(repr, sj.execute(plan).collect()))
    b = sorted(map(repr, sj.execute(reloaded).collect()))
    assert a == b
