"""The shared knowledge base: semantics reuse across sessions (§7.1)."""

import pytest

from repro import Schema, ScrubJaySession, SemanticType, DOMAIN, VALUE
from repro.core.knowledge import KnowledgeBase
from repro.errors import ScrubJayError
from repro.store import WideColumnStore


@pytest.fixture()
def kb(tmp_path):
    return KnowledgeBase(WideColumnStore(str(tmp_path / "kb")))


def test_dimension_and_unit_round_trip(kb):
    with ScrubJaySession() as sj1:
        sj1.define_dimension("gpu memory", continuous=False, ordered=True)
        sj1.define_unit("vram gigabytes", "quantity", "gpu memory")
        kb.save_session_semantics(sj1)

    with ScrubJaySession() as sj2:
        assert not sj2.dictionary.has_dimension("gpu memory")
        kb.apply_to(sj2)
        assert sj2.dictionary.has_dimension("gpu memory")
        assert sj2.dictionary.has_unit("vram gigabytes")
        # defaults still intact
        assert sj2.dictionary.has_unit("degrees Celsius")


def test_apply_to_is_idempotent(kb):
    with ScrubJaySession() as sj:
        sj.define_dimension("gpu memory", continuous=False, ordered=True)
        kb.save_session_semantics(sj)
        kb.apply_to(sj)
        kb.apply_to(sj)


def test_schema_round_trip(kb):
    schema = Schema({
        "node": SemanticType(DOMAIN, "compute nodes", "identifier"),
        "temp": SemanticType(VALUE, "temperature", "degrees Celsius"),
    })
    kb.save_schema("node_temps", schema)
    assert kb.load_schema("node_temps") == schema
    assert kb.load_schemas() == {"node_temps": schema}


def test_schema_last_writer_wins(kb):
    a = Schema({"x": SemanticType(DOMAIN, "racks", "identifier")})
    b = Schema({"x": SemanticType(DOMAIN, "jobs", "identifier")})
    kb.save_schema("s", a)
    kb.save_schema("s", b)
    assert kb.load_schema("s") == b


def test_missing_schema_raises(kb):
    with pytest.raises(ScrubJayError, match="no schema"):
        kb.load_schema("ghost")
    assert kb.load_schemas() == {}


def test_session_schemas_saved_in_bulk(kb, fig5_session):
    kb.save_session_schemas(fig5_session)
    loaded = kb.load_schemas()
    assert set(loaded) == {"job_queue_log", "node_layout",
                           "rack_temperatures"}
    assert loaded["node_layout"] == fig5_session.schemas()["node_layout"]


def test_plan_round_trip_and_names(kb, fig5_session):
    sj = fig5_session
    plan = (sj.query().across("jobs", "racks")
            .values("applications", "heat").plan())
    kb.save_plan("rack_heat", plan)
    assert kb.plan_names() == ["rack_heat"]
    back = kb.load_plan("rack_heat", sj.registry)
    assert back.to_json() == plan.to_json()
    assert sj.execute(back).count() == sj.execute(plan).count()


def test_missing_plan_raises(kb, fig5_session):
    with pytest.raises(ScrubJayError):
        kb.load_plan("ghost", fig5_session.registry)
    kb2 = kb  # empty plans table
    assert kb2.plan_names() == []


def test_knowledge_survives_store_reopen(tmp_path, fig5_session):
    root = str(tmp_path / "kb2")
    kb1 = KnowledgeBase(WideColumnStore(root))
    kb1.save_session_semantics(fig5_session)
    plan = fig5_session.query().across("racks").value("heat").plan()
    kb1.save_plan("heat", plan)

    kb2 = KnowledgeBase(WideColumnStore(root))
    assert kb2.plan_names() == ["heat"]
    with ScrubJaySession() as fresh:
        kb2.apply_to(fresh)
        # the dat-independent default vocabulary re-applied cleanly
        assert fresh.dictionary.has_dimension("racks")


def test_dat1_semantics_reused_in_dat2_style(kb):
    """The paper's workflow: semantics defined during DAT 1 are reused
    seamlessly in DAT 2."""
    from repro.datagen.dat import ensure_semantics

    with ScrubJaySession() as dat1_session:
        ensure_semantics(dat1_session.dictionary)
        kb.save_session_semantics(dat1_session)

    with ScrubJaySession() as dat2_session:
        kb.apply_to(dat2_session)
        # DAT-2's counter dimensions came along without re-definition
        assert dat2_session.dictionary.has_dimension("aperf events")
        assert dat2_session.dictionary.has_unit("utilization percent")
