"""The closed-loop tuner's safety properties, on canned evidence.

Each test fabricates an :class:`ExecutionReport` (the tuner only ever
reads the report — it has no hook into live execution), feeds it
through :meth:`Tuner.observe`, and asserts the resulting knob moves:
regret must move the right knob in the right direction, hysteresis
must damp alternating evidence, every write must clamp to the knob's
declared bounds, pinned knobs must never move, and tuned state must
survive a session restart.
"""

from __future__ import annotations

import pytest

from repro.config import TuningProfile
from repro.rdd.stats import ExecutionReport, JoinDecision, KernelDecision
from repro.tuning import Tuner, TuningDecision

MB = 1 << 20


def make_tuner(report=None, store_path=None, **knobs):
    knobs.setdefault("tuning_enabled", True)
    profile = TuningProfile(**knobs)
    report = report if report is not None else ExecutionReport()
    return Tuner(profile, report, store_path=store_path), profile, report


def shuffled_join(measured_s=1.0, small_bytes=10 * MB, small_rows=1_000,
                  threshold=8 * MB):
    """A join that shuffled on an over-estimated small side: bytes over
    the threshold, rows broadcast-friendly, measured cost well above
    the modeled broadcast cost."""
    return JoinDecision(
        op="natural_join", strategy="shuffle", build_side=None,
        left_rows=50_000, right_rows=small_rows,
        left_bytes=80 * MB, right_bytes=small_bytes,
        threshold_bytes=threshold,
        reason="small side estimate over threshold",
        measured_s=measured_s,
    )


def broadcast_join(measured_s=1.0, build_bytes=6 * MB):
    return JoinDecision(
        op="natural_join", strategy="broadcast", build_side="right",
        left_rows=50_000, right_rows=1_000,
        left_bytes=80 * MB, right_bytes=build_bytes,
        threshold_bytes=8 * MB, reason="under threshold",
        measured_s=measured_s,
    )


# ----------------------------------------------------------------------
# regret rules
# ----------------------------------------------------------------------


def test_shuffle_regret_raises_broadcast_threshold():
    tuner, profile, report = make_tuner()
    old = profile.get("adaptive.broadcast_threshold_bytes")
    applied = []
    for _ in range(profile.get("tuning.hysteresis")):
        report.add(shuffled_join())
        applied += tuner.observe()
    assert len(applied) == 1
    d = applied[0]
    assert isinstance(d, TuningDecision)
    assert d.knob == "adaptive.broadcast_threshold_bytes"
    assert d.old == old
    assert d.new > old  # raised past the over-estimate
    assert d.new >= 10 * MB
    assert d.regret > 0
    assert "shuffled" in d.evidence
    assert profile.get("adaptive.broadcast_threshold_bytes") == d.new
    assert profile.provenance(
        "adaptive.broadcast_threshold_bytes") == "tuned"
    # the adjustment itself landed on the audit trail
    assert report.tunings() == [d]


def test_broadcast_regret_lowers_threshold():
    tuner, profile, report = make_tuner()
    old = profile.get("adaptive.broadcast_threshold_bytes")
    applied = []
    for _ in range(profile.get("tuning.hysteresis")):
        report.add(broadcast_join())
        applied += tuner.observe()
    assert len(applied) == 1
    d = applied[0]
    assert d.knob == "adaptive.broadcast_threshold_bytes"
    assert d.new < old


def test_insignificant_regret_does_not_move_knobs():
    tuner, profile, report = make_tuner()
    # measured barely above the modeled alternative: under both the
    # relative and absolute significance floors
    for _ in range(5):
        report.add(shuffled_join(measured_s=1e-4))
        assert tuner.observe() == []
    assert profile.provenance(
        "adaptive.broadcast_threshold_bytes") == "default"


def test_non_adaptive_joins_are_ignored():
    tuner, profile, report = make_tuner()
    d = shuffled_join()
    d.adaptive = False  # forced by an explicit hint: not the knob's fault
    for _ in range(5):
        report.add(d)
        assert tuner.observe() == []


def test_kernel_fallback_gates_operator_off_columnar():
    tuner, profile, report = make_tuner(columnar=True)
    applied = []
    for _ in range(4):
        report.add(KernelDecision(
            op="explode_discrete", choice="row-fallback",
            reason="kernel declined the input",
        ))
        applied += tuner.observe()
    assert [d.knob for d in applied] == ["engine.columnar_off_ops"]
    assert profile.get("engine.columnar_off_ops") == ("explode_discrete",)
    # already gated: no repeat proposal on further fallbacks
    report.add(KernelDecision(
        op="explode_discrete", choice="row-fallback",
        reason="tuned-off: operator gated off the columnar path",
    ))
    assert tuner.observe() == []


def test_kernel_rule_requires_fallback_majority():
    tuner, profile, report = make_tuner(columnar=True)
    for choice in ("batch", "batch", "batch", "row-fallback",
                   "row-fallback", "row-fallback"):
        report.add(KernelDecision(
            op="filter_equals", choice=choice, reason="x"))
        tuner.observe()
    # 3 fallbacks but not more than the 3 batched runs: leave it on
    assert profile.get("engine.columnar_off_ops") == ()


def test_cache_churn_shrinks_result_ttl():
    tuner, profile, _ = make_tuner(hysteresis=1)
    base = {"hits": 0, "misses": 0, "expirations": 0,
            "invalidations": 0, "ttl": 10.0}
    assert tuner.observe_cache(base) == []  # first call only baselines
    applied = tuner.observe_cache({
        "hits": 2, "misses": 38, "expirations": 30,
        "invalidations": 0, "ttl": 10.0,
    })
    assert [d.knob for d in applied] == ["serve.result_ttl"]
    assert profile.get("serve.result_ttl") == pytest.approx(5.0)
    assert profile.provenance("serve.result_ttl") == "tuned"


def test_healthy_cache_keeps_its_ttl():
    tuner, profile, _ = make_tuner(hysteresis=1)
    tuner.observe_cache({"hits": 0, "misses": 0, "expirations": 0,
                         "invalidations": 0, "ttl": 10.0})
    tuner.observe_cache({"hits": 30, "misses": 10, "expirations": 1,
                         "invalidations": 0, "ttl": 10.0})
    assert profile.get("serve.result_ttl") is None  # untouched default


# ----------------------------------------------------------------------
# hysteresis, cooldown, clamping, pinning
# ----------------------------------------------------------------------


def test_alternating_evidence_never_oscillates():
    """Opposite-direction proposals reset each other's streak, so
    evidence that flip-flops — however long — leaves the knob alone;
    the knob only moves once the evidence stops alternating."""
    tuner, profile, report = make_tuner()
    knob = "adaptive.broadcast_threshold_bytes"
    for _ in range(6):
        tuner._propose(knob, "up", 10 * MB, 1.0, "over-estimate", "r")
        assert tuner._apply_ready() == []
        tuner._propose(knob, "down", 4 * MB, 1.0, "under-estimate", "r")
        assert tuner._apply_ready() == []
    assert profile.provenance(knob) == "default"
    # a sustained streak, by contrast, clears the hysteresis bar
    tuner._propose(knob, "up", 10 * MB, 1.0, "over-estimate", "r")
    tuner._propose(knob, "up", 10 * MB, 1.0, "over-estimate", "r")
    assert [d.knob for d in tuner._apply_ready()] == [knob]


def test_cooldown_spaces_out_adjustments():
    """After one applied move, the next same-direction streak must
    first burn through the cooldown before it can apply."""
    tuner, profile, report = make_tuner(hysteresis=1, cooldown=2)
    report.add(shuffled_join(small_bytes=10 * MB))
    assert len(tuner.observe()) == 1
    moves = 0
    for _ in range(3):
        report.add(shuffled_join(
            small_bytes=40 * MB,
            threshold=profile.get("adaptive.broadcast_threshold_bytes"),
        ))
        moves += len(tuner.observe())
    assert moves == 1  # two observations consumed by cooldown, one applied


def test_adjustments_clamp_to_knob_bounds():
    tuner, profile, report = make_tuner(hysteresis=1)
    # an absurd over-estimate would push the threshold past its upper
    # bound; the applied value must be the bound, not the raw target
    report.add(JoinDecision(
        op="natural_join", strategy="shuffle", build_side=None,
        left_rows=50_000, right_rows=10,
        left_bytes=1 << 34, right_bytes=1 << 33,
        threshold_bytes=8 * MB, reason="over", measured_s=1.0,
    ))
    applied = tuner.observe()
    assert len(applied) == 1
    high = 1 << 31
    assert applied[0].new == high
    assert profile.get("adaptive.broadcast_threshold_bytes") == high


def test_pinned_knobs_are_never_tuned():
    tuner, profile, report = make_tuner(broadcast_threshold=8 * MB)
    # construction pinned the knob (user-set values are pinned)
    assert profile.is_pinned("adaptive.broadcast_threshold_bytes")
    for _ in range(6):
        report.add(shuffled_join())
        assert tuner.observe() == []
    assert profile.get("adaptive.broadcast_threshold_bytes") == 8 * MB
    assert profile.provenance(
        "adaptive.broadcast_threshold_bytes") == "user-pinned"


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------


def test_tuned_state_round_trips_across_restart(tmp_path):
    store = str(tmp_path / "tuning_profile.json")
    tuner, profile, report = make_tuner(store_path=store, hysteresis=1)
    report.add(shuffled_join())
    applied = tuner.observe()
    assert len(applied) == 1
    tuned_value = profile.get("adaptive.broadcast_threshold_bytes")

    # "restart": a fresh profile reloads the persisted tuned state
    reborn = TuningProfile()
    adopted = reborn.load_tuned(store)
    assert adopted == ["adaptive.broadcast_threshold_bytes"]
    assert reborn.get("adaptive.broadcast_threshold_bytes") == tuned_value
    assert reborn.provenance(
        "adaptive.broadcast_threshold_bytes") == "tuned"
    assert reborn.version >= profile.version


def test_corrupt_store_is_treated_as_empty(tmp_path):
    store = tmp_path / "tuning_profile.json"
    store.write_text("{not json")
    profile = TuningProfile()
    assert profile.load_tuned(str(store)) == []


def test_session_restart_resumes_tuned_profile(tmp_path):
    """End to end through ScrubJaySession: a tuned knob written under
    cache_dir is live again after constructing a new session."""
    from repro import ScrubJaySession

    cache_dir = str(tmp_path)
    sj = ScrubJaySession(TuningProfile(
        cache_dir=cache_dir, tuning_enabled=True, hysteresis=1))
    try:
        sj.ctx.report.add(shuffled_join())
        applied = sj.tuner.observe()
        assert len(applied) == 1
        tuned_value = sj.profile.get("adaptive.broadcast_threshold_bytes")
    finally:
        sj.close()

    sj2 = ScrubJaySession(TuningProfile(
        cache_dir=cache_dir, tuning_enabled=True))
    try:
        assert sj2.profile.get(
            "adaptive.broadcast_threshold_bytes") == tuned_value
        # and the reloaded value reached the planner's frozen config
        assert sj2.ctx.adaptive.broadcast_threshold_bytes == tuned_value
    finally:
        sj2.close()
