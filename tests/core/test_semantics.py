"""SemanticType and Schema behaviour."""

import pytest

from repro.core.semantics import (
    DOMAIN,
    VALUE,
    Schema,
    SemanticType,
    domain,
    value,
)
from repro.errors import SemanticError


@pytest.fixture()
def schema():
    return Schema({
        "node": domain("compute nodes", "identifier"),
        "time": domain("time", "datetime"),
        "temp": value("temperature", "degrees Celsius"),
        "power": value("power", "watts"),
    })


def test_relation_type_validated():
    with pytest.raises(SemanticError):
        SemanticType("measure", "time", "seconds")


def test_helpers_set_relation_type():
    assert domain("time", "datetime").is_domain
    assert value("power", "watts").is_value


def test_schema_lookup_and_contains(schema):
    assert schema["node"].dimension == "compute nodes"
    assert "temp" in schema
    assert "missing" not in schema
    with pytest.raises(SemanticError):
        schema["missing"]


def test_domain_value_views(schema):
    assert set(schema.domain_fields()) == {"node", "time"}
    assert set(schema.value_fields()) == {"temp", "power"}
    assert schema.domain_dimensions() == {"compute nodes", "time"}
    assert schema.value_dimensions() == {"temperature", "power"}


def test_fields_for(schema):
    assert schema.fields_for("time") == ["time"]
    assert schema.fields_for("time", DOMAIN) == ["time"]
    assert schema.fields_for("time", VALUE) == []
    assert schema.domain_field("compute nodes") == "node"


def test_domain_field_errors(schema):
    with pytest.raises(SemanticError):
        schema.domain_field("power")
    two = schema.with_field("node2", domain("compute nodes", "identifier"))
    with pytest.raises(SemanticError):
        two.domain_field("compute nodes")


def test_with_without_replace_rename(schema):
    s = schema.with_field("hum", value("humidity", "relative humidity percent"))
    assert "hum" in s and "hum" not in schema  # immutability
    with pytest.raises(SemanticError):
        s.with_field("hum", value("humidity", "relative humidity percent"))

    s2 = s.without_field("hum")
    assert "hum" not in s2
    with pytest.raises(SemanticError):
        s2.without_field("hum")

    s3 = schema.replace_field("temp", value("temperature", "kelvin"))
    assert s3["temp"].units == "kelvin"

    s4 = schema.rename_field("temp", "temperature_c")
    assert "temperature_c" in s4 and "temp" not in s4
    with pytest.raises(SemanticError):
        schema.rename_field("temp", "node")


def test_merge_drops_and_renames(schema):
    other = Schema({
        "node": domain("compute nodes", "identifier"),
        "temp": value("temperature", "degrees Celsius"),
        "extra": value("energy", "joules"),
    })
    merged = schema.merge(other, drop=["node"])
    assert "extra" in merged
    # colliding non-dropped field gets suffixed
    assert "temp_r" in merged
    assert merged["temp_r"].dimension == "temperature"


def test_fingerprint_stable_and_sensitive(schema):
    same = Schema(dict(schema.items()))
    assert schema.fingerprint() == same.fingerprint()
    changed = schema.replace_field("temp", value("temperature", "kelvin"))
    assert schema.fingerprint() != changed.fingerprint()


def test_json_round_trip(schema):
    back = Schema.from_json_dict(schema.to_json_dict())
    assert back == schema
    assert back.fingerprint() == schema.fingerprint()


def test_equality_and_hash(schema):
    assert schema == Schema(dict(schema.items()))
    assert hash(schema) == hash(Schema(dict(schema.items())))
    assert schema != schema.without_field("temp")
