"""Scan-pushdown benchmark: selective queries must not pay full scans.

Builds the DAT1 rack-temperature feed, lands it in a wide-column store
table (partitioned by rack, clustered by time, flushed into many
segments), ingests it through ``session.ingest().table(...)``, and
asks a selective question — one rack, one time window — twice:

- **pushed**: the default engine, where the pushdown rewrite collapses
  the ``.where()`` restrictions into the leaf scan (partition-key
  pruning drops the other racks driver-side, zone maps skip segments
  outside the time window worker-side);
- **full scan**: the same session/query with
  ``TuningProfile(pushdown=False)`` — filters run as plan nodes above
  an unrestricted scan.

Writes ``benchmarks/results/BENCH_scan.json`` with the physical read
counters (``scan.rows_read``, ``segments_skipped``,
``partitions_pruned``, ``bytes_scanned``) of both runs, wall-clock
timings, and the row-multiset equality verdict.

Usage::

    PYTHONPATH=src python benchmarks/bench_scan_pushdown.py          # full
    PYTHONPATH=src python benchmarks/bench_scan_pushdown.py --smoke  # CI

``--smoke`` shrinks the dataset and exits non-zero if the pushed scan
fails to read at least 2x fewer rows than the full scan or the two
answers differ; the full run enforces the 5x acceptance bar.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results"
)
JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_scan.json")

# allow `python benchmarks/bench_scan_pushdown.py` without PYTHONPATH
_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro import ScrubJaySession, TuningProfile  # noqa: E402
from repro.datagen.dat import (  # noqa: E402
    RACK_TEMPERATURE_SCHEMA,
    generate_dat1,
)
from repro.store import WideColumnStore  # noqa: E402

DATASET = "rack_temperatures"
TARGET_RACK = 17
SEGMENTS = 12  # memtable is sized so the feed lands in ~this many


def build_store(
    root: str, rows: List[Dict[str, Any]]
) -> WideColumnStore:
    store = WideColumnStore(root)
    table = store.create_table(
        "facility",
        DATASET,
        ["rack"],
        ["time"],
        memtable_limit=max(1, len(rows) // SEGMENTS),
    )
    table.insert_many(rows)
    table.flush()
    return store


def run_query(
    store: WideColumnStore,
    pushdown: bool,
    t_lo: float,
    t_hi: float,
) -> Dict[str, Any]:
    """One measured ask() against a fresh session over the store."""
    sj = ScrubJaySession(TuningProfile(pushdown=pushdown))
    try:
        sj.ingest().table(
            store, "facility", DATASET, RACK_TEMPERATURE_SCHEMA
        ).register(DATASET)
        t0 = time.perf_counter()
        answer = (
            sj.query()
            .across("racks", "time")
            .value("temperature")
            .where("racks", equals=TARGET_RACK)
            .where("time", between=(t_lo, t_hi))
            .ask()
        )
        rows = answer.to_rows()
        elapsed = time.perf_counter() - t0
        labels = {"source": DATASET}
        counters = {
            name: sj.ctx.metrics.counter(f"scan.{name}", labels)
            for name in (
                "rows_read",
                "bytes_scanned",
                "segments_skipped",
                "partitions_pruned",
            )
        }
        return {
            "mode": "pushed" if pushdown else "full-scan",
            "seconds": round(elapsed, 4),
            "result_rows": len(rows),
            "scan": counters,
            "rows": rows,
        }
    finally:
        sj.close()


def row_multiset(rows: Sequence[Dict[str, Any]]) -> List[Any]:
    return sorted(
        tuple(sorted((k, repr(v)) for k, v in row.items())) for row in rows
    )


def run_all(smoke: bool, workdir: str) -> Dict[str, Any]:
    duration = 1800.0 if smoke else 3.0 * 3600.0
    bundle = generate_dat1(
        duration=duration, include_aux_feeds=False
    )
    temps = bundle.rows(DATASET)
    store = build_store(os.path.join(workdir, "store"), temps)
    # the middle third of the session, one rack out of twenty
    t_lo, t_hi = duration / 3.0, 2.0 * duration / 3.0

    pushed = run_query(store, True, t_lo, t_hi)
    full = run_query(store, False, t_lo, t_hi)
    identical = row_multiset(pushed.pop("rows")) == row_multiset(
        full.pop("rows")
    )
    read_pushed = pushed["scan"]["rows_read"]
    read_full = full["scan"]["rows_read"]
    reduction = (read_full / read_pushed) if read_pushed else float("inf")
    return {
        "benchmark": "scan-pushdown",
        "smoke": smoke,
        "dataset": DATASET,
        "rows_stored": len(temps),
        "query": {
            "rack": TARGET_RACK,
            "time": [t_lo, t_hi],
        },
        "pushed": pushed,
        "full_scan": full,
        "rows_read_reduction": round(reduction, 2),
        "results_identical": identical,
    }


def check(payload: Dict[str, Any]) -> List[str]:
    bar = 2.0 if payload["smoke"] else 5.0
    failures: List[str] = []
    if not payload["results_identical"]:
        failures.append("pushed and full-scan answers differ")
    if payload["pushed"]["result_rows"] == 0:
        failures.append("selective query returned no rows")
    if payload["rows_read_reduction"] < bar:
        failures.append(
            f"rows_read reduction {payload['rows_read_reduction']}x "
            f"below the {bar}x bar"
        )
    if payload["pushed"]["scan"]["partitions_pruned"] == 0:
        failures.append("no partitions were pruned")
    if payload["pushed"]["scan"]["segments_skipped"] == 0:
        failures.append("no segments were zone-map skipped")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Scan-pushdown benchmark"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small dataset + acceptance gates (CI mode)",
    )
    parser.add_argument(
        "--workdir", default=None,
        help="directory for the on-disk store (default: a tempdir)",
    )
    args = parser.parse_args(argv)

    import tempfile

    if args.workdir:
        os.makedirs(args.workdir, exist_ok=True)
        payload = run_all(args.smoke, args.workdir)
    else:
        with tempfile.TemporaryDirectory() as tmp:
            payload = run_all(args.smoke, tmp)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(JSON_PATH, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2)
    print(json.dumps(
        {k: v for k, v in payload.items() if k not in ("pushed", "full_scan")},
        indent=2,
    ))
    print(f"pushed:    {payload['pushed']['scan']} "
          f"in {payload['pushed']['seconds']}s")
    print(f"full scan: {payload['full_scan']['scan']} "
          f"in {payload['full_scan']['seconds']}s")
    print(f"wrote {JSON_PATH}")

    failures = check(payload)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
