"""On-disk derivation cache: hits, misses, persistence, LRU eviction."""

import os
import time

import pytest

from repro.core.cache import DerivationCache
from repro.core.dataset import ScrubJayDataset
from repro.core.semantics import Schema, domain, value

SCHEMA = Schema({
    "node": domain("compute nodes", "identifier"),
    "temp": value("temperature", "degrees Celsius"),
})


def _ds(ctx, n=3):
    rows = [{"node": i, "temp": 20.0 + i} for i in range(n)]
    return ScrubJayDataset.from_rows(ctx, rows, SCHEMA, "t")


def test_miss_then_hit(ctx, tmp_path):
    cache = DerivationCache(str(tmp_path))
    assert cache.get("fp1") is None
    cache.put("fp1", _ds(ctx))
    hit = cache.get("fp1")
    assert hit is not None
    assert hit.to_dataset(ctx).collect() == _ds(ctx).collect()
    assert cache.hits == 1 and cache.misses == 1


def test_entry_preserves_schema_and_name(ctx, tmp_path):
    cache = DerivationCache(str(tmp_path))
    cache.put("fp", _ds(ctx))
    back = cache.get("fp").to_dataset(ctx)
    assert back.schema == SCHEMA
    assert back.name == "t"


def test_cache_survives_reopen(ctx, tmp_path):
    DerivationCache(str(tmp_path)).put("fp", _ds(ctx))
    reopened = DerivationCache(str(tmp_path))
    assert reopened.get("fp") is not None


def test_lru_eviction(ctx, tmp_path):
    cache = DerivationCache(str(tmp_path), max_entries=2)
    cache.put("a", _ds(ctx))
    time.sleep(0.02)
    cache.put("b", _ds(ctx))
    time.sleep(0.02)
    cache.get("a")  # bump a's recency
    time.sleep(0.02)
    cache.put("c", _ds(ctx))  # evicts b (least recently used)
    assert cache.get("a") is not None
    assert cache.get("c") is not None
    assert cache.get("b") is None
    assert len(cache) == 2


def test_clear(ctx, tmp_path):
    cache = DerivationCache(str(tmp_path))
    cache.put("a", _ds(ctx))
    cache.clear()
    assert len(cache) == 0
    assert cache.get("a") is None


def test_rejects_nonpositive_bound(tmp_path):
    with pytest.raises(ValueError):
        DerivationCache(str(tmp_path), max_entries=0)


def test_corrupt_entry_treated_as_miss(ctx, tmp_path):
    cache = DerivationCache(str(tmp_path))
    cache.put("a", _ds(ctx))
    path = os.path.join(str(tmp_path), "a.pkl")
    with open(path, "wb") as f:
        f.write(b"garbage")
    assert cache.get("a") is None


def test_execute_with_cache_skips_recompute(fig5_session, tmp_path):
    sj = fig5_session
    from repro.core.cache import DerivationCache

    sj.cache = DerivationCache(str(tmp_path))
    plan = (sj.query().across("jobs", "racks")
            .values("applications", "heat").plan())
    first = sorted(map(repr, sj.execute(plan).collect()))
    assert sj.cache.hits == 0
    second = sorted(map(repr, sj.execute(plan).collect()))
    assert sj.cache.hits >= 1
    assert first == second


def test_shared_prefix_reused_across_plans(fig5_session, tmp_path):
    """Two derivation sequences sharing an expensive prefix compute it
    once (paper §5.4)."""
    sj = fig5_session
    from repro.core.cache import DerivationCache

    sj.cache = DerivationCache(str(tmp_path))
    plan_a = (sj.query().across("jobs", "racks")
              .values("applications", "heat").plan())
    sj.execute(plan_a)
    misses_after_a = sj.cache.misses
    plan_b = (sj.query().across("jobs", "racks")
              .values("applications", "temperature").plan())
    sj.execute(plan_b)
    # plan_b shares at least one subtree with plan_a → at least one hit
    assert sj.cache.hits >= 1 or sj.cache.misses == misses_after_a


# ----------------------------------------------------------------------
# the two-tier cache hierarchy (paper conclusion: compressed long-term
# storage for old entries)
# ----------------------------------------------------------------------

def _tiered(tmp_path, max_entries=2, max_cold=4):
    return DerivationCache(
        str(tmp_path / "hot"), max_entries=max_entries,
        cold_directory=str(tmp_path / "cold"),
        max_cold_entries=max_cold,
    )


def test_eviction_demotes_to_cold_tier(ctx, tmp_path):
    cache = _tiered(tmp_path)
    for i, fp in enumerate(["a", "b", "c"]):
        cache.put(fp, _ds(ctx))
        time.sleep(0.02)
    assert len(cache) == 2          # hot tier bounded
    assert cache.cold_len() == 1    # "a" demoted, compressed
    assert cache.get("a") is not None  # cold hit


def test_cold_hit_promotes_back_to_hot(ctx, tmp_path):
    cache = _tiered(tmp_path, max_entries=1)
    cache.put("a", _ds(ctx))
    time.sleep(0.02)
    cache.put("b", _ds(ctx))   # demotes a
    assert cache.cold_len() == 1
    hit = cache.get("a")       # promotes a, demotes b
    assert hit is not None
    assert cache.cold_hits == 1
    assert len(cache) == 1
    # the entry left the cold tier on promotion (b replaced it)
    assert cache.get("a") is not None
    assert cache.hits == 2


def test_cold_entry_round_trips_content(ctx, tmp_path):
    cache = _tiered(tmp_path, max_entries=1)
    cache.put("a", _ds(ctx, n=5))
    time.sleep(0.02)
    cache.put("b", _ds(ctx))
    back = cache.get("a").to_dataset(ctx)
    assert back.collect() == _ds(ctx, n=5).collect()
    assert back.schema == SCHEMA


def test_cold_entries_are_compressed(ctx, tmp_path):
    cache = _tiered(tmp_path, max_entries=1)
    cache.put("a", _ds(ctx, n=500))
    hot_size = os.path.getsize(str(tmp_path / "hot" / "a.pkl"))
    time.sleep(0.02)
    cache.put("b", _ds(ctx))
    cold_size = os.path.getsize(str(tmp_path / "cold" / "a.pkl.gz"))
    assert cold_size < hot_size / 2


def test_cold_tier_lru_bounded(ctx, tmp_path):
    cache = _tiered(tmp_path, max_entries=1, max_cold=2)
    for fp in "abcdef":
        cache.put(fp, _ds(ctx))
        time.sleep(0.02)
    assert len(cache) == 1
    assert cache.cold_len() <= 2
    # the oldest demoted entries are gone for good
    assert cache.get("a") is None


def test_tiered_clear(ctx, tmp_path):
    cache = _tiered(tmp_path, max_entries=1)
    cache.put("a", _ds(ctx))
    time.sleep(0.02)
    cache.put("b", _ds(ctx))
    cache.clear()
    assert len(cache) == 0
    assert cache.cold_len() == 0
    assert cache.get("a") is None and cache.get("b") is None


def test_tiered_rejects_bad_bounds(tmp_path):
    with pytest.raises(ValueError):
        DerivationCache(str(tmp_path), cold_directory=str(tmp_path / "c"),
                        max_cold_entries=0)


# ----------------------------------------------------------------------
# crash-safety: corrupt entries are evicted, writes are atomic
# ----------------------------------------------------------------------

def test_truncated_entry_evicted_and_cache_reusable(ctx, tmp_path, caplog):
    import logging

    cache = DerivationCache(str(tmp_path))
    cache.put("a", _ds(ctx))
    path = os.path.join(str(tmp_path), "a.pkl")
    with open(path, "rb") as f:
        blob = f.read()
    with open(path, "wb") as f:
        f.write(blob[: len(blob) // 2])  # valid pickle prefix, cut short
    with caplog.at_level(logging.WARNING, logger="repro.core.cache"):
        assert cache.get("a") is None
    assert not os.path.exists(path)  # the bad file was evicted...
    assert any("evicting" in r.getMessage() for r in caplog.records)
    cache.put("a", _ds(ctx))         # ...and the slot is usable again
    assert cache.get("a") is not None


def test_corrupt_entry_removed_not_just_missed(ctx, tmp_path):
    cache = DerivationCache(str(tmp_path))
    path = os.path.join(str(tmp_path), "bad.pkl")
    with open(path, "wb") as f:
        f.write(b"\x80\x04garbage")
    assert cache.get("bad") is None
    assert cache.get("bad") is None  # second call is a clean miss
    assert not os.path.exists(path)
    assert cache.misses == 2


def test_writes_leave_no_tmp_files(ctx, tmp_path):
    cache = _tiered(tmp_path, max_entries=1)
    for fp in "abcd":
        cache.put(fp, _ds(ctx))
        time.sleep(0.02)
        cache.get(fp)
    leftovers = [
        f for d in (tmp_path / "hot", tmp_path / "cold")
        for f in os.listdir(d) if ".tmp." in f
    ]
    assert leftovers == []


def test_corrupt_cold_entry_evicted(ctx, tmp_path):
    cache = _tiered(tmp_path, max_entries=1)
    cache.put("a", _ds(ctx))
    time.sleep(0.02)
    cache.put("b", _ds(ctx))  # demotes a to cold
    cold = str(tmp_path / "cold" / "a.pkl.gz")
    assert os.path.exists(cold)
    with open(cold, "wb") as f:
        f.write(b"not gzip at all")
    assert cache.get("a") is None
    assert not os.path.exists(cold)
    assert cache.get("b") is not None  # rest of the cache unharmed
