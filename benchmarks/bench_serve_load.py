"""Load benchmark for the repro.serve query service.

Drives a :class:`~repro.serve.QueryService` through the phases the
subsystem exists for and writes machine-readable evidence to
``benchmarks/results/BENCH_serve.json``:

- **cold vs warm latency** — the same two-dataset natural-join query
  timed with empty caches (full §5.2 plan search + distributed
  execution) and again fully warm (semantic result-cache hit). The
  acceptance bar is a ≥10× cold/warm ratio.
- **concurrent throughput** — N closed-loop client threads replay a
  hot/cold query mix against one shared service; per-request latency
  percentiles (p50/p95/p99), aggregate qps, and a multiset-equality
  check of every answer against a serial ground truth.
- **overload shedding** — a deliberately tiny service (one slowed
  worker, short admission queue) takes a burst; the run records how
  many requests were shed with :class:`ServiceOverloadError` while
  every admitted request still completed.

Each phase also snapshots :class:`~repro.serve.ServiceMetrics` so the
JSON carries the service's own accounting (cache hit rates, queue
depth, latency reservoir) next to the client-side measurements.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve_load.py          # full
    PYTHONPATH=src python benchmarks/bench_serve_load.py --smoke  # CI

``--smoke`` shrinks the dataset and client count and exits non-zero if
any acceptance check fails (wrong answers, no shedding, cold/warm
ratio under the bar).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results"
)
JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_serve.json")

# allow `python benchmarks/bench_serve_load.py` without PYTHONPATH
_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro import ScrubJaySession  # noqa: E402
from repro.datagen.synthetic import (  # noqa: E402
    KEYED_LEFT_SCHEMA,
    KEYED_RIGHT_SCHEMA,
    keyed_tables,
)
from repro.errors import ServiceOverloadError  # noqa: E402
from repro.serve import QueryService  # noqa: E402
from repro.serve.metrics import percentile  # noqa: E402

#: the query mix every client replays: a cheap single-dataset
#: projection (hot path) interleaved with the two-dataset natural join
WORKLOAD = [
    (["compute nodes"], ["temperature"]),
    (["compute nodes", "jobs"], ["power", "temperature"]),
    (["compute nodes"], ["temperature"]),
    (["compute nodes"], ["power"]),
]

JOIN_QUERY = (["compute nodes", "jobs"], ["power", "temperature"])


def make_session(rows: int, keys: int = 64) -> ScrubJaySession:
    sj = ScrubJaySession()
    left, right = keyed_tables(rows, num_keys=keys)
    sj.register_rows(left, KEYED_LEFT_SCHEMA, name="samples")
    sj.register_rows(right, KEYED_RIGHT_SCHEMA, name="lookup")
    return sj


def _row_multiset(rows: List[Dict[str, Any]]):
    return sorted(
        tuple(sorted((k, repr(v)) for k, v in row.items()))
        for row in rows
    )


def _latency_stats(samples: List[float]) -> Dict[str, Any]:
    ordered = sorted(samples)
    return {
        "samples": len(ordered),
        "mean_s": sum(ordered) / len(ordered) if ordered else None,
        "p50_s": percentile(ordered, 50.0),
        "p95_s": percentile(ordered, 95.0),
        "p99_s": percentile(ordered, 99.0),
        "min_s": ordered[0] if ordered else None,
        "max_s": ordered[-1] if ordered else None,
    }


# ----------------------------------------------------------------------
# phase 1: cold vs warm latency
# ----------------------------------------------------------------------


def run_cold_warm(
    rows: int, cold_samples: int, warm_samples: int
) -> Dict[str, Any]:
    session = make_session(rows)
    domains, values = JOIN_QUERY
    cold: List[float] = []
    warm: List[float] = []
    try:
        with QueryService(session, num_workers=1) as svc:
            for _ in range(cold_samples):
                svc.invalidate()  # empty plan + result caches
                t0 = time.perf_counter()
                svc.query(domains, values)
                cold.append(time.perf_counter() - t0)
            for _ in range(warm_samples):
                t0 = time.perf_counter()
                svc.query(domains, values)
                warm.append(time.perf_counter() - t0)
            snapshot = svc.snapshot().as_dict()
    finally:
        session.close()
    cold_stats = _latency_stats(cold)
    warm_stats = _latency_stats(warm)
    speedup = (
        cold_stats["p50_s"] / warm_stats["p50_s"]
        if warm_stats["p50_s"]
        else None
    )
    return {
        "rows": rows,
        "query": {"domains": domains, "values": values},
        "cold": cold_stats,
        "warm": warm_stats,
        "cold_over_warm_p50": speedup,
        "snapshot": snapshot,
    }


# ----------------------------------------------------------------------
# phase 2: concurrent clients, correctness + throughput
# ----------------------------------------------------------------------


def run_concurrent(
    rows: int, num_clients: int, rounds: int
) -> Dict[str, Any]:
    session = make_session(rows)
    try:
        expected = [
            _row_multiset(session.ask(d, v).collect())
            for d, v in WORKLOAD
        ]
        latencies: List[List[float]] = [[] for _ in range(num_clients)]
        mismatches = [0] * num_clients
        errors: List[str] = []

        with QueryService(
            session, num_workers=4, max_queue=4096
        ) as svc:

            def client(i: int) -> None:
                try:
                    for _ in range(rounds):
                        for q, (domains, values) in enumerate(WORKLOAD):
                            t0 = time.perf_counter()
                            ds = svc.query(
                                domains, values, tenant=f"client-{i}"
                            )
                            got = _row_multiset(ds.collect())
                            latencies[i].append(
                                time.perf_counter() - t0
                            )
                            if got != expected[q]:
                                mismatches[i] += 1
                except Exception as exc:  # pragma: no cover
                    errors.append(f"{type(exc).__name__}: {exc}")

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(num_clients)
            ]
            wall0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            wall = time.perf_counter() - wall0
            snapshot = svc.snapshot().as_dict()

        flat = [s for per_client in latencies for s in per_client]
        completed = len(flat)
        return {
            "rows": rows,
            "num_clients": num_clients,
            "rounds_per_client": rounds,
            "wall_seconds": wall,
            "qps": completed / wall if wall > 0 else None,
            "completed": completed,
            "errors": errors,
            "mismatched_answers": sum(mismatches),
            "all_answers_correct": not errors and not any(mismatches),
            "latency": _latency_stats(flat),
            "snapshot": snapshot,
        }
    finally:
        session.close()


# ----------------------------------------------------------------------
# phase 3: overload shedding
# ----------------------------------------------------------------------


def run_overload(
    rows: int, burst: int, max_queue: int, execute_delay_s: float
) -> Dict[str, Any]:
    """Burst-submit against a deliberately tiny service.

    ``execute_delay_s`` slows each execution so the burst reliably
    outruns the single worker — the point is admission-control
    behaviour, not executor speed.
    """
    session = make_session(rows)
    original_execute = session.execute

    def slow_execute(plan):
        time.sleep(execute_delay_s)
        return original_execute(plan)

    session.execute = slow_execute
    domains, values = JOIN_QUERY
    try:
        with QueryService(
            session, num_workers=1, max_queue=max_queue
        ) as svc:
            tickets = []
            shed = 0
            t0 = time.perf_counter()
            for _ in range(burst):
                try:
                    tickets.append(svc.submit(domains, values))
                except ServiceOverloadError:
                    shed += 1
            completed = 0
            for t in tickets:
                t.result(timeout=60.0)
                completed += 1
            wall = time.perf_counter() - t0
            snapshot = svc.snapshot().as_dict()
        return {
            "rows": rows,
            "burst": burst,
            "max_queue": max_queue,
            "execute_delay_s": execute_delay_s,
            "admitted": len(tickets),
            "shed": shed,
            "completed": completed,
            "wall_seconds": wall,
            "snapshot": snapshot,
        }
    finally:
        session.close()


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------


def run_all(smoke: bool) -> Dict[str, Any]:
    if smoke:
        rows, cold_n, warm_n = 2_000, 2, 50
        clients, rounds = 8, 3
        burst, queue, delay = 12, 3, 0.02
    else:
        rows, cold_n, warm_n = 20_000, 5, 200
        clients, rounds = 8, 10
        burst, queue, delay = 64, 8, 0.02
    return {
        "figure": "BENCH_serve",
        "benchmark": "serve_load",
        "description": (
            "repro.serve query service: cold vs warm latency on the "
            "natural-join query, closed-loop concurrent clients with "
            "multiset correctness, and burst overload shedding"
        ),
        "smoke": smoke,
        "cold_warm": run_cold_warm(rows, cold_n, warm_n),
        "concurrent": run_concurrent(rows, clients, rounds),
        "overload": run_overload(rows, burst, queue, delay),
    }


def check_smoke(payload: Dict[str, Any]) -> List[str]:
    """Acceptance checks; failures as human-readable messages."""
    problems: List[str] = []
    cw = payload["cold_warm"]
    ratio = cw["cold_over_warm_p50"]
    if ratio is None or ratio < 10.0:
        problems.append(
            f"warm p50 latency is only {ratio!r}x better than cold "
            f"(acceptance bar: >= 10x)"
        )
    conc = payload["concurrent"]
    if not conc["all_answers_correct"]:
        problems.append(
            f"concurrent clients got {conc['mismatched_answers']} "
            f"mismatched answers, errors={conc['errors']}"
        )
    if conc["snapshot"]["failed"] or conc["snapshot"]["shed"]:
        problems.append(
            "concurrent phase recorded failures/sheds: "
            f"failed={conc['snapshot']['failed']} "
            f"shed={conc['snapshot']['shed']}"
        )
    over = payload["overload"]
    if over["shed"] == 0:
        problems.append("overload burst shed nothing")
    if over["completed"] != over["admitted"]:
        problems.append(
            f"only {over['completed']}/{over['admitted']} admitted "
            f"requests completed under overload"
        )
    if over["shed"] + over["admitted"] != over["burst"]:
        problems.append("overload accounting does not add up")
    return problems


def write_json(payload: Dict[str, Any], path: str = JSON_PATH) -> str:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    return path


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes; exit non-zero if acceptance checks fail",
    )
    parser.add_argument(
        "--output", default=JSON_PATH, help="JSON output path"
    )
    args = parser.parse_args(argv)

    payload = run_all(smoke=args.smoke)
    path = write_json(payload, args.output)

    cw = payload["cold_warm"]
    print(
        f"cold p50 {cw['cold']['p50_s']*1e3:8.2f} ms   "
        f"warm p50 {cw['warm']['p50_s']*1e3:8.3f} ms   "
        f"ratio {cw['cold_over_warm_p50']:.1f}x"
    )
    conc = payload["concurrent"]
    lat = conc["latency"]
    print(
        f"{conc['num_clients']} clients: {conc['qps']:.0f} qps, "
        f"p50 {lat['p50_s']*1e3:.2f} ms, "
        f"p95 {lat['p95_s']*1e3:.2f} ms, "
        f"p99 {lat['p99_s']*1e3:.2f} ms, "
        f"correct={conc['all_answers_correct']}"
    )
    over = payload["overload"]
    print(
        f"overload: burst {over['burst']} -> admitted "
        f"{over['admitted']}, shed {over['shed']}, completed "
        f"{over['completed']}"
    )
    print(f"wrote {path}")

    problems = check_smoke(payload)
    if problems:
        for p in problems:
            print(f"FAIL: {p}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
