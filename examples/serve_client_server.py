#!/usr/bin/env python3
"""Serving queries: many clients, one shared session, two caches.

Spins up the whole repro.serve stack in one process:

1. build a session with two registered monitoring tables;
2. wrap it in a :class:`~repro.serve.QueryService` (worker pool,
   plan cache, result cache, admission control);
3. expose the service over the line-delimited-JSON TCP protocol with
   :class:`~repro.serve.QueryServer`;
4. hammer it from several socket clients in parallel, then read the
   service's own metrics: cache hit rates, latency percentiles, qps.

Run: python examples/serve_client_server.py
"""

import threading
import time

from repro import ScrubJaySession
from repro.datagen.synthetic import (
    KEYED_LEFT_SCHEMA,
    KEYED_RIGHT_SCHEMA,
    keyed_tables,
)
from repro.serve import QueryClient, QueryServer


def main() -> None:
    # one shared session = one catalog + dictionary + executor pool
    sj = ScrubJaySession(executor="threads")
    samples, lookup = keyed_tables(5_000, num_keys=64)
    sj.register_rows(samples, KEYED_LEFT_SCHEMA, name="samples")
    sj.register_rows(lookup, KEYED_RIGHT_SCHEMA, name="lookup")

    with sj, sj.serve(num_workers=4, max_queue=256) as service, \
            QueryServer(service) as server:
        host, port = server.address
        print(f"serving on {host}:{port}\n")

        def client(i: int) -> None:
            # each client opens its own socket and replays a mix of a
            # cheap projection and the two-dataset natural join
            with QueryClient(host, port) as c:
                for _ in range(5):
                    c.query(
                        ["compute nodes"], ["temperature"],
                        tenant=f"client-{i}",
                    )
                    rows, schema = c.query(
                        ["compute nodes", "jobs"],
                        ["power", "temperature"],
                        tenant=f"client-{i}",
                        dictionary=sj.dictionary,
                    )
            print(
                f"client {i}: join returned {len(rows)} rows "
                f"({', '.join(sorted(schema.fields()))})"
            )

        t0 = time.perf_counter()
        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0

        # one plan search and one execution per distinct query — the
        # other 58 requests were answered from the caches
        with QueryClient(host, port) as c:
            m = c.metrics()
        print(
            f"\n{m['completed']} queries in {wall:.2f}s "
            f"({m['completed'] / wall:.0f} qps)"
        )
        print(
            "plan cache: "
            f"{m['plan_cache']['hits']} hits / "
            f"{m['plan_cache']['misses']} misses; "
            "result cache: "
            f"{m['result_cache']['hits']} hits / "
            f"{m['result_cache']['misses']} misses"
        )
        lat = m["latency_s"]
        print(
            f"latency p50 {lat['p50'] * 1e3:.2f} ms, "
            f"p95 {lat['p95'] * 1e3:.2f} ms, "
            f"p99 {lat['p99'] * 1e3:.2f} ms"
        )


if __name__ == "__main__":
    main()
