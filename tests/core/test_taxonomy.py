"""The Figure 1 data-source taxonomy."""

import pytest

from repro.core.taxonomy import (
    CATEGORIES,
    DataSource,
    SourceCatalog,
    default_sources,
)
from repro.errors import ScrubJayError


def test_categories_match_figure1():
    assert set(CATEGORIES) == {"hardware", "software"}
    assert "infrastructure" in CATEGORIES["hardware"]
    assert "resource scheduler" in CATEGORIES["software"]


def test_data_source_validation():
    DataSource("x", "hardware", "storage", "event")
    with pytest.raises(ScrubJayError, match="category"):
        DataSource("x", "wetware", "storage", "event")
    with pytest.raises(ScrubJayError, match="subdomain"):
        DataSource("x", "hardware", "application", "event")
    with pytest.raises(ScrubJayError, match="mechanism"):
        DataSource("x", "hardware", "storage", "gossip")


def test_default_sources_cover_both_categories():
    sources = default_sources()
    categories = {s.category for s in sources}
    assert categories == {"hardware", "software"}
    mechanisms = {s.mechanism for s in sources}
    assert mechanisms == {"state", "event"}


def test_catalog_filtering():
    cat = SourceCatalog()
    infra = cat.sources(category="hardware", subdomain="infrastructure")
    assert {s.name for s in infra} == {"rack_temperatures", "rack_power"}
    events = cat.sources(mechanism="event")
    assert all(s.mechanism == "event" for s in events)
    assert cat.sources(category="software", mechanism="event")


def test_register_conflicting_source_rejected():
    cat = SourceCatalog()
    with pytest.raises(ScrubJayError, match="different definition"):
        cat.register(DataSource("papi", "software", "application",
                                "event"))
    # identical re-registration is idempotent
    cat.register(cat.source("papi"))


def test_unknown_source_lookup():
    with pytest.raises(ScrubJayError, match="unknown data source"):
        SourceCatalog().source("vibes")


def test_tagging_and_dataset_queries():
    cat = SourceCatalog()
    cat.tag("rack_temperatures_2026", "rack_temperatures")
    cat.tag("slurm_march", "job_queue_log")
    assert cat.source_of("rack_temperatures_2026").subdomain == \
        "infrastructure"
    assert cat.source_of("unknown") is None
    assert cat.datasets_for(category="hardware") == \
        ["rack_temperatures_2026"]
    assert cat.datasets_for(mechanism="event") == ["slurm_march"]
    assert cat.datasets_for(category="software",
                            subdomain="resource scheduler") == \
        ["slurm_march"]


def test_tag_requires_known_source():
    with pytest.raises(ScrubJayError):
        SourceCatalog().tag("ds", "nonexistent")


def test_render_contains_tags():
    cat = SourceCatalog()
    cat.tag("temps_jan", "rack_temperatures")
    text = cat.render()
    assert "HARDWARE" in text and "SOFTWARE" in text
    assert "temps_jan" in text
    assert "[state]" in text and "[event]" in text
