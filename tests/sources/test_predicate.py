"""Column predicates: row semantics, pruning oracles, serialization."""

import pytest

from repro.sources.predicate import ColumnPredicate, EqTerm, RangeTerm
from repro.units import Timestamp


# ----------------------------------------------------------------------
# row-level matching (must mirror FilterEquals / FilterRange)
# ----------------------------------------------------------------------

def test_eq_term_matches_and_missing_field():
    t = EqTerm("rack", 17)
    assert t.matches({"rack": 17})
    assert not t.matches({"rack": 18})
    # a missing field reads as None — matches only value None
    assert not t.matches({})
    assert EqTerm("rack", None).matches({})
    assert EqTerm("rack", None).matches({"rack": None})


def test_range_term_half_open_and_missing_field():
    t = RangeTerm("time", 1.0, 5.0)
    assert t.matches({"time": 1.0})
    assert t.matches({"time": 4.999})
    assert not t.matches({"time": 5.0})  # high-exclusive
    assert not t.matches({"time": 0.5})
    assert not t.matches({})  # missing column never in range


def test_range_term_one_sided():
    assert RangeTerm("v", low=2.0).matches({"v": 2.0})
    assert not RangeTerm("v", low=2.0).matches({"v": 1.0})
    assert RangeTerm("v", high=2.0).matches({"v": 1.0})
    assert not RangeTerm("v", high=2.0).matches({"v": 2.0})


def test_range_term_needs_a_bound():
    with pytest.raises(ValueError):
        RangeTerm("v")


def test_range_term_compares_timestamps_by_epoch():
    t = RangeTerm("time", 100.0, 200.0)
    assert t.matches({"time": Timestamp(150.0)})
    assert not t.matches({"time": Timestamp(200.0)})


def test_range_term_unorderable_value_never_matches():
    assert not RangeTerm("v", 0.0, 10.0).matches({"v": "oops"})


def test_predicate_conjunction_and_also():
    p = ColumnPredicate.equals("rack", 17).also(
        ColumnPredicate.range("time", 0.0, 10.0)
    )
    assert p.matches({"rack": 17, "time": 5.0})
    assert not p.matches({"rack": 18, "time": 5.0})
    assert not p.matches({"rack": 17, "time": 10.0})
    assert p.columns() == ["rack", "time"]
    assert p.also(None) is p
    assert bool(ColumnPredicate([])) is False
    assert bool(p) is True


# ----------------------------------------------------------------------
# zone-map pruning oracle
# ----------------------------------------------------------------------

def zone(rows=10, **columns):
    return {"rows": rows, "pkeys": None, "columns": columns}


def test_segment_pruning_by_range():
    p = ColumnPredicate.range("time", 100.0, 200.0)
    inside = zone(time={"min": 0.0, "max": 150.0, "nulls": 0})
    below = zone(time={"min": 0.0, "max": 50.0, "nulls": 0})
    above = zone(time={"min": 200.0, "max": 300.0, "nulls": 0})
    assert p.segment_may_match(inside)
    assert not p.segment_may_match(below)
    assert not p.segment_may_match(above)


def test_segment_pruning_by_equality():
    p = ColumnPredicate.equals("rack", 17)
    assert p.segment_may_match(zone(rack={"min": 10, "max": 20, "nulls": 0}))
    assert not p.segment_may_match(
        zone(rack={"min": 18, "max": 20, "nulls": 0})
    )


def test_segment_column_absent_from_zone():
    stats = zone(other={"min": 0, "max": 1, "nulls": 0})
    # no row holds the column: Eq-against-None still matches...
    assert ColumnPredicate.equals("rack", None).segment_may_match(stats)
    # ...every other term fails for all rows
    assert not ColumnPredicate.equals("rack", 17).segment_may_match(stats)
    assert not ColumnPredicate.range("rack", 0.0).segment_may_match(stats)


def test_segment_all_null_column():
    stats = zone(rows=5, v={"min": None, "max": None, "nulls": 5})
    # ranges can never hold over nulls-only data
    assert not ColumnPredicate.range("v", 0.0).segment_may_match(stats)
    # but equality against a value stays conservative (min/max unknown)
    assert ColumnPredicate.equals("v", 3).segment_may_match(stats)


def test_segment_no_nulls_prunes_eq_none():
    stats = zone(rows=5, v={"min": 0, "max": 9, "nulls": 0})
    assert not ColumnPredicate.equals("v", None).segment_may_match(stats)
    withnulls = zone(rows=5, v={"min": 0, "max": 9, "nulls": 2})
    assert ColumnPredicate.equals("v", None).segment_may_match(withnulls)


def test_segment_unknown_zone_is_conservative():
    p = ColumnPredicate.equals("rack", 17)
    assert p.segment_may_match(None)
    assert p.segment_may_match({})


def test_segment_incomparable_stats_stay_conservative():
    stats = zone(rack={"min": 0, "max": 9, "nulls": 0})
    assert ColumnPredicate.equals("rack", "r17").segment_may_match(stats)


# ----------------------------------------------------------------------
# partition-key pruning oracle
# ----------------------------------------------------------------------

def test_partition_pruning():
    p = ColumnPredicate.equals("rack", 17)
    assert p.partition_may_match(("rack",), (17,))
    assert not p.partition_may_match(("rack",), (18,))
    # terms over non-key columns never prune partitions
    assert ColumnPredicate.equals("time", 5.0).partition_may_match(
        ("rack",), (18,)
    )


def test_partition_pruning_composite_key():
    p = ColumnPredicate.equals("rack", 17).also(
        ColumnPredicate.range("aisle", 2.0, 4.0)
    )
    assert p.partition_may_match(("rack", "aisle"), (17, 3.0))
    assert not p.partition_may_match(("rack", "aisle"), (17, 9.0))
    assert not p.partition_may_match(("rack", "aisle"), (18, 3.0))


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------

def test_json_round_trip():
    p = ColumnPredicate([
        EqTerm("rack", 17),
        RangeTerm("time", 0.0, 10.0),
        RangeTerm("v", low=3.0),
    ])
    back = ColumnPredicate.from_json_dict(p.to_json_dict())
    assert back == p
    assert hash(back) == hash(p)


def test_json_rejects_unknown_term():
    with pytest.raises(ValueError, match="unknown predicate term"):
        ColumnPredicate.from_json_dict([{"op": "like", "column": "x"}])


def test_repr_mentions_terms():
    p = ColumnPredicate.equals("rack", 17).also(
        ColumnPredicate.range("time", high=9.0)
    )
    text = repr(p)
    assert "rack==17" in text
    assert "time" in text and "9.0" in text
