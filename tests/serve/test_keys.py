"""Semantic keying: logically equal requests must share cache keys;
any state change must split them."""

from __future__ import annotations

from repro.core.query import Grain, Measure, Query, QueryBuilder
from repro.serve import normalize_query, plan_key, result_key

from tests.serve.conftest import make_session


def test_normalize_sorts_domains_and_values():
    a = Query.of(["jobs", "racks"], ["heat", ("power", "watts")])
    b = Query.of(["racks", "jobs"], [("power", "watts"), "heat"])
    assert normalize_query(a) == normalize_query(b)


def test_plan_key_invariant_under_permutation():
    a = Query.of(["jobs", "racks"], ["heat", "power"])
    b = Query.of(["racks", "jobs"], ["power", "heat"])
    assert plan_key("state", a) == plan_key("state", b)


def test_plan_key_differs_across_queries_and_states():
    q = Query.of(["jobs"], ["heat"])
    q2 = Query.of(["jobs"], ["power"])
    assert plan_key("s", q) != plan_key("s", q2)
    assert plan_key("s", q) != plan_key("t", q)


def test_units_distinguish_value_terms():
    q1 = Query.of(["jobs"], [("power", "watts")])
    q2 = Query.of(["jobs"], ["power"])
    assert plan_key("s", q1) != plan_key("s", q2)


def test_result_key_tracks_catalog_version():
    assert result_key("plan", "state", 1) != result_key("plan", "state", 2)
    assert result_key("plan", "state", 1) == result_key("plan", "state", 1)


def test_state_fingerprint_changes_on_register_drop_and_dictionary():
    sj = make_session()
    try:
        fp0 = sj.state_fingerprint()
        v0 = sj.catalog_version

        sj.register_rows(
            [{"node": 1, "metric_b": 1.0}],
            sj.dataset("lookup").schema,
            name="lookup2",
        )
        fp1 = sj.state_fingerprint()
        assert fp1 != fp0
        assert sj.catalog_version == v0 + 1

        sj.drop("lookup2")
        assert sj.state_fingerprint() == fp0  # same schema set again
        assert sj.catalog_version == v0 + 2  # but the data version moved

        sj.define_dimension("weirdness", continuous=True, ordered=True)
        assert sj.state_fingerprint() != fp0
    finally:
        sj.close()


def test_dictionary_version_idempotent_redefinition():
    sj = make_session()
    try:
        v = sj.dictionary.version
        # identical re-definition of an existing keyword: no bump
        sj.define_dimension("time", continuous=True, ordered=True)
        assert sj.dictionary.version == v
        sj.define_dimension("brand-new", continuous=False, ordered=False)
        assert sj.dictionary.version == v + 1
    finally:
        sj.close()

# ----------------------------------------------------------------------
# metric queries: every spelling lands on one cache key
# ----------------------------------------------------------------------

def builder_metric():
    return (QueryBuilder()
            .across("time")
            .measure("power", "mean")
            .per("racks")
            .grain("1h")
            .build())


def of_metric():
    return Query.of(
        ["time", "racks"], ["power"],
        measures=[Measure("power", "mean")],
        per=["racks"], grain=Grain.of("1h"),
    )


def test_builder_of_and_wire_spellings_share_plan_keys():
    built = builder_metric()
    plain = of_metric()
    wired = Query.from_json_dict(built.to_json_dict())
    assert normalize_query(built) == normalize_query(plain)
    assert normalize_query(built) == normalize_query(wired)
    keys = {plan_key("s", q) for q in (built, plain, wired)}
    assert len(keys) == 1


def test_metric_terms_split_plan_keys():
    base = builder_metric()
    assert plan_key("s", base) != plan_key("s", base.base())
    coarser = Query(
        base.domains, base.values, base.filters,
        base.measures, base.per, Grain.of("2h"),
    )
    assert plan_key("s", base) != plan_key("s", coarser)
    p95 = Query(
        base.domains, base.values, base.filters,
        (Measure("power", "p95"),), base.per, base.grain,
    )
    assert plan_key("s", base) != plan_key("s", p95)


def test_plain_query_keys_unchanged_by_metric_support():
    # a metric-free query must serialize (and key) without any metric
    # fields, so pre-metrics cache entries stay valid
    q = Query.of(["jobs"], ["heat"])
    assert "measures" not in q.to_json_dict()
    assert normalize_query(q) == normalize_query(
        Query.from_json_dict(q.to_json_dict())
    )
