"""CSV byte-range partitioning regressions.

Pre-fix, naive byte boundaries could (a) split a record whose quoted
cell contains an embedded newline — the trailing partition re-parsed
from mid-record garbage — and (b) leave the final partition short when
the last naive boundary snapped past end-of-file. The partition-count
sweep fails on that code: some counts duplicated rows, others lost
them.
"""

import pytest

from repro.core.semantics import Schema, domain, value
from repro.sources import CSVSource

SCHEMA = Schema({
    "node": domain("compute nodes", "identifier"),
    "name": value("applications", "label"),
    "temp": value("temperature", "degrees Celsius"),
})


def _key(row):
    return tuple(sorted((k, repr(v)) for k, v in row.items()))


def _collect(src):
    out = []
    for i in range(src.num_partitions()):
        out.extend(src.read_partition(i))
    return out


@pytest.fixture()
def tricky_csv(tmp_path):
    """37 rows; every third row has a quoted cell holding embedded
    newlines and commas, so naive boundaries land mid-record often."""
    lines = ["node,name,temp"]
    for i in range(37):
        if i % 3 == 0:
            name = f'"app\n{i},\nmulti""line"'
        else:
            name = f"app{i}"
        lines.append(f"{i},{name},{20 + i % 7}.5")
    path = tmp_path / "tricky.csv"
    path.write_text("\n".join(lines) + "\n")
    return str(path)


def test_partition_count_sweep_identical(tricky_csv, dictionary):
    reference = _collect(
        CSVSource(tricky_csv, SCHEMA, dictionary, num_partitions=1)
    )
    assert len(reference) == 37
    ref_keys = sorted(_key(r) for r in reference)
    for n in range(2, 30):
        src = CSVSource(tricky_csv, SCHEMA, dictionary, num_partitions=n)
        got = _collect(src)
        assert sorted(_key(r) for r in got) == ref_keys, (
            f"num_partitions={n}: {len(got)} rows != 37"
        )


def test_ranges_tile_the_data_region(tricky_csv, dictionary):
    src = CSVSource(tricky_csv, SCHEMA, dictionary, num_partitions=8)
    ranges = src.partitions()
    _header, data_start, size = src._read_layout()
    assert ranges[0][0] == data_start
    assert ranges[-1][1] == size
    for (a, b), (c, _d) in zip(ranges, ranges[1:]):
        assert b == c  # half-open ranges abut exactly

    # every interior boundary is a true record start: seeking there and
    # reading a line yields a parseable record, not a quoted tail
    with open(tricky_csv, "rb") as f:
        for start, _end in ranges[1:]:
            if start >= size:
                continue
            f.seek(start - 1)
            assert f.read(1) == b"\n"


def test_no_trailing_newline(tmp_path, dictionary):
    path = tmp_path / "plain.csv"
    body = "\n".join(
        f"{i},app{i},{20 + i}.0" for i in range(11)
    )
    path.write_text("node,name,temp\n" + body)  # no final newline
    for n in (1, 2, 3, 5, 11):
        src = CSVSource(str(path), SCHEMA, dictionary, num_partitions=n)
        rows = _collect(src)
        assert len(rows) == 11, f"num_partitions={n}"
        assert {r["node"] for r in rows} == set(range(11))


def test_more_partitions_than_rows(tmp_path, dictionary):
    path = tmp_path / "tiny.csv"
    path.write_text("node,name,temp\n1,a,20.0\n2,b,21.0\n")
    src = CSVSource(str(path), SCHEMA, dictionary, num_partitions=64)
    rows = _collect(src)
    assert len(rows) == 2
    assert {r["node"] for r in rows} == {1, 2}
