"""Equivalence property tests for the adaptive join paths.

The acceptance contract for adaptive execution: every physical
strategy (broadcast-hash, shuffle, and the nested-loop oracle) must
produce the same multiset of joined pairs, on every executor kind —
including one that injects faults. A bad statistic may cost time, never
correctness.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.rdd import AdaptiveConfig, SJContext
from repro.rdd.executors import (
    FaultInjectingExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.rdd.fault import RetryPolicy

FAST = dict(backoff_base=0.0)


# ----------------------------------------------------------------------
# key distributions (seeded, deterministic)
# ----------------------------------------------------------------------

def _uniform(rng, n, n_keys):
    return [(rng.randrange(n_keys), rng.randrange(1000)) for _ in range(n)]


def _skewed(rng, n, n_keys):
    """~60% of pairs pile onto a single hot key."""
    out = []
    for _ in range(n):
        k = 0 if rng.random() < 0.6 else rng.randrange(1, n_keys)
        out.append((k, rng.randrange(1000)))
    return out


def _disjoint_heavy(rng, n, n_keys):
    """Most keys only on one side: exercises non-matching rows."""
    return [(rng.randrange(3 * n_keys), rng.randrange(1000))
            for _ in range(n)]


DISTRIBUTIONS = {
    "uniform": _uniform,
    "skewed": _skewed,
    "disjoint": _disjoint_heavy,
}


def nested_loop_join(left, right):
    """O(n*m) oracle: the defining semantics of an inner equi-join."""
    return Counter(
        (k, (a, b)) for k, a in left for k2, b in right if k2 == k
    )


def _make_pairs(dist, seed=0, n_left=300, n_right=40, n_keys=25):
    rng = random.Random(seed)
    fn = DISTRIBUTIONS[dist]
    return fn(rng, n_left, n_keys), fn(rng, n_right, n_keys)


# ----------------------------------------------------------------------
# strategy x strategy equivalence on the serial executor
# ----------------------------------------------------------------------

@pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
def test_all_strategies_match_nested_loop_oracle(dist):
    left, right = _make_pairs(dist)
    oracle = nested_loop_join(left, right)
    with SJContext(executor="serial", default_parallelism=4) as ctx:
        l = ctx.parallelize(left, 5)
        r = ctx.parallelize(right, 3)
        shuffle = Counter(l.join(r).collect())
        adaptive = Counter(l.adaptiveJoin(r).collect())
        bc_right = Counter(l.broadcastJoin(r, "right").collect())
        bc_left = Counter(l.broadcastJoin(r, "left").collect())
    assert shuffle == oracle
    assert adaptive == oracle
    assert bc_right == oracle
    assert bc_left == oracle


def test_adaptive_join_prefers_broadcast_for_small_side():
    left, right = _make_pairs("uniform")
    with SJContext(executor="serial", default_parallelism=4) as ctx:
        l = ctx.parallelize(left, 5)
        r = ctx.parallelize(right, 3)
        l.adaptiveJoin(r).collect()
        joins = ctx.report.joins()
    assert joins, "adaptive join must record its decision"
    d = joins[-1]
    assert d.strategy == "broadcast"
    assert d.build_side == "right"  # the smaller side
    assert d.adaptive


def test_adaptive_join_falls_back_to_shuffle_over_threshold():
    left, right = _make_pairs("uniform")
    with SJContext(
        executor="serial", default_parallelism=4, broadcast_threshold=0
    ) as ctx:
        l = ctx.parallelize(left, 5)
        r = ctx.parallelize(right, 3)
        got = Counter(l.adaptiveJoin(r).collect())
        d = ctx.report.joins()[-1]
    assert d.strategy == "shuffle"
    assert got == nested_loop_join(left, right)


def test_forced_broadcast_ignores_threshold():
    left, right = _make_pairs("uniform")
    with SJContext(
        executor="serial", default_parallelism=4, broadcast_threshold=0
    ) as ctx:
        l = ctx.parallelize(left, 5)
        r = ctx.parallelize(right, 3)
        got = Counter(l.broadcastJoin(r, "right").collect())
        d = ctx.report.joins()[-1]
    assert (d.strategy, d.adaptive) == ("broadcast", False)
    assert got == nested_loop_join(left, right)


def test_broadcast_join_rejects_bad_build_side():
    with SJContext(executor="serial") as ctx:
        l = ctx.parallelize([(1, 1)])
        with pytest.raises(ValueError):
            l.broadcastJoin(l, "sideways")


def test_adaptive_join_with_empty_sides():
    with SJContext(executor="serial", default_parallelism=4) as ctx:
        l = ctx.parallelize([(1, "a"), (2, "b")], 2)
        e = ctx.parallelize([])
        assert l.adaptiveJoin(e).collect() == []
        assert e.adaptiveJoin(l).collect() == []
        assert e.adaptiveJoin(e).collect() == []


def test_broadcast_preserves_duplicate_pairs():
    left = [(1, "a"), (1, "a"), (2, "b")]
    right = [(1, "x"), (1, "x")]
    oracle = nested_loop_join(left, right)
    assert sum(oracle.values()) == 4
    with SJContext(executor="serial", default_parallelism=4) as ctx:
        l = ctx.parallelize(left, 2)
        r = ctx.parallelize(right, 2)
        assert Counter(l.adaptiveJoin(r).collect()) == oracle


def test_adaptive_join_is_lazy():
    with SJContext(executor="serial", default_parallelism=4) as ctx:
        l = ctx.parallelize([(1, "a")])
        j = l.adaptiveJoin(l)
        assert len(ctx.report) == 0  # nothing decided before the action
        j.collect()
        assert ctx.report.joins()


def test_adaptive_join_composes_with_downstream_ops():
    left, right = _make_pairs("uniform")
    oracle = nested_loop_join(left, right)
    want = sorted(k for k, _ in oracle.elements())
    with SJContext(executor="serial", default_parallelism=4) as ctx:
        l = ctx.parallelize(left, 5)
        r = ctx.parallelize(right, 3)
        got = sorted(
            l.adaptiveJoin(r).map(lambda kv: kv[0]).collect()
        )
    assert got == want


# ----------------------------------------------------------------------
# equivalence across executors (incl. fault injection)
# ----------------------------------------------------------------------

def _join_both_ways(ctx, left, right):
    l = ctx.parallelize(left, 5)
    r = ctx.parallelize(right, 3)
    return (
        Counter(l.adaptiveJoin(r).collect()),
        Counter(l.join(r).collect()),
    )


@pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
def test_equivalence_under_thread_executor(dist):
    left, right = _make_pairs(dist, seed=3)
    oracle = nested_loop_join(left, right)
    with SJContext(executor="threads", num_workers=3,
                   default_parallelism=4) as ctx:
        adaptive, shuffle = _join_both_ways(ctx, left, right)
    assert adaptive == oracle
    assert shuffle == oracle


@pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
def test_equivalence_under_process_executor(process_ctx, dist):
    left, right = _make_pairs(dist, seed=4, n_left=120, n_right=30)
    oracle = nested_loop_join(left, right)
    adaptive, shuffle = _join_both_ways(process_ctx, left, right)
    assert adaptive == oracle
    assert shuffle == oracle


@pytest.mark.parametrize("seed", [0, 1, 42])
def test_equivalence_under_task_faults(seed):
    left, right = _make_pairs("skewed", seed=seed)
    oracle = nested_loop_join(left, right)
    inj = FaultInjectingExecutor(
        SerialExecutor(RetryPolicy(**FAST)),
        seed=seed,
        kill_tasks_per_stage=1,
    )
    with SJContext(executor=inj, default_parallelism=4) as ctx:
        adaptive, shuffle = _join_both_ways(ctx, left, right)
    assert adaptive == oracle
    assert shuffle == oracle
    assert inj.injected_task_faults > 0


def test_equivalence_under_pool_death_and_threads():
    left, right = _make_pairs("uniform", seed=9)
    oracle = nested_loop_join(left, right)
    inj = FaultInjectingExecutor(
        ThreadExecutor(2, RetryPolicy(**FAST)),
        seed=2,
        pool_death_stages={0, 2},
    )
    with SJContext(executor=inj, default_parallelism=4) as ctx:
        adaptive, shuffle = _join_both_ways(ctx, left, right)
    assert adaptive == oracle
    assert shuffle == oracle
    assert sum(inj._injected_pool_deaths.values()) > 0


def test_shuffle_fallback_under_faults():
    # force the shuffle path *through the adaptive node* while faults fire
    left, right = _make_pairs("skewed", seed=6)
    oracle = nested_loop_join(left, right)
    inj = FaultInjectingExecutor(
        SerialExecutor(RetryPolicy(**FAST)),
        seed=1,
        kill_tasks_per_stage=1,
    )
    with SJContext(executor=inj, default_parallelism=4,
                   broadcast_threshold=0) as ctx:
        l = ctx.parallelize(left, 5)
        r = ctx.parallelize(right, 3)
        got = Counter(l.adaptiveJoin(r).collect())
        assert ctx.report.joins()[-1].strategy == "shuffle"
    assert got == oracle
