"""Shapeless synthetic tables for the Figure 3 join-scaling studies.

The paper benchmarks its two most expensive derivations — Natural Join
and Interpolation Join — on row counts swept from 2M to 40M over a
10-node cluster. These generators produce the equivalent inputs at
laptop scale: keyed measurement tables for the natural join, and
timestamped sensor-style tables for the interpolation join, both with
annotated schemas so the benchmark exercises the real derivation code
path (not a bare RDD join).
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Tuple

from repro.core.semantics import DOMAIN, VALUE, Schema, SemanticType
from repro.units.temporal import Timestamp

KEYED_LEFT_SCHEMA = Schema({
    "node": SemanticType(DOMAIN, "compute nodes", "identifier"),
    "sample": SemanticType(DOMAIN, "jobs", "identifier"),
    "metric_a": SemanticType(VALUE, "power", "watts"),
})

KEYED_RIGHT_SCHEMA = Schema({
    "node": SemanticType(DOMAIN, "compute nodes", "identifier"),
    "metric_b": SemanticType(VALUE, "temperature", "degrees Celsius"),
})

TIMED_LEFT_SCHEMA = Schema({
    "node": SemanticType(DOMAIN, "compute nodes", "identifier"),
    "time": SemanticType(DOMAIN, "time", "datetime"),
    "metric_a": SemanticType(VALUE, "power", "watts"),
})

TIMED_RIGHT_SCHEMA = Schema({
    "node": SemanticType(DOMAIN, "compute nodes", "identifier"),
    "time": SemanticType(DOMAIN, "time", "datetime"),
    "metric_b": SemanticType(VALUE, "temperature", "degrees Celsius"),
})


def keyed_tables(
    num_rows: int, num_keys: int = 1024, seed: int = 5
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Left: ``num_rows`` samples over ``num_keys`` nodes; right: one
    lookup row per node. Natural join output size == ``num_rows``."""
    rng = random.Random(seed)
    left = [
        {
            "node": rng.randrange(num_keys),
            "sample": i,
            "metric_a": rng.random() * 100.0,
        }
        for i in range(num_rows)
    ]
    right = [
        {"node": k, "metric_b": rng.random() * 40.0}
        for k in range(num_keys)
    ]
    return left, right


def timed_tables(
    num_rows: int,
    num_keys: int = 64,
    left_period: float = 1.0,
    right_period: float = 2.5,
    seed: int = 6,
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Two periodic per-node sample streams with mismatched periods.

    The left stream gets ``num_rows`` samples spread evenly over the
    keys; the right stream covers the same time range at its own
    period, so every left row finds a handful of right matches within
    a small window — the regime the interpolation join targets.
    """
    rng = random.Random(seed)
    per_key = max(1, num_rows // num_keys)
    left: List[Dict[str, Any]] = []
    right: List[Dict[str, Any]] = []
    for k in range(num_keys):
        for i in range(per_key):
            t = i * left_period + rng.uniform(-0.1, 0.1)
            left.append(
                {
                    "node": k,
                    "time": Timestamp(round(t, 4)),
                    "metric_a": rng.random() * 100.0,
                }
            )
        horizon = per_key * left_period
        steps = int(horizon / right_period) + 1
        for j in range(steps):
            t = j * right_period + rng.uniform(-0.2, 0.2)
            right.append(
                {
                    "node": k,
                    "time": Timestamp(round(t, 4)),
                    "metric_b": rng.random() * 40.0,
                }
            )
    return left, right
