"""CSV wrapper/unwrapper."""

import pytest

from repro.core.dataset import ScrubJayDataset
from repro.core.semantics import Schema, domain, value
from repro.errors import WrapperError
from repro.units.temporal import Timestamp, TimeSpan
from repro.wrappers import CSVUnwrapper, CSVWrapper

SCHEMA = Schema({
    "node": domain("compute nodes", "identifier"),
    "span": domain("time", "timespan"),
    "time": domain("time", "datetime"),
    "nodes": domain("compute nodes", "list<identifier>"),
    "temp": value("temperature", "degrees Celsius"),
})

ROWS = [
    {"node": 1, "span": TimeSpan(0, 60), "time": Timestamp(5.0),
     "nodes": [1, 2], "temp": 20.5},
    {"node": 2, "span": TimeSpan(60, 120), "time": Timestamp(65.0),
     "nodes": [3], "temp": 22.0},
]


def test_round_trip(ctx, dictionary, tmp_path):
    path = str(tmp_path / "data.csv")
    ds = ScrubJayDataset.from_rows(ctx, ROWS, SCHEMA, "t")
    assert CSVUnwrapper(path, dictionary).save(ds) == path
    back = CSVWrapper(path, SCHEMA, dictionary).load(ctx)
    assert back.collect() == ROWS


def test_sparse_cells_round_trip(ctx, dictionary, tmp_path):
    path = str(tmp_path / "sparse.csv")
    rows = [{"node": 1, "temp": 20.0}, {"node": 2}]
    ds = ScrubJayDataset.from_rows(ctx, rows, SCHEMA, "t")
    CSVUnwrapper(path, dictionary).save(ds)
    back = CSVWrapper(path, SCHEMA, dictionary).load(ctx)
    assert back.collect() == rows


def test_unknown_columns_ignored(ctx, dictionary, tmp_path):
    path = tmp_path / "extra.csv"
    path.write_text("node,mystery,temp\n1,xyz,20.0\n")
    back = CSVWrapper(str(path), SCHEMA, dictionary).load(ctx)
    assert back.collect() == [{"node": 1, "temp": 20.0}]


def test_no_matching_columns_raises(ctx, dictionary, tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("a,b\n1,2\n")
    with pytest.raises(WrapperError, match="no CSV column"):
        CSVWrapper(str(path), SCHEMA, dictionary).load(ctx)


def test_empty_file_raises(ctx, dictionary, tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(WrapperError):
        CSVWrapper(str(path), SCHEMA, dictionary).load(ctx)


def test_missing_file_raises(ctx, dictionary, tmp_path):
    with pytest.raises(WrapperError, match="cannot read"):
        CSVWrapper(str(tmp_path / "nope.csv"), SCHEMA, dictionary).load(ctx)


def test_load_sets_provenance(ctx, dictionary, tmp_path):
    path = str(tmp_path / "p.csv")
    CSVUnwrapper(path, dictionary).save(
        ScrubJayDataset.from_rows(ctx, ROWS, SCHEMA, "t")
    )
    ds = CSVWrapper(path, SCHEMA, dictionary).load(ctx)
    assert ds.provenance["op"] == "wrap"
    assert ds.provenance["wrapper"] == "CSVWrapper"
