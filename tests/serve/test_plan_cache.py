"""PlanCache: memoized search, single-flight, negative caching, LRU."""

from __future__ import annotations

import threading

import pytest

from repro.core.query import Query
from repro.errors import NoSolutionError
from repro.serve import PlanCache, plan_key

from tests.serve.conftest import JOIN_DOMAINS, JOIN_VALUES


def _solver_counter(session, query):
    calls = {"n": 0}

    def solve():
        calls["n"] += 1
        return session.engine.solve(session.schemas(), query)

    return solve, calls


def test_hit_skips_search_and_counts(serve_session):
    cache = PlanCache()
    q = Query.of(JOIN_DOMAINS, JOIN_VALUES)
    key = plan_key(serve_session.state_fingerprint(), q)
    solve, calls = _solver_counter(serve_session, q)

    p1 = cache.get_or_solve(key, solve)
    p2 = cache.get_or_solve(key, solve)
    assert calls["n"] == 1
    assert p1 is p2
    s = cache.stats()
    assert s["hits"] == 1 and s["misses"] == 1 and s["entries"] == 1


def test_single_flight_under_concurrency(serve_session):
    cache = PlanCache()
    q = Query.of(JOIN_DOMAINS, JOIN_VALUES)
    key = plan_key(serve_session.state_fingerprint(), q)

    calls = {"n": 0}
    gate = threading.Barrier(9)  # 8 workers + main

    def slow_solve():
        calls["n"] += 1
        return serve_session.engine.solve(serve_session.schemas(), q)

    plans = []
    errors = []

    def worker():
        gate.wait()
        try:
            plans.append(cache.get_or_solve(key, slow_solve))
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    gate.wait()
    for t in threads:
        t.join()
    assert not errors
    assert calls["n"] == 1  # exactly one search for 8 concurrent misses
    assert len({id(p) for p in plans}) == 1


def test_negative_caching(serve_session):
    cache = PlanCache()
    # power exists, but 'racks' appears in no registered dataset
    q = Query.of(["racks"], ["power"])
    key = plan_key(serve_session.state_fingerprint(), q)
    solve, calls = _solver_counter(serve_session, q)

    with pytest.raises(NoSolutionError):
        cache.get_or_solve(key, solve)
    with pytest.raises(NoSolutionError):
        cache.get_or_solve(key, solve)
    assert calls["n"] == 1
    assert cache.stats()["negative_hits"] == 1


def test_negative_hits_raise_detached_copies(serve_session):
    """Regression: negative hits used to re-raise the one cached
    exception instance, so concurrent raisers raced on its shared
    __traceback__ and chained each other's frames."""
    cache = PlanCache()
    q = Query.of(["racks"], ["power"])
    key = plan_key(serve_session.state_fingerprint(), q)
    solve, _ = _solver_counter(serve_session, q)

    with pytest.raises(NoSolutionError):
        cache.get_or_solve(key, solve)

    raised = []
    for _ in range(2):
        try:
            cache.get_or_solve(key, solve)
        except NoSolutionError as exc:
            raised.append(exc)
    assert len(raised) == 2
    assert raised[0] is not raised[1]  # fresh copy per hit
    assert raised[0].args == raised[1].args
    # the stored entry pins neither a traceback nor chained frames
    stored = cache._entries[key][1]
    assert stored not in raised
    assert stored.__traceback__ is None


def test_unexpected_solver_error_not_cached(serve_session):
    cache = PlanCache()
    boom = {"n": 0}

    def bad_solver():
        boom["n"] += 1
        raise RuntimeError("flaky")

    with pytest.raises(RuntimeError):
        cache.get_or_solve("k", bad_solver)
    with pytest.raises(RuntimeError):
        cache.get_or_solve("k", bad_solver)
    assert boom["n"] == 2  # retried, not memoized


def test_lru_eviction():
    cache = PlanCache(max_entries=2)
    mk = lambda i: (lambda: i)  # noqa: E731 - plans can be any object here
    cache.get_or_solve("a", mk(1))
    cache.get_or_solve("b", mk(2))
    cache.get_or_solve("a", mk(99))  # refresh a
    cache.get_or_solve("c", mk(3))  # evicts b, not a
    assert cache.peek("a") == 1
    assert cache.peek("b") is None
    assert cache.stats()["evictions"] == 1


def test_state_change_means_new_key(serve_session):
    q = Query.of(JOIN_DOMAINS, JOIN_VALUES)
    k1 = plan_key(serve_session.state_fingerprint(), q)
    serve_session.register_rows(
        [{"node": 0, "metric_b": 2.0}],
        serve_session.dataset("lookup").schema,
        name="another",
    )
    k2 = plan_key(serve_session.state_fingerprint(), q)
    assert k1 != k2
