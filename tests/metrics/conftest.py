"""Shared metrics fixtures: a small rack-power session with a
hand-computable power series."""

from __future__ import annotations

import math

import pytest

from repro import ScrubJaySession, Schema
from repro.core.semantics import domain, value
from repro.units.temporal import Timestamp

RACK_POWER_SCHEMA = Schema({
    "rack": domain("racks", "identifier"),
    "time": domain("time", "datetime"),
    "power": value("power", "watts"),
})

#: 3 racks × 24 samples, one every 5 minutes, over 2 hours
N_RACKS = 3
STEP = 300.0
N_SAMPLES = 24


def power_rows():
    return [
        {"rack": r, "time": Timestamp(i * STEP),
         "power": 100.0 + 10.0 * r + (i % 7)}
        for r in range(N_RACKS)
        for i in range(N_SAMPLES)
    ]


def manual_groups(rows, grain_s, how, value_of=None):
    """The expected ``{(rack, bucket): aggregate}`` computed the naive
    way, for cross-checking the metrics layer."""
    value_of = value_of or (lambda row: row["power"])
    buckets = {}
    for row in rows:
        b = (row["time"].epoch // grain_s) * grain_s
        buckets.setdefault((row["rack"], Timestamp(b)), []).append(
            value_of(row)
        )
    out = {}
    for k, vals in buckets.items():
        if how == "mean":
            out[k] = sum(vals) / len(vals)
        elif how == "sum":
            out[k] = sum(vals)
        elif how == "min":
            out[k] = min(vals)
        elif how == "max":
            out[k] = max(vals)
        elif how == "count":
            out[k] = len(vals)
        else:
            raise AssertionError(how)
    return out


def close(a, b):
    if isinstance(a, float) or isinstance(b, float):
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
    return a == b


def assert_groups_equal(got, want):
    assert set(got) == set(want), (
        len(got), len(want),
        sorted(set(got) ^ set(want), key=repr)[:4],
    )
    for k in want:
        g, w = got[k], want[k]
        if isinstance(w, dict):
            assert set(g) == set(w), (k, g, w)
            for m in w:
                assert close(g[m], w[m]), (k, m, g[m], w[m])
        else:
            assert close(g, w), (k, g, w)


@pytest.fixture()
def power_session():
    sj = ScrubJaySession()
    sj.register_rows(power_rows(), RACK_POWER_SCHEMA, "rack_power")
    yield sj
    sj.close()
