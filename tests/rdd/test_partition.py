"""Partition splitting invariants."""

import pytest

from repro.rdd.partition import Partition, split_into_partitions


def test_split_preserves_order_and_content():
    parts = split_into_partitions(list(range(10)), 3)
    assert [p.index for p in parts] == [0, 1, 2]
    assert [x for p in parts for x in p.data] == list(range(10))


def test_split_sizes_balanced():
    parts = split_into_partitions(list(range(11)), 4)
    sizes = [len(p) for p in parts]
    assert sum(sizes) == 11
    assert max(sizes) - min(sizes) <= 1


def test_split_more_partitions_than_items():
    parts = split_into_partitions([1, 2], 5)
    assert len(parts) == 5
    assert [x for p in parts for x in p.data] == [1, 2]


def test_split_empty_data():
    parts = split_into_partitions([], 3)
    assert len(parts) == 3
    assert all(len(p) == 0 for p in parts)


def test_split_rejects_nonpositive():
    with pytest.raises(ValueError):
        split_into_partitions([1], 0)


def test_partition_iter_and_len():
    p = Partition(0, [1, 2, 3])
    assert list(p) == [1, 2, 3]
    assert len(p) == 3
