"""ScrubJayDataset: an annotated distributed dataset.

Binds together the three things ScrubJay decouples — the data (an RDD
of dict rows), its meaning (a :class:`~repro.core.semantics.Schema`),
and its provenance (a human-readable name plus, once derived, the plan
node that produced it). Rows are variable-length named tuples in the
paper; here they are plain dicts: sparse and heterogeneous values are
handled by simply omitting keys.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.columnar.batch import ColumnBatch
from repro.errors import SemanticError
from repro.core.semantics import Schema
from repro.rdd.context import SJContext
from repro.rdd.rdd import RDD


class ScrubJayDataset:
    """An RDD of dict rows plus the schema describing their semantics."""

    def __init__(
        self,
        rdd: RDD,
        schema: Schema,
        name: str = "<anonymous>",
        provenance: Optional[dict] = None,
    ) -> None:
        self.rdd = rdd
        self.schema = schema
        self.name = name
        #: JSON-able description of how this dataset was produced
        #: (a wrapper invocation or a derivation plan node).
        self.provenance = provenance or {"op": "source", "name": name}
        #: the :class:`~repro.sources.base.DataSource` backing this
        #: dataset, when it was ingested through ``session.ingest()`` —
        #: lets the pushdown rewrite collapse predicates into the scan.
        self.source = None
        #: True when the RDD's elements are
        #: :class:`~repro.columnar.batch.ColumnBatch` instead of dict
        #: rows (columnar execution). Actions flatten batches back to
        #: rows, so callers never observe the difference. Deliberately
        #: NOT propagated by :meth:`with_rdd` — a derived RDD is
        #: row-shaped unless the columnar pipeline marks it otherwise.
        self.batched = False

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @staticmethod
    def from_rows(
        ctx: SJContext,
        rows: List[Dict[str, Any]],
        schema: Schema,
        name: str = "<anonymous>",
        num_partitions: Optional[int] = None,
    ) -> "ScrubJayDataset":
        return ScrubJayDataset(
            ctx.parallelize(rows, num_partitions), schema, name
        )

    def with_rdd(self, rdd: RDD, schema: Optional[Schema] = None,
                 name: Optional[str] = None,
                 provenance: Optional[dict] = None) -> "ScrubJayDataset":
        """A derived dataset sharing this one's context."""
        return ScrubJayDataset(
            rdd,
            schema if schema is not None else self.schema,
            name if name is not None else self.name,
            provenance,
        )

    # ------------------------------------------------------------------
    # data access (actions)
    # ------------------------------------------------------------------

    def collect(self) -> List[Dict[str, Any]]:
        if self.batched:
            rows: List[Dict[str, Any]] = []
            for item in self.rdd.collect():
                if isinstance(item, ColumnBatch):
                    rows.extend(item.to_rows())
                else:
                    rows.append(item)
            return rows
        return self.rdd.collect()

    def take(self, n: int) -> List[Dict[str, Any]]:
        if self.batched:
            # n batches hold >= n rows (batches are never built empty)
            rows: List[Dict[str, Any]] = []
            for item in self.rdd.take(n):
                if isinstance(item, ColumnBatch):
                    rows.extend(item.to_rows())
                else:
                    rows.append(item)
                if len(rows) >= n:
                    break
            return rows[:n]
        return self.rdd.take(n)

    def count(self) -> int:
        if self.batched:
            return sum(
                self.rdd.map(
                    lambda b: b.num_rows
                    if isinstance(b, ColumnBatch)
                    else 1
                ).collect()
            )
        return self.rdd.count()

    def column(self, field: str) -> List[Any]:
        """All values of one field (rows missing the field are skipped)."""
        if field not in self.schema:
            raise SemanticError(
                f"dataset {self.name!r} has no field {field!r}"
            )
        if self.batched:
            out: List[Any] = []
            for item in self.rdd.collect():
                if isinstance(item, ColumnBatch):
                    out.extend(
                        v
                        for v in item.column_values(field)
                        if v is not None
                    )
                elif field in item:
                    out.append(item[field])
            return out
        return (
            self.rdd.filter(lambda row: field in row)
            .map(lambda row: row[field])
            .collect()
        )

    # ------------------------------------------------------------------
    # simple relational helpers (analyst conveniences; the engine
    # itself only uses derivations)
    # ------------------------------------------------------------------

    def select(self, *fields: str) -> "ScrubJayDataset":
        for f in fields:
            if f not in self.schema:
                raise SemanticError(
                    f"dataset {self.name!r} has no field {f!r}"
                )
        keep = set(fields)
        from repro.rdd.rdd import ScanRDD  # deferred: avoids churn above
        if isinstance(self.rdd, ScanRDD):
            # projection pushdown: the source reads only these columns
            rdd: RDD = self.rdd.with_columns(fields)
        else:
            rdd = self.rdd.map(
                lambda row: {k: v for k, v in row.items() if k in keep}
            )
        return self.with_rdd(
            rdd,
            Schema({f: self.schema[f] for f in fields}),
            provenance={"op": "select", "fields": list(fields),
                        "input": self.provenance},
        )

    def where(self, predicate) -> "ScrubJayDataset":
        return self.with_rdd(
            self.rdd.filter(predicate),
            provenance={"op": "where", "input": self.provenance},
        )

    def persist(self) -> "ScrubJayDataset":
        self.rdd.persist()
        return self

    # ------------------------------------------------------------------

    def validate(self, dictionary) -> "ScrubJayDataset":
        """Validate the schema against a semantic dictionary; returns
        self so it chains."""
        dictionary.validate_schema(self.schema)
        return self

    # ------------------------------------------------------------------
    # adaptive-execution observability
    # ------------------------------------------------------------------

    def stats(self):
        """Sampled statistics (rows, approximate bytes) for the data.

        Materializes the RDD; the result is cached on it and feeds the
        adaptive planner's join/shuffle decisions.
        """
        return self.rdd.stats()

    @property
    def execution_report(self):
        """The context's :class:`~repro.rdd.stats.ExecutionReport` —
        the audit trail of join strategies, partition counts, and
        shuffle volumes chosen while computing this (and any other)
        dataset on the same context."""
        return getattr(self.ctx, "report", None)

    @property
    def ctx(self) -> SJContext:
        return self.rdd.ctx

    def __repr__(self) -> str:
        return f"ScrubJayDataset({self.name!r}, {self.schema!r})"
