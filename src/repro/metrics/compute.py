"""Metric evaluation: compile measure/grain terms onto a result
dataset.

A metric query's *base* relation is solved by the derivation engine
like any other query; this module does the measure half — resolve the
per/grain dimensions to result-schema fields, compute mergeable group
partials per measure (:func:`metric_partials`), snap them to the time
grain (:func:`rebucket_partials`), and finalize — applying trailing
windows over the bucketed series where a measure asks for one.

Partials, not finalized values, cross every boundary (shards,
subscriptions, rollups); finalize happens exactly once, driver-side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import QueryError
from repro.analysis.aggregate import (
    _merge_for,
    finalize_group_partials,
    merge_group_partials,
)
from repro.core.query import Grain, Measure, Query
from repro.core.semantics import DOMAIN, Schema, VALUE
from repro.units.temporal import Timestamp


def resolve_domain_field(schema: Schema, dimension: str) -> str:
    """The single domain field carrying ``dimension`` in the result."""
    fields = schema.fields_for(dimension, DOMAIN)
    if len(fields) != 1:
        raise QueryError(
            f"metric dimension {dimension!r} needs exactly one domain "
            f"field in the answer schema, found {sorted(fields)}"
        )
    return fields[0]


def resolve_value_field(schema: Schema, dimension: str) -> str:
    """The single value field carrying ``dimension`` in the result."""
    fields = schema.fields_for(dimension, VALUE)
    if len(fields) != 1:
        raise QueryError(
            f"measure dimension {dimension!r} needs exactly one value "
            f"field in the answer schema, found {sorted(fields)}"
        )
    return fields[0]


def metric_group_fields(
    schema: Schema, query: Query
) -> Tuple[List[str], Optional[str]]:
    """``(group_fields, time_field)`` for a metric query against a
    result schema: per-dims resolved in query order, the grain's time
    field appended last (the group-tuple layout every metric path —
    raw, sharded, rollup — agrees on)."""
    gf = [resolve_domain_field(schema, d) for d in query.per]
    tfield = None
    if query.grain is not None:
        tfield = resolve_domain_field(schema, query.grain.dimension)
        gf.append(tfield)
    return gf, tfield


def rebucket_partials(
    partials: Dict[Tuple, Any],
    grain: Optional[Grain],
    how: str,
    bucket_index: int = -1,
) -> Dict[Tuple, Any]:
    """Snap the time component of each group key (position
    ``bucket_index``) to its grain bucket, merging partials that land
    in the same bucket. Identity when there is no grain."""
    if grain is None:
        return partials
    out: Dict[Tuple, Any] = {}
    merge = _merge_for(how)
    for key, val in partials.items():
        t = key[bucket_index]
        epoch = getattr(t, "epoch", t)
        bucketed = Timestamp(grain.bucket(epoch))
        nk = list(key)
        nk[bucket_index] = bucketed
        nk = tuple(nk)
        out[nk] = merge(out[nk], val) if nk in out else val
    return out


def metric_partials(
    dataset, query: Query
) -> Dict[str, Dict[Tuple, Any]]:
    """Per-measure mergeable partial states for a metric query over a
    result dataset: ``{measure_key: {(per..., bucket): partial}}``.

    Group keys are per-dim values in query order with the bucket-start
    :class:`Timestamp` last (when the query has a grain).
    """
    from repro.analysis.aggregate import group_aggregate_partials

    schema = dataset.schema
    gf, tfield = metric_group_fields(schema, query)
    out: Dict[str, Dict[Tuple, Any]] = {}
    for m in query.measures:
        vfield = resolve_value_field(schema, m.dimension)
        part = group_aggregate_partials(
            dataset, gf, vfield, m.how
        )
        if tfield is not None:
            part = rebucket_partials(part, query.grain, m.how)
        out[m.key()] = part
    return out


def _windowed(
    partials: Dict[Tuple, Any],
    measure: Measure,
    grain: Grain,
) -> Dict[Tuple, Any]:
    """Finalized trailing-window values: at each bucket, the aggregate
    over every bucket of the same group within ``(t - window, t]``."""
    merge = _merge_for(measure.how)
    by_group: Dict[Tuple, List[Tuple[float, Any]]] = {}
    for key, val in partials.items():
        g, t = key[:-1], key[-1]
        epoch = getattr(t, "epoch", t)
        by_group.setdefault(g, []).append((epoch, val))
    out: Dict[Tuple, Any] = {}
    for g, series in by_group.items():
        series.sort(key=lambda p: p[0])
        for i, (t, _) in enumerate(series):
            acc = None
            for u, val in series:
                if t - measure.window < u <= t:
                    acc = val if acc is None else merge(acc, val)
            out[g + (Timestamp(t),)] = acc
    return finalize_group_partials(out, measure.how)


def finalize_metric(
    partials: Dict[str, Dict[Tuple, Any]], query: Query
) -> Dict[Tuple, Dict[str, Any]]:
    """Turn per-measure partial states into the metric answer's
    ``{group_tuple: {measure_key: value}}`` groups."""
    measures = {m.key(): m for m in query.measures}
    final: Dict[str, Dict[Tuple, Any]] = {}
    for mkey, part in partials.items():
        m = measures[mkey]
        if m.window is not None:
            if query.grain is None:
                raise QueryError(
                    f"windowed measure {m} needs a time grain"
                )
            final[mkey] = _windowed(part, m, query.grain)
        else:
            final[mkey] = finalize_group_partials(dict(part), m.how)
    groups: Dict[Tuple, Dict[str, Any]] = {}
    for mkey, values in final.items():
        for g, v in values.items():
            groups.setdefault(g, {})[mkey] = v
    return groups


def merge_metric_partials(
    acc: Dict[str, Dict[Tuple, Any]],
    part: Dict[str, Dict[Tuple, Any]],
    query: Query,
) -> Dict[str, Dict[Tuple, Any]]:
    """Merge one per-measure partial state into ``acc`` (in place)."""
    hows = {m.key(): m.how for m in query.measures}
    for mkey, values in part.items():
        merge_group_partials(
            acc.setdefault(mkey, {}), values, hows[mkey]
        )
    return acc


@dataclass
class MetricAnswer:
    """The result of a metric query.

    ``groups`` maps ``(per-dim values..., bucket Timestamp)`` — the
    bucket present only when the query has a grain — to
    ``{measure_key: value}``. ``decision`` is the
    :class:`~repro.rdd.stats.RollupDecision` that routed the query.
    """

    query: Query
    groups: Dict[Tuple, Dict[str, Any]]
    decision: Any = None
    #: group-key layout: per-dims (in query order), then the grain
    group_dims: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.group_dims:
            dims = tuple(self.query.per)
            if self.query.grain is not None:
                dims += (self.query.grain.dimension,)
            self.group_dims = dims

    def measure_keys(self) -> List[str]:
        return [m.key() for m in self.query.measures]

    def rows(self) -> List[Dict[str, Any]]:
        """The groups as plain rows (group dims + measure columns),
        sorted by group key."""
        out = []
        for g in sorted(self.groups, key=repr):
            row = dict(zip(self.group_dims, g))
            row.update(self.groups[g])
            out.append(row)
        return out

    def series(self, measure_key: Optional[str] = None
               ) -> Dict[Tuple, List[Tuple[Any, Any]]]:
        """Per-group time series ``{per_tuple: [(bucket, value),
        ...]}`` for one measure (default: the only one)."""
        if measure_key is None:
            keys = self.measure_keys()
            if len(keys) != 1:
                raise QueryError(
                    f"answer has measures {keys}; pass measure_key"
                )
            measure_key = keys[0]
        if self.query.grain is None:
            raise QueryError("series() needs a grain")
        out: Dict[Tuple, List[Tuple[Any, Any]]] = {}
        for g, values in self.groups.items():
            if measure_key not in values:
                continue
            out.setdefault(g[:-1], []).append(
                (g[-1], values[measure_key])
            )
        for s in out.values():
            s.sort(key=lambda p: getattr(p[0], "epoch", p[0]))
        return out

    def __len__(self) -> int:
        return len(self.groups)
