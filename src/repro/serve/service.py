"""QueryService: many concurrent clients, one shared session.

The pipeline each admitted query walks::

    admission (bounded, load-shedding)
        → per-tenant FIFO queues (round-robin fairness)
            → plan cache (memoized §5.2 search, single-flight)
                → derivation engine (cold search only)
            → result cache (semantic key + TTL/LRU)
                → shared SJContext executor pool (cold results only)

Design decisions, in the order they bite under load:

- **Admission control.** The queue is bounded (``max_queue``). A
  submit that finds it full is rejected *immediately* with
  :class:`~repro.errors.ServiceOverloadError` — shedding at the door
  keeps latency of admitted queries bounded and can never deadlock or
  accumulate unbounded memory. This is the standard
  fail-fast alternative to infinite queues.
- **Fairness.** Each tenant gets its own FIFO; workers take from
  tenants round-robin, so one chatty tenant cannot starve the rest —
  within a tenant, order is preserved.
- **Timeouts & cancellation.** A query's deadline covers queue wait +
  execution. Expired-in-queue tickets are never dispatched;
  cancellation is cooperative (a running query finishes its current
  stage but its late result is discarded in favor of the typed
  error). This mirrors the PR-1 taxonomy's stance: the executor owns
  intra-task retries, the layer above owns end-to-end budgets.
- **Retries.** Transient executor failures (worker pool death,
  injected faults that exhausted the task budget) are retried whole —
  classification reuses :meth:`repro.rdd.fault.RetryPolicy.is_transient`,
  so the service and the executor agree on what "transient" means.
- **One engine, many clients.** The schema-level search is serialized
  by the engine's own lock and de-duplicated by the plan cache's
  single-flight, so a thundering herd on a cold key pays exactly one
  search.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.aggregate import (
    finalize_group_partials,
    group_aggregate_partials,
)
from repro.config import ServeConfig
from repro.core.dataset import ScrubJayDataset
from repro.core.query import Query, QueryBuilder, ValueSpec
from repro.errors import (
    ExecutorError,
    QueryCancelledError,
    QueryTimeoutError,
    ScrubJayError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadError,
    ShardStaleReadError,
    StaleRefreshError,
    SubscriptionError,
)
from repro.rdd.fault import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.rdd.rdd import ScanRDD
from repro.serve.keys import normalize_query, plan_key, result_key
from repro.serve.metrics import ServiceMetrics, ServiceSnapshot
from repro.serve.plan_cache import PlanCache
from repro.serve.result_cache import ResultCache
from repro.serve.subscribe import Subscription, SubscriptionUpdate
from repro.stream import DeltaPlan

_QUEUED = "queued"
_RUNNING = "running"
_DONE = "done"
_CANCELLED = "cancelled"

#: distinguishes "kwarg not passed" from an explicit None for the
#: nullable knobs (default_timeout, result_ttl)
_UNSET: Any = object()


@dataclass(frozen=True)
class AggregateSpec:
    """A grouped aggregation to apply to a query's result.

    Mirrors :func:`repro.analysis.aggregate.group_aggregate`:
    ``value_field`` aggregated per distinct ``group_by`` tuple with
    ``how`` (mean/sum/min/max/count), all over the *result* dataset's
    field names. Attached to a :class:`QueryTicket`, it makes the
    ticket deliver the small ``{group_tuple: value}`` dict instead of
    the dataset — which is what lets a sharded fleet answer it from
    per-shard partial aggregates instead of shipping rows.

    ``partial=True`` skips the finalize step and delivers the raw
    mergeable partials (``mean`` → ``(sum, count)`` tuples). That mode
    exists for the wire's scatter-gather: a shard answers with its
    partials and the router merges across shards before finalizing
    once.
    """

    group_by: Tuple[str, ...]
    value_field: str
    how: str = "mean"
    partial: bool = False

    def as_partial(self) -> "AggregateSpec":
        """This spec in partial (unfinalized, mergeable) mode."""
        if self.partial:
            return self
        return AggregateSpec(
            self.group_by, self.value_field, self.how, True
        )

    def to_wire(self) -> Dict[str, Any]:
        """The request fields every aggregate-carrying wire op uses."""
        return {
            "group_by": list(self.group_by),
            "value_field": self.value_field,
            "how": self.how,
            "partial": self.partial,
        }

    @classmethod
    def from_wire(
        cls, request: Dict[str, Any]
    ) -> Optional["AggregateSpec"]:
        """The spec a wire request carries, or None when it has no
        ``group_by`` (the single decode point for every op)."""
        if not request.get("group_by"):
            return None
        return cls(
            tuple(request["group_by"]),
            str(request.get("value_field")),
            str(request.get("how", "mean")),
            bool(request.get("partial")),
        )

    @classmethod
    def for_metric_query(
        cls, schema, query: Query, partial: bool = False
    ) -> "AggregateSpec":
        """Build the spec from the measure API: a metric
        :class:`Query` with exactly one non-windowed measure, resolved
        against the plan's result ``schema`` (per-dims in query order,
        the grain's time field last — the layout every metric path
        agrees on)."""
        from repro.metrics.compute import (
            metric_group_fields,
            resolve_value_field,
        )

        if len(query.measures) != 1:
            raise ServiceError(
                "an aggregate needs exactly one measure; got "
                f"{[str(m) for m in query.measures]}"
            )
        m = query.measures[0]
        if m.window is not None:
            raise ServiceError(
                f"windowed measure {m} cannot fold incrementally; "
                "subscribe to the plain measure and window client-side"
            )
        gf, _ = metric_group_fields(schema, query)
        return cls(
            tuple(gf),
            resolve_value_field(schema, m.dimension),
            m.how,
            partial,
        )


def as_query(
    query,
    values: Sequence[ValueSpec] = (),
    filters: Sequence = (),
) -> Query:
    """Coerce the serve API's first argument into a :class:`Query`.

    Accepts a built :class:`Query`, an unbuilt
    :class:`~repro.core.query.QueryBuilder` (built here, so its typed
    validation errors surface at the call site), or the legacy
    ``(domains, values)`` positional pair.
    """
    if isinstance(query, QueryBuilder):
        if values or filters:
            raise ServiceError(
                "pass measures/values/filters on the builder itself, "
                "not alongside it"
            )
        return query.build()
    if isinstance(query, Query):
        if values or filters:
            raise ServiceError(
                "a Query already carries its values and filters; do "
                "not pass them separately"
            )
        return query
    return Query.of(query, values, filters)


class QueryTicket:
    """Future-like handle for one submitted query."""

    def __init__(
        self,
        tenant: str,
        query: Query,
        submitted_at: float,
        deadline: Optional[float],
        aggregate: Optional[AggregateSpec] = None,
    ) -> None:
        self.tenant = tenant
        self.query = query
        self.submitted_at = submitted_at
        self.deadline = deadline
        #: when set, the ticket delivers ``{group_tuple: value}``
        #: (see :class:`AggregateSpec`) instead of a dataset
        self.aggregate = aggregate
        self.state = _QUEUED
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: root trace span of this query's service-side processing
        #: (queue-wait, cache lookups, solve, execution) — None unless
        #: the session's tracer is enabled
        self.trace = None
        self._event = threading.Event()
        #: a ScrubJayDataset, or a {group_tuple: value} dict for
        #: aggregate tickets
        self._result: Optional[Any] = None
        self._error: Optional[BaseException] = None
        #: result-dataset schema, populated for aggregate tickets so
        #: the wire layer can codec-encode group-key parts
        self.result_schema = None

    # -- completion (service side) -------------------------------------

    def _deliver(
        self,
        result: Optional[Any],
        error: Optional[BaseException],
        finished_at: float,
    ) -> None:
        self._result = result
        self._error = error
        self.finished_at = finished_at
        if self.state != _CANCELLED:
            self.state = _DONE
        self._event.set()

    # -- client side ---------------------------------------------------

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until the query finishes; re-raise its error if it
        failed. ``timeout`` bounds only this wait, not the query.
        Returns the result dataset — or the ``{group_tuple: value}``
        dict for aggregate tickets."""
        if not self._event.wait(timeout):
            raise QueryTimeoutError(
                f"no result within {timeout}s (query still "
                f"{self.state}; the ticket remains valid)"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def exception(
        self, timeout: Optional[float] = None
    ) -> Optional[BaseException]:
        if not self._event.wait(timeout):
            raise QueryTimeoutError(f"no outcome within {timeout}s")
        return self._error

    def latency(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def __repr__(self) -> str:
        return (
            f"QueryTicket(tenant={self.tenant!r}, state={self.state}, "
            f"query={self.query})"
        )


class QueryService:
    """Concurrent, cached, admission-controlled front-end over one
    :class:`~repro.session.ScrubJaySession`.

    Parameters
    ----------
    session:
        The shared session (catalog + dictionary + engine + context).
    num_workers:
        Service worker threads (concurrent queries in execution).
        Distinct from the executor's data-parallel workers: a service
        worker drives one query end-to-end; the session's executor
        pool parallelizes *within* each query.
    max_queue:
        Admission bound across all tenants; beyond it submissions shed
        with :class:`ServiceOverloadError`.
    default_timeout:
        Per-query deadline (seconds, queue wait + execution) applied
        when ``submit`` gets none. ``None`` = no deadline.
    plan_cache_entries / result_cache_entries / result_ttl:
        Cache bounds; see :class:`PlanCache` / :class:`ResultCache`.
    use_disk_cache:
        When True (default) and the session has a
        :class:`~repro.core.cache.DerivationCache`, the result cache
        writes through to it and warm-starts from it.
    max_query_attempts:
        End-to-end attempts per query on *transient* executor errors.
    retry_policy:
        Transient/fatal classifier; defaults to the session executor's
        policy.
    """

    def __init__(
        self,
        session,
        config: Optional[ServeConfig] = None,
        num_workers: Optional[int] = None,
        max_queue: Optional[int] = None,
        default_timeout: Optional[float] = _UNSET,
        plan_cache_entries: Optional[int] = None,
        result_cache_entries: Optional[int] = None,
        result_ttl: Optional[float] = _UNSET,
        use_disk_cache: Optional[bool] = None,
        max_query_attempts: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
        metrics_window_s: Optional[float] = None,
        clock=time.monotonic,
    ) -> None:
        # Settings resolve: explicit kwarg > typed ServeConfig > the
        # session profile's serve.* section. The kwargs stay so direct
        # QueryService construction keeps working; session.serve() now
        # passes a validated ServeConfig instead of loose kwargs.
        base = config
        if base is None:
            profile = getattr(session, "profile", None)
            base = (
                profile.serve_config()
                if profile is not None
                else ServeConfig()
            )
        overrides = {
            k: v
            for k, v in {
                "num_workers": num_workers,
                "max_queue": max_queue,
                "plan_cache_entries": plan_cache_entries,
                "result_cache_entries": result_cache_entries,
                "use_disk_cache": use_disk_cache,
                "max_query_attempts": max_query_attempts,
                "metrics_window_s": metrics_window_s,
            }.items()
            if v is not None
        }
        if default_timeout is not _UNSET:
            overrides["default_timeout"] = default_timeout
        if result_ttl is not _UNSET:
            overrides["result_ttl"] = result_ttl
        cfg = base.with_overrides(**overrides)
        self.config = cfg
        if cfg.num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if cfg.max_queue <= 0:
            raise ValueError("max_queue must be positive")
        self.session = session
        self.default_timeout = cfg.default_timeout
        self.max_queue = cfg.max_queue
        self.max_query_attempts = max(1, cfg.max_query_attempts)
        self.retry_policy = (
            retry_policy
            or getattr(
                session.ctx.executor, "retry_policy", DEFAULT_RETRY_POLICY
            )
        )
        self._clock = clock
        self.plan_cache = PlanCache(cfg.plan_cache_entries)
        backing = session.cache if cfg.use_disk_cache else None
        self.result_cache = ResultCache(
            cfg.result_cache_entries, cfg.result_ttl, backing=backing,
            clock=clock,
        )
        self.metrics = ServiceMetrics(
            window_s=cfg.metrics_window_s,
            clock=clock,
            registry=getattr(session.ctx, "metrics", None),
        )
        # Tuned knob changes take effect on the live service: the only
        # serve knob the tuner moves today is the result-cache TTL.
        self._profile = getattr(session, "profile", None)
        self._profile_listener = None
        if self._profile is not None:
            def _on_knob(name, old, new, _svc=self):
                if name == "serve.result_ttl":
                    _svc.result_cache.ttl = new
            self._profile_listener = self._profile.on_change(_on_knob)
        self._completions_since_observe = 0

        self._subs: Dict[str, Subscription] = {}
        self._subs_lock = threading.Lock()
        self._sub_counter = 0
        self._stream_stats = {
            "refresh_delta": 0,
            "refresh_replay": 0,
            "refresh_rows": 0,
        }

        self._cond = threading.Condition()
        self._queues: Dict[str, "deque[QueryTicket]"] = {}
        self._rr: List[str] = []  # tenants with queued work, in turn order
        self._queued = 0
        self._in_flight = 0
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"sj-serve-{i}",
                daemon=True,
            )
            for i in range(cfg.num_workers)
        ]
        for w in self._workers:
            w.start()

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------

    def submit(
        self,
        query,
        values: Sequence[ValueSpec] = (),
        tenant: str = "default",
        timeout: Optional[float] = None,
        filters: Sequence = (),
        aggregate: Optional[AggregateSpec] = None,
    ) -> QueryTicket:
        """Admit a query (or shed it) and return its ticket.

        ``query`` is a :class:`Query`, a
        :class:`~repro.core.query.QueryBuilder`, or the legacy domain
        list (with ``values``/``filters`` alongside). A metric query
        (``.measure()``/``.per()``/``.grain()``) delivers a
        :class:`~repro.metrics.MetricAnswer`; ``aggregate`` is
        rejected for those — the measures *are* the aggregation.
        """
        query = as_query(query, values, filters)
        if query.is_metric and aggregate is not None:
            raise ServiceError(
                "a metric query carries its own measures; drop the "
                "AggregateSpec"
            )
        now = self._clock()
        effective = self.default_timeout if timeout is None else timeout
        deadline = None if effective is None else now + effective
        ticket = QueryTicket(tenant, query, now, deadline, aggregate)
        with self._cond:
            if self._closed:
                raise ServiceClosedError("service is closed")
            if self._queued >= self.max_queue:
                self.metrics.record_shed()
                raise ServiceOverloadError(
                    f"admission queue full ({self._queued}/"
                    f"{self.max_queue}); retry with backoff",
                    queue_depth=self._queued,
                    max_queue=self.max_queue,
                )
            q = self._queues.get(tenant)
            if q is None:
                q = self._queues[tenant] = deque()
            q.append(ticket)
            if tenant not in self._rr:
                self._rr.append(tenant)
            self._queued += 1
            self.metrics.record_submitted()
            self._cond.notify()
        return ticket

    def query(
        self,
        query,
        values: Sequence[ValueSpec] = (),
        tenant: str = "default",
        timeout: Optional[float] = None,
        filters: Sequence = (),
    ) -> Any:
        """Synchronous convenience: submit and wait for the result
        (a dataset, or a :class:`~repro.metrics.MetricAnswer` for a
        metric query)."""
        return self.submit(
            query, values, tenant, timeout, filters
        ).result()

    def aggregate(
        self,
        query,
        values: Sequence[ValueSpec] = (),
        group_by: Sequence[str] = (),
        value_field: Optional[str] = None,
        how: str = "mean",
        tenant: str = "default",
        timeout: Optional[float] = None,
        filters: Sequence = (),
    ) -> Any:
        """Answer an aggregation over a query's result.

        The measure-aware form passes a metric :class:`Query` (or
        builder) as ``query`` — measures/per/grain *are* the spec —
        and returns a :class:`~repro.metrics.MetricAnswer`. The
        field-level form names ``group_by``/``value_field``/``how``
        over the result schema and returns the small
        ``{group_tuple: value}`` dict.

        Either way it goes through the same admission/fairness/
        deadline pipeline as :meth:`query`; a sharded fleet answers
        from per-shard partial aggregates merged driver-side, so only
        group partials — never rows — cross the wire.
        """
        q = as_query(query, values, filters)
        if q.is_metric:
            if group_by or value_field is not None:
                raise ServiceError(
                    "a metric query carries its own measures; drop "
                    "group_by/value_field"
                )
            return self.submit(q, tenant=tenant,
                               timeout=timeout).result()
        if not group_by or value_field is None:
            raise ServiceError(
                "a plain aggregate needs group_by and value_field "
                "(or pass a metric query built with .measure())"
            )
        spec = AggregateSpec(tuple(group_by), value_field, how)
        return self.submit(
            q, tenant=tenant, timeout=timeout, aggregate=spec
        ).result()

    def _aggregate_for_wire(
        self,
        query,
        spec: AggregateSpec,
        tenant: str = "default",
        timeout: Optional[float] = None,
        partial: bool = False,
    ) -> Tuple[Dict[Tuple, Any], Any]:
        """Wire-layer aggregate entry: returns ``(groups, schema)``.

        ``partial=True`` is how a shard serves the router — it answers
        with unfinalized mergeable partials. The result schema rides
        along so the caller can codec-encode the group-key parts.
        """
        if partial:
            spec = spec.as_partial()
        ticket = self.submit(
            query, tenant=tenant, timeout=timeout, aggregate=spec
        )
        groups = ticket.result()
        return groups, ticket.result_schema

    # ------------------------------------------------------------------
    # standing subscriptions (the streaming serve tier)
    # ------------------------------------------------------------------

    def _columnar(self) -> bool:
        return bool(getattr(
            getattr(self.session.engine, "config", None),
            "columnar", False,
        ))

    def _columnar_off(self) -> tuple:
        return tuple(getattr(
            getattr(self.session.engine, "config", None),
            "columnar_off_ops", (),
        ))

    def _pinned_catalog(
        self, watermarks: Dict[str, int]
    ) -> Dict[str, ScrubJayDataset]:
        """The session catalog with each feed dataset in
        ``watermarks`` swapped for a frozen snapshot bounded at its
        watermark — execution against it can never observe rows a
        concurrent writer appends mid-flight (the no-mixed-watermark
        rule)."""
        session = self.session
        catalog = session.snapshot()
        for name, mark in watermarks.items():
            feed = session.feeds.get(name)
            if feed is None:
                continue
            src = feed.source.bounded(mark)
            src.name = name
            ds = ScrubJayDataset(
                ScanRDD(session.ctx, src),
                src.schema(),
                name,
                provenance={"op": "scan",
                            "source": type(src).__name__,
                            "name": name, "bounded_at": mark},
            )
            ds.source = src
            catalog[name] = ds
        return catalog

    def _solve_serve_plan(self, nq: Query):
        """Solve a normalized query for the serve tier: the engine
        answers the base relation; a metric query's grain rides along
        as a ``bucket_time`` transform on top (row-local, so delta
        refreshes stay incremental and group keys land pre-bucketed).
        """
        session = self.session
        plan = session.engine.solve(session.schemas(), nq.base())
        if nq.is_metric and nq.grain is not None:
            from repro.core.pipeline import (
                DerivationPlan,
                TransformNode,
            )
            from repro.metrics.compute import metric_group_fields
            from repro.metrics.derive import BucketTime

            schema = plan.derive_schema(
                session.schemas(), session.dictionary
            )
            _, tfield = metric_group_fields(schema, nq)
            plan = DerivationPlan(TransformNode(
                BucketTime(tfield, nq.grain.seconds), plan.root
            ))
        return plan

    def subscribe(
        self,
        query,
        values: Sequence[ValueSpec] = (),
        tenant: str = "default",
        filters: Sequence = (),
        aggregate: Optional[AggregateSpec] = None,
        partial: bool = False,
    ) -> Subscription:
        """Install a standing query and return its
        :class:`~repro.serve.subscribe.Subscription`.

        The initial answer is computed synchronously against the
        plan's feed inputs pinned at their current watermarks. From
        then on, :meth:`advance` refreshes it — incrementally when
        the plan is delta-safe (see
        :class:`~repro.stream.DeltaPlan`), by scoped replay
        otherwise. ``aggregate`` keeps mergeable group partials
        instead of rows, so delta refreshes fold appends in at
        O(delta) regardless of history size. A metric ``query``
        (single non-windowed measure) derives its spec from the
        measures — the grain buckets inside the plan, so updates
        arrive keyed by ``(per-dims..., bucket)``.
        """
        session = self.session
        query = as_query(query, values, filters)
        if query.is_metric and aggregate is not None:
            raise ServiceError(
                "a metric subscription derives its aggregate from "
                "the measures; drop the AggregateSpec"
            )
        state = session.state_fingerprint()
        nq = normalize_query(query)
        pkey = plan_key(state, nq)
        plan = self.plan_cache.get_or_solve(
            pkey, lambda: self._solve_serve_plan(nq)
        )
        dplan = DeltaPlan(plan)
        feed_names = tuple(
            n for n in dplan.dataset_names() if n in session.feeds
        )
        marks = {
            n: session.feeds[n].watermark for n in feed_names
        }
        dataset = dplan.execute_full(
            self._pinned_catalog(marks),
            session.dictionary,
            columnar=self._columnar(),
            columnar_off=self._columnar_off(),
        )
        if query.is_metric:
            # ``partial=True`` is the sharded fleet's mode: the shard
            # keeps mergeable partials and the router finalizes
            aggregate = AggregateSpec.for_metric_query(
                dataset.schema, query, partial=partial
            )
        rows = partials = None
        if aggregate is not None:
            partials = group_aggregate_partials(
                dataset, list(aggregate.group_by),
                aggregate.value_field, aggregate.how,
            )
        else:
            rows = dataset.collect()
        with self._subs_lock:
            self._sub_counter += 1
            sub_id = f"sub-{self._sub_counter}"
            sub = Subscription(
                sub_id, tenant, query, plan, dplan, aggregate,
                feed_names, marks, dataset.schema,
                rows=rows, partials=partials,
            )
            self._subs[sub_id] = sub
        reg = getattr(session.ctx, "metrics", None)
        if reg is not None:
            reg.inc("stream.subscribe")
        return sub

    def subscription(self, sub_id: str) -> Subscription:
        with self._subs_lock:
            sub = self._subs.get(sub_id)
        if sub is None:
            raise SubscriptionError(
                f"no subscription {sub_id!r}"
            )
        return sub

    def subscriptions(self) -> List[Subscription]:
        with self._subs_lock:
            return list(self._subs.values())

    def unsubscribe(self, sub_id: str) -> bool:
        with self._subs_lock:
            sub = self._subs.pop(sub_id, None)
        if sub is None:
            return False
        sub._close()
        reg = getattr(self.session.ctx, "metrics", None)
        if reg is not None:
            reg.inc("stream.unsubscribe")
        return True

    def advance(
        self,
        name: str,
        rows: Optional[List[Dict[str, Any]]] = None,
    ) -> Dict[str, Any]:
        """Advance feed ``name`` (pushing ``rows`` first when given,
        otherwise tailing whatever its source committed), then keep
        the serve tier honest about it: scoped-evict the result-cache
        entries whose plans read the dataset
        (:meth:`ResultCache.invalidate_dataset` — unrelated tenants'
        entries survive) and synchronously refresh every dependent
        subscription to the new watermark."""
        session = self.session
        try:
            feed = session.feed(name)
        except ScrubJayError as exc:
            raise SubscriptionError(str(exc)) from exc
        adv = feed.push(rows) if rows is not None else feed.advance()
        evicted = refreshed = 0
        if adv.advanced:
            evicted = self.result_cache.invalidate_dataset(name)
            with self._subs_lock:
                dependents = [
                    s for s in self._subs.values()
                    if name in s.feed_names and not s.closed
                ]
            for sub in dependents:
                if self._refresh_subscription(sub):
                    refreshed += 1
        return {
            "name": name,
            "since": adv.since,
            "watermark": adv.watermark,
            "rows_added": adv.rows_added,
            "evicted": evicted,
            "subscriptions_refreshed": refreshed,
        }

    def _refresh_subscription(self, sub: Subscription) -> bool:
        """Bring one subscription to its feeds' current watermarks;
        True when at least one commit happened.

        Runs under the subscription's refresh lock and loops: a feed
        advancing *mid-refresh* just means another round — every
        committed answer is internally consistent at its recorded
        watermarks, so the race costs a retry, never a mixed-
        watermark answer. A writer that outruns the refresher for 16
        straight rounds raises :class:`StaleRefreshError` rather than
        looping forever.
        """
        session = self.session
        reg = getattr(session.ctx, "metrics", None)
        committed = False
        with sub._refresh_lock:
            for _ in range(16):
                if sub.closed:
                    return committed
                base = dict(sub.watermarks)
                targets = dict(base)
                changed = set()
                for n in sub.feed_names:
                    feed = session.feeds.get(n)
                    if feed is None:
                        continue
                    targets[n] = feed.watermark
                    if targets[n] != base.get(n):
                        changed.add(n)
                if not changed:
                    return committed
                mode, decisions = sub.delta_plan.classify(changed)
                sub.delta_plan.record(
                    getattr(session.ctx, "report", None), decisions
                )
                if mode == "delta":
                    self._refresh_delta(sub, base, targets, changed)
                else:
                    self._refresh_replay(sub, targets)
                committed = True
                key = ("refresh_delta" if mode == "delta"
                       else "refresh_replay")
                with self._subs_lock:
                    self._stream_stats[key] += 1
                if reg is not None:
                    reg.inc(
                        "stream.refresh.delta" if mode == "delta"
                        else "stream.refresh.replay"
                    )
            raise StaleRefreshError(
                f"subscription {sub.sub_id!r} cannot catch up: its "
                "feeds kept advancing across 16 refresh rounds"
            )

    def _refresh_delta(
        self,
        sub: Subscription,
        base: Dict[str, int],
        targets: Dict[str, int],
        changed,
    ) -> None:
        """Delta refresh: run the plan with each changed leaf bound
        to only the rows committed in ``[base, target)`` and every
        unchanged feed pinned at its old watermark, then union/merge
        into the standing answer."""
        session = self.session
        deltas: Dict[str, ScrubJayDataset] = {}
        delta_rows = 0
        for n in sorted(changed):
            feed = session.feeds[n]
            rows, _ = feed.source.append_scan(
                base.get(n, 0), targets[n]
            )
            delta_rows += len(rows)
            deltas[n] = ScrubJayDataset.from_rows(
                session.ctx, rows, session.dataset(n).schema, n
            )
        pinned = {
            n: base[n] for n in sub.feed_names
            if n not in changed and n in base
        }
        result = sub.delta_plan.execute_delta(
            self._pinned_catalog(pinned), deltas,
            session.dictionary, columnar=self._columnar(),
            columnar_off=self._columnar_off(),
        )
        if delta_rows:
            with self._subs_lock:
                self._stream_stats["refresh_rows"] += delta_rows
            reg = getattr(session.ctx, "metrics", None)
            if reg is not None:
                reg.inc("stream.refresh.rows", delta_rows)
        if sub.aggregate is not None:
            spec = sub.aggregate
            part = group_aggregate_partials(
                result, list(spec.group_by),
                spec.value_field, spec.how,
            )
            sub._commit_delta(targets, partials=part)
        else:
            sub._commit_delta(targets, rows=result.collect())

    def _refresh_replay(
        self, sub: Subscription, targets: Dict[str, int]
    ) -> None:
        """Scoped replay: full recompute with every feed input
        bounded at its target watermark, replacing the answer."""
        session = self.session
        result = sub.delta_plan.execute_full(
            self._pinned_catalog({
                n: targets[n] for n in sub.feed_names if n in targets
            }),
            session.dictionary,
            columnar=self._columnar(),
            columnar_off=self._columnar_off(),
        )
        if sub.aggregate is not None:
            spec = sub.aggregate
            part = group_aggregate_partials(
                result, list(spec.group_by),
                spec.value_field, spec.how,
            )
            sub._commit_replace(targets, partials=part)
        else:
            sub._commit_replace(targets, rows=result.collect())

    def cancel(self, ticket: QueryTicket) -> bool:
        """Cancel a still-queued ticket. Returns False once the query
        is running or finished (cancellation is cooperative)."""
        with self._cond:
            if ticket.state != _QUEUED:
                return False
            q = self._queues.get(ticket.tenant)
            if q is not None:
                try:
                    q.remove(ticket)
                    self._queued -= 1
                except ValueError:
                    return False
                if not q:
                    # The tenant has no queued work left: take it out
                    # of the turn order, or a worker would popleft()
                    # an empty deque and die.
                    try:
                        self._rr.remove(ticket.tenant)
                    except ValueError:
                        pass
            ticket.state = _CANCELLED
            self.metrics.record_cancelled()
        ticket._deliver(
            None,
            QueryCancelledError("cancelled before dispatch"),
            self._clock(),
        )
        return True

    def invalidate(self) -> None:
        """Explicitly flush both caches (keying already isolates stale
        entries after catalog/dictionary changes; this reclaims them)."""
        self.plan_cache.clear()
        self.result_cache.clear()

    def snapshot(self) -> ServiceSnapshot:
        """Current :class:`ServiceSnapshot` (counters, gauges, qps,
        latency percentiles, all three cache stat blocks)."""
        with self._cond:
            queued = self._queued
            in_flight = self._in_flight
            tenants = len(self._queues)
        derivation = (
            self.session.cache.stats()
            if self.session.cache is not None
            else {}
        )
        return self.metrics.snapshot(
            in_flight=in_flight,
            queue_depth=queued,
            tenants=tenants,
            plan_cache=self.plan_cache.stats(),
            result_cache=self.result_cache.stats(),
            derivation_cache=derivation,
            streams=self._streams_snapshot(),
            profile=(
                self._profile.snapshot()
                if self._profile is not None
                else {}
            ),
        )

    def _streams_snapshot(self) -> Dict[str, Any]:
        session = self.session
        with self._subs_lock:
            n_subs = len(self._subs)
            stats = dict(self._stream_stats)
        feeds = {
            name: {
                "watermark": feed.watermark,
                "rows_ingested": feed.rows_ingested,
                "data_version": session.data_version(name),
            }
            for name, feed in list(session.feeds.items())
        }
        if not feeds and not n_subs and not any(stats.values()):
            return {}
        return {
            "feeds": feeds,
            "subscriptions": n_subs,
            **stats,
        }

    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop admitting; by default let workers drain queued work,
        otherwise fail queued tickets with :class:`ServiceClosedError`."""
        if self._profile is not None and self._profile_listener is not None:
            self._profile.remove_listener(self._profile_listener)
            self._profile_listener = None
        with self._cond:
            if self._closed:
                return
            self._closed = True
            if not drain:
                for q in self._queues.values():
                    while q:
                        t = q.popleft()
                        self._queued -= 1
                        t._deliver(
                            None,
                            ServiceClosedError("service closed"),
                            self._clock(),
                        )
                self._rr.clear()
            self._cond.notify_all()
        with self._subs_lock:
            subs = list(self._subs.values())
            self._subs.clear()
        for sub in subs:
            sub._close()
        for w in self._workers:
            w.join(timeout)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------

    def _next_ticket(self) -> Optional[QueryTicket]:
        """Round-robin-fair blocking dequeue; None means shut down."""
        with self._cond:
            while True:
                while self._rr:
                    tenant = self._rr.pop(0)
                    q = self._queues.get(tenant)
                    if not q:
                        # Stale turn-order entry (e.g. every queued
                        # ticket was cancelled): drop it, keep looking.
                        continue
                    ticket = q.popleft()
                    self._queued -= 1
                    if q:  # tenant still has work: back of the turn order
                        self._rr.append(tenant)
                    ticket.state = _RUNNING
                    self._in_flight += 1
                    return ticket
                if self._closed:
                    return None
                self._cond.wait()

    def _worker_loop(self) -> None:
        while True:
            ticket = self._next_ticket()
            if ticket is None:
                return
            try:
                self._run(ticket)
            finally:
                with self._cond:
                    self._in_flight -= 1

    def _run(self, ticket: QueryTicket) -> None:
        now = self._clock()
        ticket.started_at = now
        if ticket.deadline is not None and now > ticket.deadline:
            # Expired while queued: never dispatched to the engine.
            self.metrics.record_timeout()
            ticket._deliver(
                None,
                QueryTimeoutError(
                    "deadline expired while queued "
                    f"(waited {now - ticket.submitted_at:.3f}s)"
                ),
                now,
            )
            return

        result: Optional[Any] = None
        error: Optional[BaseException] = None
        tracer = getattr(self.session.ctx, "tracer", None)
        if tracer is not None and tracer.enabled:
            with tracer.span(
                "query",
                kind="query",
                tenant=ticket.tenant,
                query=str(ticket.query),
            ) as root:
                ticket.trace = root
                # Queue wait is already over; record it retroactively
                # on the span clock. The service clock is injectable
                # (tests), so only the *duration* crosses clocks.
                pc_now = time.perf_counter()
                wait = max(0.0, now - ticket.submitted_at)
                tracer.record(
                    "queue-wait",
                    pc_now - wait,
                    pc_now,
                    kind="queue",
                    parent=root,
                )
                try:
                    result = self._answer(ticket)
                except ScrubJayError as exc:
                    error = exc
                except Exception as exc:  # defensive: never kill a worker
                    error = exc
                if error is not None:
                    root.status = "error"
                    root.set("error", type(error).__name__)
        else:
            try:
                result = self._answer(ticket)
            except ScrubJayError as exc:
                error = exc
            except Exception as exc:  # defensive: never kill a worker
                error = exc

        finished = self._clock()
        latency = finished - ticket.submitted_at
        if (
            error is None
            and ticket.deadline is not None
            and finished > ticket.deadline
        ):
            # Finished, but past the deadline: the client contract is
            # the deadline, so deliver the typed timeout instead of a
            # result the caller may already have given up on.
            self.metrics.record_timeout()
            error, result = (
                QueryTimeoutError(
                    f"query exceeded its deadline ({latency:.3f}s)"
                ),
                None,
            )
        elif error is None:
            self.metrics.record_completed(latency)
            self._maybe_observe_cache()
        else:
            self.metrics.record_failed(latency)
        ticket._deliver(result, error, finished)

    def _maybe_observe_cache(self) -> None:
        """Feed result-cache counters to the session's tuner every few
        completions, so churn-collapsed hit rates shrink the TTL."""
        tuner = getattr(self.session, "tuner", None)
        if tuner is None:
            return
        self._completions_since_observe += 1
        if self._completions_since_observe < 16:
            return
        self._completions_since_observe = 0
        tuner.observe_cache(self.result_cache.stats())

    # ------------------------------------------------------------------
    # the actual pipeline: plan cache → engine → result cache → executor
    # ------------------------------------------------------------------

    def _answer(self, ticket: QueryTicket) -> Any:
        attempts = 0
        while True:
            attempts += 1
            try:
                return self._answer_once(ticket)
            except ShardStaleReadError:
                # A scatter straddled replicated catalog churn; the
                # fleet settles as soon as the mutation finishes, so
                # re-plan and re-fan-out (its own budget — churn is
                # expected, executor faults are not). The ramping
                # backoff lets a multi-shard replication complete
                # instead of burning the budget inside its window.
                if attempts >= max(self.max_query_attempts, 8):
                    raise
                self.metrics.record_retry()
                time.sleep(min(0.02 * attempts, 0.2))
            except ExecutorError as exc:
                transient = self.retry_policy.is_transient(exc)
                if not transient or attempts >= self.max_query_attempts:
                    raise
                self.metrics.record_retry()

    def _answer_once(self, ticket: QueryTicket) -> Any:
        session = self.session
        tracer = getattr(session.ctx, "tracer", None)
        traced = tracer is not None and tracer.enabled
        state = session.state_fingerprint()
        version = session.catalog_version
        nq = normalize_query(ticket.query)
        pkey = plan_key(state, nq)
        # the single-flight cache gives no hit/miss return channel;
        # whether *our* solver closure ran is exactly a cold miss
        solver_ran: List[bool] = []

        def solver():
            solver_ran.append(True)
            return self._solve_serve_plan(nq)

        if traced:
            with tracer.span("plan-cache", kind="cache") as ps:
                plan = self.plan_cache.get_or_solve(pkey, solver)
                ps.set("outcome", "miss" if solver_ran else "hit")
        else:
            plan = self.plan_cache.get_or_solve(pkey, solver)
        if ticket.query.is_metric:
            return self._metric_plan(plan, ticket, state, version)
        if ticket.aggregate is not None:
            return self._aggregate_plan(plan, ticket, state, version)
        return self._dataset_for(plan, ticket, state, version)

    def _metric_plan(
        self,
        plan,
        ticket: QueryTicket,
        state: str,
        version: int,
    ) -> Any:
        """Answer a metric ticket: route to the coarsest registered
        rollup that covers it, else compute per-measure partials
        through the aggregate hook — the base service groups the
        cached result dataset driver-side; a ShardRouter's hook
        gathers per-shard partials instead — then re-bucket to the
        grain and finalize once.
        """
        from repro.metrics import MetricAnswer, choose_rollup
        from repro.metrics.compute import (
            finalize_metric,
            metric_group_fields,
            rebucket_partials,
            resolve_value_field,
        )

        session = self.session
        q = ticket.query
        rollup, decision = choose_rollup(
            getattr(session, "rollups", {}) or {}, q
        )
        report = getattr(session.ctx, "report", None)
        if report is not None:
            report.add(decision)
        if rollup is not None:
            ticket.result_schema = rollup.dataset.schema
            return MetricAnswer(q, rollup.answer(q), decision)
        schema = plan.derive_schema(
            session.schemas(), session.dictionary
        )
        gf, _ = metric_group_fields(schema, q)
        partials: Dict[str, Dict[Tuple, Any]] = {}
        for m in q.measures:
            spec = AggregateSpec(
                tuple(gf),
                resolve_value_field(schema, m.dimension),
                m.how,
                True,
            )
            # A shadow ticket carries the per-measure spec through
            # the hook; its base query is what shards see, so a
            # sharded fleet ships raw-time partials and the grain
            # snap below merges them into buckets driver-side.
            shadow = QueryTicket(
                ticket.tenant, q.base(), ticket.submitted_at,
                ticket.deadline, spec,
            )
            part = self._aggregate_plan(plan, shadow, state, version)
            ticket.result_schema = shadow.result_schema
            partials[m.key()] = rebucket_partials(
                part, q.grain, m.how
            )
        return MetricAnswer(q, finalize_metric(partials, q), decision)

    def _dataset_for(
        self,
        plan,
        ticket: QueryTicket,
        state: str,
        version: int,
    ) -> ScrubJayDataset:
        """Result-cache lookup around the execution hook."""
        session = self.session
        tracer = getattr(session.ctx, "tracer", None)
        traced = tracer is not None and tracer.enabled
        # Fold the plan's per-dataset feed versions into the key: a
        # feed advance re-keys exactly the queries reading that
        # dataset (zero churn for everyone else). Non-feed datasets
        # report version 0 and are omitted, keeping legacy keys
        # byte-identical.
        names = plan.dataset_names()
        dv = {
            n: session.data_version(n)
            for n in names
            if session.data_version(n)
        }
        rkey = result_key(plan.fingerprint(), state, version, dv)
        if traced:
            with tracer.span("result-cache", kind="cache") as rs:
                hit = self.result_cache.get(rkey, session.ctx)
                rs.set("outcome", "hit" if hit is not None else "miss")
        else:
            hit = self.result_cache.get(rkey, session.ctx)
        if hit is not None:
            return hit
        result = self._execute_plan(plan, ticket, state, version)
        # Pin the rows driver-side before publishing: a cached entry
        # must not hold a lazy RDD whose lineage outlives its inputs.
        # Publish only if the catalog did not move between keying and
        # execution — otherwise the rows were computed against a newer
        # catalog than the key claims, and an in-flight reader still
        # holding the old key would consume a mismatched result.
        if (
            session.catalog_version == version
            and session.state_fingerprint() == state
            and all(
                session.data_version(n) == dv.get(n, 0)
                for n in names
            )
        ):
            self.result_cache.put(rkey, result, datasets=names)
        return result

    # ------------------------------------------------------------------
    # execution hooks — a ShardRouter overrides these to scatter-gather
    # over its shard fleet instead of executing locally
    # ------------------------------------------------------------------

    def _execute_plan(
        self,
        plan,
        ticket: QueryTicket,
        state: str,
        version: int,
    ) -> ScrubJayDataset:
        """Materialize one solved plan (cold result-cache path)."""
        return self.session.execute(plan).dataset

    def _aggregate_plan(
        self,
        plan,
        ticket: QueryTicket,
        state: str,
        version: int,
    ) -> Dict[Tuple, Any]:
        """Answer an aggregate ticket from the solved plan. The base
        service materializes the result dataset (through the result
        cache, so repeated aggregates over one result reuse it) and
        groups driver-side."""
        spec = ticket.aggregate
        dataset = self._dataset_for(plan, ticket, state, version)
        ticket.result_schema = dataset.schema
        partials = group_aggregate_partials(
            dataset, list(spec.group_by), spec.value_field, spec.how
        )
        if spec.partial:
            return partials
        return finalize_group_partials(partials, spec.how)

    def __repr__(self) -> str:
        with self._cond:
            return (
                f"QueryService(workers={len(self._workers)}, "
                f"queued={self._queued}, in_flight={self._in_flight}, "
                f"closed={self._closed})"
            )
