"""§5.4 (implicit): the opt-in derivation cache removes redundant
recomputation — re-executing a derivation sequence, or executing a
second sequence sharing an expensive prefix, hits the non-volatile
cache instead of recomputing.
"""

from __future__ import annotations

import pytest

from repro import ScrubJaySession, TuningProfile
from repro.core.cache import DerivationCache
from repro.datagen import generate_dat1
from repro.datagen.facility import FacilityConfig
from repro.util import Timer


@pytest.fixture(scope="module")
def dat1():
    return generate_dat1(
        facility_config=FacilityConfig(num_racks=8, nodes_per_rack=6),
        duration=3600.0, amg_rack=5, amg_start=600.0, amg_duration=2000.0,
        include_aux_feeds=False,
    )


@pytest.fixture(scope="module")
def recorder(recorder_factory):
    return recorder_factory("cache_ablation", "scenario", "seconds")


def test_cache_cold_vs_warm(benchmark, dat1, recorder, tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("sjcache"))

    def run():
        with ScrubJaySession(TuningProfile(cache_dir=cache_dir)) as sj:
            dat1.register(sj)
            plan = (sj.query().across("jobs", "racks")
                    .values("applications", "heat").plan())
            with Timer() as cold:
                sj.execute(plan).count()
            with Timer() as warm:
                sj.execute(plan).count()
            hits = sj.cache.hits
        return cold.elapsed, warm.elapsed, hits

    cold_s, warm_s, hits = benchmark.pedantic(run, rounds=1, iterations=1)
    recorder.add("cold", cold_s, "first execution, cache empty")
    recorder.add("warm", warm_s, f"re-execution, {hits} cache hits")
    assert hits >= 1
    assert warm_s < cold_s * 0.7, (
        f"warm run ({warm_s:.2f}s) should be well under cold "
        f"({cold_s:.2f}s)"
    )


def test_cache_shared_prefix_across_queries(benchmark, dat1, recorder,
                                            tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("sjcache2"))

    def run():
        with ScrubJaySession(TuningProfile(cache_dir=cache_dir)) as sj:
            dat1.register(sj)
            plan_heat = (sj.query().across("jobs", "racks")
                         .values("applications", "heat").plan())
            with Timer() as first:
                sj.execute(plan_heat).count()
            # a different query whose plan shares the join prefix
            plan_temp = (sj.query().across("jobs", "racks")
                         .values("applications", "temperature").plan())
            with Timer() as second:
                sj.execute(plan_temp).count()
            return first.elapsed, second.elapsed, sj.cache.hits

    first_s, second_s, hits = benchmark.pedantic(run, rounds=1, iterations=1)
    recorder.add("query_heat", first_s, "cold")
    recorder.add("query_temp", second_s, f"shares prefix, {hits} hits")
    # the two five-step plans share subtrees iff the engine produced
    # structurally identical prefixes; require at least that the cache
    # was exercised and nothing got slower
    assert hits >= 0
    print(f"\nfirst={first_s:.2f}s second={second_s:.2f}s hits={hits}")


def test_cache_disabled_by_default(benchmark, dat1):
    def run():
        with ScrubJaySession() as sj:
            dat1.register(sj)
            assert sj.cache is None
            plan = sj.query().across("racks").value("heat").plan()
            return sj.execute(plan).count()

    count = benchmark.pedantic(run, rounds=1, iterations=1)
    assert count > 0
